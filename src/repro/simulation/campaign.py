"""The measurement campaign: a month of beacons and production traffic.

This is the simulated counterpart of §3.2's data collection.  For every
day and client /24:

* production queries are served over the client's current anycast route
  (churn state) and logged passively (front-end counts — §3.2.1);
* a volume-proportional number of beacon sessions run, each measuring the
  anycast target plus three unicast front-ends (§3.2.2–3.3); the three
  log streams flow through :class:`repro.measurement.backend.BeaconBackend`
  whose joined rows feed the ECS- and LDNS-grouped aggregates;
* per-session, the anycast minus best-unicast difference is recorded for
  Fig 3.

Latencies come from cached per-path baselines plus per-measurement jitter
and any active poor-path episode inflation on the anycast route.

**Determinism and sharding.**  Every random draw that shapes a client's
measurements comes from an RNG derived from ``(seed, "campaign", day,
client_key)`` (or an even finer path), never from a stream shared across
clients.  A client's measurements are therefore bit-identical no matter
the iteration order, shard assignment, or worker count — which is what
lets :class:`repro.simulation.parallel.ParallelCampaignRunner` split the
population into contiguous shards, run them in separate processes, and
merge the partial datasets into the exact dataset a serial run produces.

**Engines.**  Two measurement engines share this campaign skeleton (day
loop, churn/episode plans, passive traffic, query/beacon volumes — all
identical between them):

* ``"reference"`` — the scalar oracle: every beacon fetch runs through
  :class:`repro.measurement.beacon.BeaconRunner` and draws one sample at
  a time from the per-(client, day) ``random.Random`` stream;
* ``"vectorized"`` — :class:`_VectorizedBeaconEngine`: each (client,
  day) block of beacons is synthesized as numpy arrays from a
  ``numpy.random.Generator`` derived from the same seed chain, and
  flows into the sinks through bulk APIs.

Each engine honors the determinism contract above *within itself*
(serial ≡ sharded ≡ parallel for a fixed engine); the two engines'
datasets agree statistically but not bit-for-bit, since they consume
different random streams.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.dns.authoritative import ANYCAST_TARGET
from repro.faults import (
    FaultKind,
    FaultPlan,
    RecordFaultInjector,
    WorkerFaultInjector,
)
from repro.telemetry import RunContext, Telemetry, config_digest, get_logger
from repro.geo.regions import region_of_point
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ACCURACY,
    MIN_MAX_BUCKETS,
)
from repro.telemetry.memory import peak_rss_bytes
from repro.measurement.backend import BeaconBackend, JoinedBatch, JoinedSegment
from repro.measurement.beacon import BeaconConfig, BeaconRunner, BeaconTargetSelector
from repro.measurement.logs import HttpLogEntry, JoinedMeasurement, PassiveLog
from repro.measurement.validate import (
    QuarantineLog,
    ValidationGate,
    ValidationPolicy,
)
from repro.cdn.fastroute import (
    LOAD_POLICIES,
    LayeredAnycastNetwork,
    LoadDayState,
    LoadManagementSimulator,
    default_layers,
    provision_capacities,
)
from repro.clients.population import ClientPrefix
from repro.rand import derive_rng, derive_seed
from repro.simulation.churn import DayRoutePlan
from repro.simulation.counterrng import (
    ROW_CAP,
    BeaconSlotLayout,
    DayKeys,
    gumbel_from_uniform,
    hashed_uniform,
    normal_from_uniforms,
    normal_pair_from_uniforms,
)
from repro.simulation.dataset import StudyDataset
from repro.simulation.episodes import (
    EpisodeScope,
    OverloadKind,
    OverloadPlan,
)
from repro.simulation.scenario import Scenario

_log = get_logger("campaign")


@dataclass(frozen=True)
class CampaignProgress:
    """One live progress observation of a running campaign.

    Serial runs emit one per completed day; sharded runs aggregate
    worker heartbeats into these (days_completed is then the *minimum*
    across shards — the day every shard has finished).
    """

    days_completed: int
    num_days: int
    beacons: int
    beacons_per_second: float
    elapsed_seconds: float
    shards_done: int = 0
    shards_total: int = 1
    retries: int = 0

    def format(self) -> str:
        """A one-line ticker rendering (the CLI ``--progress`` line)."""
        parts = [
            f"day {self.days_completed}/{self.num_days}",
            f"beacons {self.beacons:,}",
            f"{self.beacons_per_second:,.0f}/s",
        ]
        if self.shards_total > 1:
            parts.append(f"shards {self.shards_done}/{self.shards_total}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        parts.append(f"[{self.elapsed_seconds:.1f}s]")
        return "  ".join(parts)


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign-level knobs.

    Attributes:
        beacon: Beacon methodology parameters.
        progress_callback: Optional per-day hook ``f(day, num_days)`` for
            long runs (the library never prints on its own).  Sharded
            parallel runs aggregate worker heartbeats and invoke it once
            per day fully completed across *all* shards, in day order.
        progress_listener: Optional richer hook receiving
            :class:`CampaignProgress` observations (beacons/s, shard
            completion, retry counts) — what the CLI ``--progress``
            ticker renders.  Like ``progress_callback``, honored by both
            serial and sharded runs.
        workers: Worker-process count for the campaign, or ``None`` to
            inherit :attr:`repro.simulation.scenario.ScenarioConfig.workers`.
        engine: Measurement engine — ``"reference"`` (scalar oracle),
            ``"vectorized"`` (numpy-batched per (client, day) block),
            ``"matrix"`` (whole-day cross-client batches, fastest), or
            ``None`` to inherit
            :attr:`repro.simulation.scenario.ScenarioConfig.engine`.
            Every engine is deterministic per seed and bit-identical
            across worker counts.  ``vectorized`` and ``matrix`` share
            the counter-based beacon streams and produce *bit-identical*
            datasets; the reference engine consumes different streams,
            so its dataset agrees statistically, not bit-for-bit.
        fault_plan: Optional deterministic fault schedule
            (:class:`repro.faults.FaultPlan`) injected into the run —
            worker crashes, hangs, transient exceptions, corrupted shard
            payloads, merge failures.  Faults never touch the campaign's
            measurement RNG streams, so a run that survives them via
            retries is bit-identical to the fault-free run.
        max_retries: Retries per shard after its first attempt (so a
            shard gets ``max_retries + 1`` attempts total).
        shard_timeout: Seconds the coordinator waits for one shard
            attempt before declaring it hung and retrying.  ``None``
            waits forever.  Only enforceable for worker-process shards;
            an in-process run cannot be interrupted.
        allow_partial: When a shard exhausts its retries, drop its
            client range and finish with a partial dataset (whose
            :meth:`~repro.simulation.dataset.StudyDataset.missing_ranges`
            names the gap) instead of raising
            :class:`repro.errors.ShardFailureError`.
        checkpoint_dir: Spill each completed shard's partial dataset
            here (see :mod:`repro.simulation.checkpoint`).
        resume: Reuse intact, matching shard checkpoints from
            ``checkpoint_dir`` instead of re-running those shards.
        retry_backoff_seconds: Base of the exponential backoff between
            a shard's failed attempt and its retry
            (``base * 2**attempt``).
        validation: Record-validation policy both engines enforce at the
            ingestion boundaries (see :mod:`repro.measurement.validate`):
            ``"strict"`` raises on the first invalid record, ``"lenient"``
            (the default) drops invalid records into the campaign's
            quarantine log, ``"repair"`` clamps repairable records and
            annotates them.
        sketch_threshold: Per-digest sample count above which latency
            digests promote from exact sample retention to bounded
            :class:`repro.measurement.sketch.LatencySketch` aggregation,
            and the request-diff and passive logs switch to their
            bounded forms.  ``None`` (the default) keeps everything
            exact — bit-compatible with every historical digest.
            Setting it makes campaign memory independent of client
            count (the constant-memory mode); percentile queries then
            answer within the sketch's relative error bound, and
            per-row/per-client queries on the diff and passive logs
            become unavailable.
        sketch_accuracy: Relative accuracy of the sketches used above
            the threshold (worst-case relative quantile error; the
            default 0.01 guarantees <= 1%).
        sketch_max_buckets: Hard per-sketch bucket cap.  A sketch that
            exceeds it halves its resolution (deterministically merging
            adjacent bucket pairs) until it fits, doubling its relative
            error bound per halving — this is what makes peak memory
            genuinely flat in client count rather than merely
            log-linear.  Must be >= 8.
        frontend_capacity: Headroom multiplier provisioning each
            front-end's finite capacity (capacity = steady-state load ×
            headroom; see :func:`repro.cdn.fastroute.provision_capacities`).
            Must exceed 1.0.  ``None`` (the default) keeps capacity
            infinite — the historical model, bit-compatible with every
            existing digest.  When set, a convex queueing-delay term
            (:meth:`repro.latency.model.LatencyModel.queueing_delay_ms`)
            degrades RTTs as utilization approaches 1.
        overload_plan: Optional deterministic overload drill schedule
            (:class:`repro.simulation.episodes.OverloadPlan`) — flash
            crowds, regional events, front-end drains and failures —
            compiled from the scenario seed exactly like ``fault_plan``,
            so serial and sharded runs realize identical drills.
            Requires ``frontend_capacity``.
        load_policy: How the CDN reacts to overload: ``"none"`` (finite
            capacity, no reaction — the §2 baseline), ``"withdraw"``
            (hard-withdraw a front-end past capacity the next day; can
            cascade), or ``"fastroute"`` (per-front-end distributed
            shedding, :class:`repro.cdn.fastroute.LoadManagementSimulator`).
            Any value other than ``"none"`` requires
            ``frontend_capacity``.
    """

    beacon: BeaconConfig = BeaconConfig()
    progress_callback: Optional[Callable[[int, int], None]] = None
    progress_listener: Optional[Callable[["CampaignProgress"], None]] = None
    workers: Optional[int] = None
    engine: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None
    max_retries: int = 2
    shard_timeout: Optional[float] = None
    allow_partial: bool = False
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    retry_backoff_seconds: float = 0.05
    validation: str = "lenient"
    sketch_threshold: Optional[int] = None
    sketch_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    sketch_max_buckets: int = DEFAULT_MAX_BUCKETS
    frontend_capacity: Optional[float] = None
    overload_plan: Optional[OverloadPlan] = None
    load_policy: str = "none"

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.sketch_threshold is not None and self.sketch_threshold < 1:
            raise ConfigurationError("sketch_threshold must be >= 1")
        if not 0.0 < self.sketch_accuracy <= 0.5:
            raise ConfigurationError(
                "sketch_accuracy must be in (0, 0.5]"
            )
        if self.sketch_max_buckets < MIN_MAX_BUCKETS:
            raise ConfigurationError(
                f"sketch_max_buckets must be >= {MIN_MAX_BUCKETS}"
            )
        if self.validation not in ("strict", "lenient", "repair"):
            raise ConfigurationError(
                f"unknown validation policy {self.validation!r}; expected "
                "'strict', 'lenient', or 'repair'"
            )
        if self.engine not in (None, "reference", "vectorized", "matrix"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'reference', "
                "'vectorized', or 'matrix'"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigurationError("shard_timeout must be > 0")
        if self.retry_backoff_seconds < 0:
            raise ConfigurationError("retry_backoff_seconds must be >= 0")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume requires a checkpoint_dir to resume from"
            )
        if (
            self.frontend_capacity is not None
            and self.frontend_capacity <= 1.0
        ):
            raise ConfigurationError(
                "frontend_capacity is a headroom multiplier and must "
                "exceed 1.0"
            )
        if self.load_policy not in LOAD_POLICIES:
            raise ConfigurationError(
                f"unknown load policy {self.load_policy!r}; expected one "
                f"of: {', '.join(LOAD_POLICIES)}"
            )
        if self.frontend_capacity is None and (
            self.overload_plan is not None or self.load_policy != "none"
        ):
            raise ConfigurationError(
                "overload_plan and load_policy require frontend_capacity "
                "(front-ends must have finite capacity to overload)"
            )


def largest_remainder_apportion(
    total: int, fractions: Sequence[float]
) -> List[int]:
    """Split ``total`` into integer parts proportional to ``fractions``.

    Uses largest-remainder (Hamilton) apportionment: each part gets the
    floor of its exact share, and leftover units go to the parts with the
    largest fractional remainders (ties to the earliest index, keeping the
    result deterministic).  The parts always sum exactly to ``total`` —
    unlike independent rounding, which can over- or under-count.

    Raises:
        ConfigurationError: if ``total`` is negative or ``fractions`` is
            empty.
    """
    if total < 0:
        raise ConfigurationError("total must be non-negative")
    if not fractions:
        raise ConfigurationError("fractions cannot be empty")
    shares = [total * fraction for fraction in fractions]
    counts = [int(share) for share in shares]
    leftover = total - sum(counts)
    if leftover > 0:
        by_remainder = sorted(
            range(len(shares)),
            key=lambda i: (counts[i] - shares[i], i),
        )
        for i in by_remainder[:leftover]:
            counts[i] += 1
    return counts


#: Extra RTT (ms) a request pays for landing off its layer-0 front-end
#: after shedding or withdrawal — the detour through the next anycast
#: ring is a longer path by construction (FastRoute's rings are
#: progressively sparser).
_REROUTE_PENALTY_MS = 25.0


class _LoadSchedule:
    """One campaign's precomputed load-management timeline.

    Built once at campaign setup over the *full* client population from
    expected demand, so every shard and engine reads the identical
    schedule — the same trick the churn and episode processes use.  The
    day loop then folds three deterministic signals into measurements:

    * per-client demand multipliers (flash crowds, regional events),
    * per-front-end queueing-delay extras (convex in utilization;
      withdrawn front-ends pin at the cap),
    * per-client landing distributions (where shed/rerouted production
      traffic actually serves).
    """

    def __init__(
        self,
        scenario: Scenario,
        cfg: "CampaignConfig",
        simulator: LoadManagementSimulator,
        states: Sequence[LoadDayState],
        events: Sequence[Dict[str, object]],
    ) -> None:
        latency = scenario.latency_model
        cap_ms = latency.config.queue_delay_cap_ms
        self._cap_ms = cap_ms
        self._chain0 = {
            client.key: simulator.chain_for(client.key)[0]
            for client in scenario.clients
        }
        self._queue: List[Dict[str, float]] = []
        self._multipliers: List[Dict[str, float]] = []
        self._landing: List[Dict[str, Tuple[Tuple[str, float], ...]]] = []
        peak_util: Dict[str, float] = {}
        peak_shed: Dict[str, float] = {}
        withdrawn_day: Dict[str, int] = {}
        day_rows: List[Dict[str, object]] = []
        for day, state in enumerate(states):
            queue: Dict[str, float] = {}
            for frontend_id, utilization in state.utilizations.items():
                delay = latency.queueing_delay_ms(utilization)
                if delay != 0.0:
                    queue[frontend_id] = delay
                if utilization > peak_util.get(frontend_id, 0.0):
                    peak_util[frontend_id] = utilization
            for frontend_id in state.withdrawn:
                queue[frontend_id] = cap_ms
                withdrawn_day.setdefault(frontend_id, day)
            for frontend_id, fraction in state.shed_fractions.items():
                if fraction > peak_shed.get(frontend_id, 0.0):
                    peak_shed[frontend_id] = fraction
            self._queue.append(queue)
            self._multipliers.append(dict(state.demand_multipliers))
            self._landing.append(dict(state.landing))
            utilizations = state.utilizations
            day_rows.append(
                {
                    "day": day,
                    "max_utilization": (
                        max(utilizations.values()) if utilizations else 0.0
                    ),
                    "mean_utilization": (
                        # Summed in sorted-key order: float addition is
                        # not associative, and this value lands in the
                        # digest-covered load summary — iteration order
                        # must not depend on the process hash seed.
                        sum(
                            utilizations[frontend_id]
                            for frontend_id in sorted(utilizations)
                        )
                        / len(utilizations)
                        if utilizations
                        else 0.0
                    ),
                    "max_shed_fraction": (
                        max(state.shed_fractions.values())
                        if state.shed_fractions
                        else 0.0
                    ),
                    "shedding_frontends": len(state.shed_fractions),
                    "withdrawn": sorted(state.withdrawn),
                    "rerouted_clients": len(state.landing),
                }
            )
        #: JSON-clean global summary — identical in every shard, carried
        #: on the dataset and into run manifests.
        self.summary: Dict[str, object] = {
            "policy": cfg.load_policy,
            "headroom": cfg.frontend_capacity,
            "num_days": len(states),
            "overload_plan": (
                cfg.overload_plan.spec_string()
                if cfg.overload_plan is not None
                else None
            ),
            "events": list(events),
            "days": day_rows,
            "frontends": {
                frontend_id: {
                    "capacity": simulator.capacities[frontend_id],
                    "peak_utilization": peak_util.get(frontend_id, 0.0),
                    "peak_shed_fraction": peak_shed.get(frontend_id, 0.0),
                    "withdrawn_day": withdrawn_day.get(frontend_id),
                }
                for frontend_id in sorted(simulator.capacities)
            },
        }

    def scaled_queries(self, day: int, client_key: str, queries: int) -> int:
        """A client-day's query volume under today's demand multipliers.

        Pure integer arithmetic after the workload draw — the RNG stream
        is untouched, so engines and shards stay aligned.
        """
        multiplier = self._multipliers[day].get(client_key)
        if multiplier is None or queries <= 0:
            return queries
        return max(0, int(round(queries * multiplier)))

    def unicast_extras(self, day: int) -> Dict[str, float]:
        """Per-front-end unicast RTT extras (queueing delay) for a day."""
        return self._queue[day]

    def landing(
        self, day: int, client_key: str
    ) -> Optional[Tuple[Tuple[str, float], ...]]:
        """A client's landing distribution, or ``None`` when it is all
        at its layer-0 front-end."""
        return self._landing[day].get(client_key)

    def anycast_extra(self, day: int, client_key: str) -> float:
        """Extra anycast RTT (ms) a client pays today.

        The landing-weighted queueing delay of the front-ends actually
        serving it, plus a reroute penalty for the fraction served off
        its layer-0 front-end.  A client whose every ring is withdrawn
        pays the full cap (its requests effectively time out).
        """
        queue = self._queue[day]
        primary = self._chain0[client_key]
        dist = self._landing[day].get(client_key)
        if dist is None:
            return queue.get(primary, 0.0)
        total = 0.0
        weighted = 0.0
        on_primary = 0.0
        for frontend_id, weight in dist:
            total += weight
            weighted += weight * queue.get(frontend_id, 0.0)
            if frontend_id == primary:
                on_primary += weight
        if total <= 0.0:
            return self._cap_ms
        return weighted / total + _REROUTE_PENALTY_MS * (
            1.0 - on_primary / total
        )


def _passive_routes(
    paths: "_PathCache",
    client_key: str,
    plan: DayRoutePlan,
    queries: int,
    landing: Optional[Tuple[Tuple[str, float], ...]],
) -> Tuple[List[Tuple[str, int]], int]:
    """Split a client-day's production queries across front-ends.

    The first (primary anycast) rank's share redistributes over the
    client's landing distribution when load management moved it; the
    integer remainder that lands nowhere is the shed-and-lost count.
    Integer apportionment throughout, so per-shard partial sums equal
    the serial totals exactly.
    """
    counts = largest_remainder_apportion(queries, plan.fractions)
    routes: List[Tuple[str, int]] = []
    shed = 0
    for position, (rank, count) in enumerate(zip(plan.ranks, counts)):
        if position == 0 and landing is not None:
            total_weight = sum(weight for _, weight in landing)
            served = (
                min(count, int(round(count * total_weight)))
                if total_weight > 0.0
                else 0
            )
            shed += count - served
            if served > 0:
                sub_counts = largest_remainder_apportion(
                    served,
                    [weight / total_weight for _, weight in landing],
                )
                for (frontend_id, _weight), sub in zip(landing, sub_counts):
                    if sub > 0:
                        routes.append((frontend_id, sub))
        else:
            routes.append((paths.anycast(client_key, rank)[0], count))
    return routes, shed


def _build_load_schedule(
    scenario: Scenario, cfg: "CampaignConfig"
) -> Optional[_LoadSchedule]:
    """Build the campaign's load timeline, or ``None`` when capacity is
    off.

    Everything here is a pure function of the scenario (topology,
    population, expected demand) and the campaign config — no campaign
    RNG streams are consumed — so serial, sharded, and every engine see
    one identical schedule.
    """
    if cfg.frontend_capacity is None:
        return None
    network = LayeredAnycastNetwork(
        scenario.topology,
        scenario.deployment,
        default_layers(scenario.deployment),
    )
    baseline: Dict[str, float] = {
        frontend_id: 0.0
        for frontend_id in network.layers[0].frontend_ids
    }
    chains = {
        client.key: tuple(
            network.serving_frontend(
                layer.index, client.asn, client.home_metro
            )
            for layer in network.layers
        )
        for client in scenario.clients
    }
    for client in scenario.clients:
        baseline[chains[client.key][0]] += client.daily_queries
    capacities = provision_capacities(baseline, cfg.frontend_capacity)
    simulator = LoadManagementSimulator(
        network,
        scenario.clients,
        capacities,
        policy=cfg.load_policy,
    )

    num_days = scenario.calendar.num_days
    multipliers: List[Dict[str, float]] = [{} for _ in range(num_days)]
    factors: List[Dict[str, float]] = [{} for _ in range(num_days)]
    failures: List[List[str]] = [[] for _ in range(num_days)]
    event_rows: List[Dict[str, object]] = []
    if cfg.overload_plan is not None:
        compiled = cfg.overload_plan.compile(
            scenario.config.seed, num_days
        )
        # Drills target front-ends that actually carry traffic: a drain
        # of an unloaded site is a no-op at any population scale.  The
        # candidate lists stay deterministic — baseline load is a pure
        # function of the seeded population.
        layer0 = [
            frontend_id
            for frontend_id in simulator.layer_frontends(0)
            if baseline.get(frontend_id, 0.0) > 0
        ] or simulator.layer_frontends(0)
        hub_load: Dict[str, float] = {}
        for client in scenario.clients:
            chain = chains[client.key]
            hub_load[chain[min(1, len(chain) - 1)]] = (
                hub_load.get(chain[min(1, len(chain) - 1)], 0.0)
                + client.daily_queries
            )
        hubs = (
            [
                frontend_id
                for frontend_id in simulator.layer_frontends(1)
                if hub_load.get(frontend_id, 0.0) > 0
            ]
            or simulator.layer_frontends(1)
        ) if len(network.layers) > 1 else layer0
        for event in compiled.events:
            days = [
                day
                for day in range(
                    event.start_day, event.start_day + event.duration_days
                )
                if day < num_days
            ]
            if event.kind in (
                OverloadKind.FLASH_CROWD, OverloadKind.REGIONAL_EVENT
            ):
                if event.kind is OverloadKind.FLASH_CROWD:
                    target = layer0[int(event.selector * len(layer0))]
                    chain_index = 0
                else:
                    target = hubs[int(event.selector * len(hubs))]
                    chain_index = 1
                affected = [
                    client.key
                    for client in scenario.clients
                    if chains[client.key][
                        min(chain_index, len(chains[client.key]) - 1)
                    ] == target
                ]
                for day in days:
                    for key in affected:
                        multipliers[day][key] = (
                            multipliers[day].get(key, 1.0)
                            * event.magnitude
                        )
            elif event.kind is OverloadKind.DRAIN:
                target = layer0[int(event.selector * len(layer0))]
                for day in days:
                    factors[day][target] = min(
                        factors[day].get(target, 1.0), event.magnitude
                    )
            else:  # FAILURE
                target = layer0[int(event.selector * len(layer0))]
                if event.start_day < num_days:
                    failures[event.start_day].append(target)
            event_rows.append(
                {
                    "kind": event.kind.value,
                    "start_day": event.start_day,
                    "duration_days": event.duration_days,
                    "magnitude": event.magnitude,
                    "target": target,
                }
            )
    states = simulator.run(num_days, multipliers, factors, failures)
    return _LoadSchedule(scenario, cfg, simulator, states, event_rows)


@dataclass
class PathCacheStats:
    """Hit/miss counters for one campaign's :class:`_PathCache`.

    During a run the counters live in the campaign's telemetry registry
    (``path_cache.*`` counters); this dataclass is the stable public
    view built from a snapshot (:meth:`from_snapshot`), kept for callers
    and for standalone construction in tests.
    """

    anycast_hits: int = 0
    anycast_misses: int = 0
    unicast_hits: int = 0
    unicast_misses: int = 0

    @property
    def anycast_hit_rate(self) -> float:
        """Anycast-path cache hit rate (0 when never queried)."""
        total = self.anycast_hits + self.anycast_misses
        return self.anycast_hits / total if total else 0.0

    @property
    def unicast_hit_rate(self) -> float:
        """Unicast-path cache hit rate (0 when never queried)."""
        total = self.unicast_hits + self.unicast_misses
        return self.unicast_hits / total if total else 0.0

    def merge(self, other: "PathCacheStats") -> "PathCacheStats":
        """Fold another cache's counters into this one (in place)."""
        self.anycast_hits += other.anycast_hits
        self.anycast_misses += other.anycast_misses
        self.unicast_hits += other.unicast_hits
        self.unicast_misses += other.unicast_misses
        return self

    @classmethod
    def from_snapshot(cls, snapshot) -> "PathCacheStats":
        """The view over a telemetry snapshot's ``path_cache.*`` counters."""
        counters = snapshot.counters
        return cls(
            anycast_hits=int(counters.get("path_cache.anycast.hits_total", 0)),
            anycast_misses=int(
                counters.get("path_cache.anycast.misses_total", 0)
            ),
            unicast_hits=int(counters.get("path_cache.unicast.hits_total", 0)),
            unicast_misses=int(
                counters.get("path_cache.unicast.misses_total", 0)
            ),
        )


@dataclass
class CampaignStats:
    """Instrumentation emitted by a campaign run.

    The numbers originate in the run's telemetry registry
    (:class:`repro.telemetry.Telemetry`); this dataclass is the public
    view distilled from its snapshot (:meth:`from_snapshot`) — kept
    constructible directly for tests and ad-hoc arithmetic.

    Attributes:
        wall_seconds: Total wall-clock time of the run.
        beacon_count: Beacon sessions executed.
        measurement_count: Joined measurements produced.
        day_seconds: Wall-clock time per simulated day.  For sharded runs
            these are summed across shards, so they read as CPU-seconds.
        path_cache: Per-:class:`_PathCache` hit/miss counters.
        workers: Worker processes the campaign ran with.
        engine: Measurement engine the campaign ran with.
    """

    wall_seconds: float = 0.0
    beacon_count: int = 0
    measurement_count: int = 0
    day_seconds: List[float] = field(default_factory=list)
    path_cache: PathCacheStats = field(default_factory=PathCacheStats)
    workers: int = 1
    engine: str = "reference"

    @property
    def beacons_per_second(self) -> float:
        """Beacon throughput over the whole run."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.beacon_count / self.wall_seconds

    def merge(self, other: "CampaignStats") -> "CampaignStats":
        """Fold another (shard's) stats into this one (in place).

        Wall time takes the max — concurrent shards overlap — while the
        per-day times add up as total effort spent on each day.
        """
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        self.beacon_count += other.beacon_count
        self.measurement_count += other.measurement_count
        if len(other.day_seconds) > len(self.day_seconds):
            self.day_seconds.extend(
                [0.0] * (len(other.day_seconds) - len(self.day_seconds))
            )
        for day, seconds in enumerate(other.day_seconds):
            self.day_seconds[day] += seconds
        self.path_cache.merge(other.path_cache)
        return self

    @classmethod
    def from_snapshot(cls, snapshot) -> "CampaignStats":
        """The view over a (possibly merged) telemetry snapshot.

        Wall time reads from the ``campaign.wall_seconds`` gauge (merge
        policy ``max``, matching how concurrent shards overlap) and the
        per-day seconds from the indexed ``campaign/day`` span record
        (summed across shards, i.e. CPU-seconds).
        """
        counters = snapshot.counters
        wall = snapshot.gauges.get("campaign.wall_seconds", {}).get("value")
        if wall is None:
            root = snapshot.spans.get("campaign")
            wall = root.seconds if root is not None else 0.0
        return cls(
            wall_seconds=float(wall),
            beacon_count=int(counters.get("campaign.beacons_total", 0)),
            measurement_count=int(
                counters.get("campaign.measurements_total", 0)
            ),
            day_seconds=snapshot.day_seconds("campaign/day"),
            path_cache=PathCacheStats.from_snapshot(snapshot),
            workers=int(snapshot.context.get("workers", 1)),
            engine=str(snapshot.context.get("engine", "reference")),
        )

    def format(self) -> str:
        """A short human-readable summary for the CLI."""
        lines = [
            (
                f"campaign stats: {self.beacon_count:,} beacons in "
                f"{self.wall_seconds:.2f}s "
                f"({self.beacons_per_second:,.0f} beacons/s, "
                f"workers={self.workers}, engine={self.engine})"
            ),
            (
                "path cache: anycast "
                f"{self.path_cache.anycast_hit_rate:.1%} hit "
                f"({self.path_cache.anycast_hits:,}/"
                f"{self.path_cache.anycast_hits + self.path_cache.anycast_misses:,}), "
                "unicast "
                f"{self.path_cache.unicast_hit_rate:.1%} hit "
                f"({self.path_cache.unicast_hits:,}/"
                f"{self.path_cache.unicast_hits + self.path_cache.unicast_misses:,})"
            ),
        ]
        if self.day_seconds:
            slowest = max(self.day_seconds)
            lines.append(
                f"per-day: mean {sum(self.day_seconds) / len(self.day_seconds):.2f}s, "
                f"max {slowest:.2f}s over {len(self.day_seconds)} days"
            )
        return "\n".join(lines)


class _PathCache:
    """Per-client cached (frontend_id, baseline_rtt_ms) lookups.

    Baselines include the path's *persistent quality offset* (see
    :meth:`repro.latency.model.LatencyModel.sample_static_offset_ms`),
    drawn from a seed-derived RNG so it is stable for the whole study.
    """

    def __init__(self, scenario: Scenario, telemetry: Telemetry) -> None:
        self._scenario = scenario
        self._anycast: Dict[Tuple[str, int], Tuple[str, float]] = {}
        self._unicast: Dict[Tuple[str, str], float] = {}
        self._anycast_hits = telemetry.counter(
            "path_cache.anycast.hits_total",
            "anycast (client, rank) baseline lookups served from cache",
        )
        self._anycast_misses = telemetry.counter(
            "path_cache.anycast.misses_total",
            "anycast baselines computed from routing + latency model",
        )
        self._unicast_hits = telemetry.counter(
            "path_cache.unicast.hits_total",
            "unicast (client, front-end) baseline lookups served from cache",
        )
        self._unicast_misses = telemetry.counter(
            "path_cache.unicast.misses_total",
            "unicast baselines computed from routing + latency model",
        )

    @property
    def stats(self) -> PathCacheStats:
        """The public counter view (values live in the registry)."""
        return PathCacheStats(
            anycast_hits=int(self._anycast_hits.value),
            anycast_misses=int(self._anycast_misses.value),
            unicast_hits=int(self._unicast_hits.value),
            unicast_misses=int(self._unicast_misses.value),
        )

    def _static_offset(self, client_key: str, path_key: str, anycast: bool) -> float:
        scenario = self._scenario
        return scenario.latency_model.static_offset_from_seed(
            derive_seed(scenario.config.seed, "path-quality", client_key, path_key),
            anycast=anycast,
        )

    def anycast(self, client_key: str, rank: int) -> Tuple[str, float]:
        """Serving front-end and baseline RTT over the anycast route."""
        cached = self._anycast.get((client_key, rank))
        if cached is None:
            self._anycast_misses.inc()
            scenario = self._scenario
            client = scenario.client_by_key(client_key)
            path = scenario.network.anycast_path(
                client.asn, client.home_metro, client.location, rank
            )
            baseline = scenario.latency_model.baseline_rtt_ms(
                path.path_km,
                path.backbone_km,
                path.as_hops,
                client.access_delay_ms,
            )
            # The anycast path's quality is a property of the client's
            # steady route, keyed by the ingress so a route change also
            # changes path quality.
            baseline += self._static_offset(
                client_key, f"anycast-{path.ingress_metro}", anycast=True
            )
            cached = (path.frontend.frontend_id, baseline)
            self._anycast[(client_key, rank)] = cached
        else:
            self._anycast_hits.inc()
        return cached

    def unicast(self, client_key: str, frontend_id: str) -> float:
        """Baseline RTT to one front-end's unicast prefix."""
        baseline = self._unicast.get((client_key, frontend_id))
        if baseline is None:
            self._unicast_misses.inc()
            scenario = self._scenario
            client = scenario.client_by_key(client_key)
            path = scenario.network.unicast_path(
                frontend_id, client.asn, client.home_metro, client.location
            )
            baseline = scenario.latency_model.baseline_rtt_ms(
                path.path_km,
                path.backbone_km,
                path.as_hops,
                client.access_delay_ms,
            )
            baseline += self._static_offset(
                client_key, frontend_id, anycast=False
            )
            self._unicast[(client_key, frontend_id)] = baseline
        else:
            self._unicast_hits.inc()
        return baseline


#: Beacon sessions synthesized per numpy block.  Days heavier than this
#: are processed in fixed-size blocks over the same per-(client, day)
#: stream, bounding the engine's transient matrices at roughly
#: ``_MAX_BLOCK_BEACONS x targets`` doubles regardless of volume.
_MAX_BLOCK_BEACONS = 4096

#: Rows the matrix engine synthesizes per chunk.  A chunk concatenates
#: whole 4096-session spans from many clients; this cap bounds the
#: transient day matrices the same way ``_MAX_BLOCK_BEACONS`` bounds the
#: per-client engine's.
_MATRIX_CHUNK_ROWS = 32768


def _layout_for(beacon_config: BeaconConfig) -> BeaconSlotLayout:
    """The draw-slot layout implied by the beacon methodology."""
    pool_max = max(beacon_config.candidate_count - 1, 0)
    targets_max = 2 + min(beacon_config.random_picks, pool_max)
    return BeaconSlotLayout(pool_max, targets_max)


def _daily_path_offsets(
    latency_config,
    layout: BeaconSlotLayout,
    daily_key: np.uint64,
    client_indices: np.ndarray,
    pool_size: int,
) -> np.ndarray:
    """Per-day congestion offsets for every (client, unicast path) pair.

    Returns a ``(clients, 1 + pool_size)`` matrix: column 0 the closest
    unicast target, column ``1 + j`` pool position ``j``.  Every value is
    a pure function of (seed, day, client index, path slot) through the
    counter streams, so the per-client oracle and the whole-day matrix
    engine evaluate identical offsets no matter how they batch the
    computation.  The *anycast* path's offset is not here: it stays on
    the shared per-(day, client) ``derive_rng`` scalar stream so the
    reference and batched engines realize the same anycast elevation
    days (the per-client anycast distributions are compared directly by
    the equivalence tests; path slot 0 is reserved for it).
    """
    cfg = latency_config
    count = int(client_indices.shape[0])
    n_paths = 1 + pool_size
    offsets = np.zeros((count, n_paths))
    if cfg.daily_variation_median_ms == 0.0:
        return offsets
    base = client_indices.astype(np.uint64)[:, None] * np.uint64(
        layout.path_stride
    ) + np.arange(1, 1 + n_paths, dtype=np.uint64)[None, :] * np.uint64(3)
    gate_u = hashed_uniform(daily_key, base)
    rows, cols = np.nonzero(gate_u < cfg.daily_variation_probability)
    if rows.size:
        elevated = base[rows, cols]
        z = normal_from_uniforms(
            hashed_uniform(daily_key, elevated + np.uint64(1)),
            hashed_uniform(daily_key, elevated + np.uint64(2)),
        )
        offsets[rows, cols] = np.exp(
            math.log(cfg.daily_variation_median_ms)
            + cfg.daily_variation_sigma * z
        )
    return offsets


def _synthesize_rtts(
    latency_config,
    beacon_config: BeaconConfig,
    layout: BeaconSlotLayout,
    beacon_key: np.uint64,
    row_gids: np.ndarray,
    pool_size: int,
    picks: int,
    log_weights: Optional[np.ndarray],
    frac0,
    anycast_fixed0,
    anycast_fixed1,
    unicast_fixed: np.ndarray,
    overhead_rows: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthesize RTT rows from the counter streams.

    The single draw path both batched engines share: every random term —
    rank switch, Gumbel pick keys, jitter body, spike gate/magnitude,
    measurement overhead — is evaluated from ``hashed_uniform`` at the
    (row, slot) coordinates in ``row_gids``/``layout``, and every
    floating-point expression is written once here, so any batching of
    the same rows produces bit-identical values.

    Args:
        row_gids: Stride-scaled (client, row) draw coordinates.
        log_weights: ``log`` pick weights — a ``(pool_size,)`` vector
            (single client) or ``(rows, pool_size)`` matrix; only needed
            when ``0 < picks < pool_size``.
        frac0: First-rank traffic fraction (scalar or per-row);
            ``1.0`` for single-rank days, which makes the rank draw a
            no-op since uniforms are strictly below 1.
        anycast_fixed0 / anycast_fixed1: Fixed anycast RTT component on
            the first / second session rank (scalar or per-row).
        unicast_fixed: Fixed components for the closest target (col 0)
            and the pick pool (cols 1..) — ``(1 + pool_size,)`` vector
            or per-row matrix.
        overhead_rows: Row indices that lack Resource Timing and incur
            the measurement-overhead term, or ``None`` for none.

    Returns:
        ``(on_first_rank, pick_indices, rtts)`` — the rank mask, the
        ``(rows, picks)`` pool-index matrix, and the rounded
        ``(rows, 2 + picks)`` RTT matrix.
    """
    cfg = latency_config
    n = int(row_gids.shape[0])
    targets = 2 + picks

    on_first = hashed_uniform(beacon_key, row_gids) < frac0

    if picks == 0:
        pick_indices = np.empty((n, 0), dtype=np.intp)
    elif picks == pool_size:
        pick_indices = np.tile(np.arange(pool_size, dtype=np.intp), (n, 1))
    else:
        assert log_weights is not None
        pick_slots = np.arange(
            layout.pick_base, layout.pick_base + pool_size, dtype=np.uint64
        )
        keys = log_weights + gumbel_from_uniform(
            hashed_uniform(beacon_key, row_gids[:, None] + pick_slots)
        )
        pick_indices = np.argpartition(-keys, picks - 1, axis=1)[:, :picks]

    if cfg.jitter_median_ms > 0.0:
        pair_slots = np.arange(
            layout.jitter_base,
            layout.jitter_base + targets + (targets & 1),
            2,
            dtype=np.uint64,
        )
        pair_gids = row_gids[:, None] + pair_slots
        z_cos, z_sin = normal_pair_from_uniforms(
            hashed_uniform(beacon_key, pair_gids),
            hashed_uniform(beacon_key, pair_gids + np.uint64(1)),
        )
        body = np.empty((n, 2 * pair_slots.shape[0]))
        body[:, 0::2] = z_cos
        body[:, 1::2] = z_sin
        jitter = np.exp(
            math.log(cfg.jitter_median_ms)
            + cfg.jitter_sigma * body[:, :targets]
        )
    else:
        jitter = np.zeros((n, targets))

    if cfg.spike_probability > 0.0:
        spike_slots = np.arange(
            layout.spike_base, layout.spike_base + targets, dtype=np.uint64
        )
        spiked = (
            hashed_uniform(beacon_key, row_gids[:, None] + spike_slots)
            < cfg.spike_probability
        )
        rows, cols = np.nonzero(spiked)
        if rows.size:
            # Spike magnitudes exist only where the gate fired; counter
            # streams let both engines evaluate exactly that subset.
            mag_gids = (
                row_gids[rows]
                + np.uint64(layout.spike_mag_base)
                + cols.astype(np.uint64) * np.uint64(2)
            )
            z = normal_from_uniforms(
                hashed_uniform(beacon_key, mag_gids),
                hashed_uniform(beacon_key, mag_gids + np.uint64(1)),
            )
            jitter[rows, cols] += np.exp(
                math.log(cfg.spike_median_ms) + cfg.spike_sigma * z
            )

    if overhead_rows is not None and overhead_rows.size:
        oh_slots = np.arange(
            layout.overhead_base,
            layout.overhead_base + 2 * targets,
            2,
            dtype=np.uint64,
        )
        oh_gids = row_gids[overhead_rows][:, None] + oh_slots
        z = normal_from_uniforms(
            hashed_uniform(beacon_key, oh_gids),
            hashed_uniform(beacon_key, oh_gids + np.uint64(1)),
        )
        jitter[overhead_rows] += np.maximum(
            beacon_config.primitive_overhead_mean_ms
            + beacon_config.primitive_overhead_sigma_ms * z,
            0.0,
        )

    fixed = np.empty((n, targets))
    fixed[:, 0] = np.where(on_first, anycast_fixed0, anycast_fixed1)
    if unicast_fixed.ndim == 1:
        fixed[:, 1] = unicast_fixed[0]
        if picks:
            fixed[:, 2:] = unicast_fixed[1:][pick_indices]
    else:
        fixed[:, 1] = unicast_fixed[:, 0]
        if picks:
            fixed[:, 2:] = np.take_along_axis(
                unicast_fixed[:, 1:], pick_indices, axis=1
            )
    # Browser timing APIs report integer milliseconds (same rounding
    # the reference engine applies per fetch).
    rtts = np.rint(fixed + jitter)
    return on_first, pick_indices, rtts


class _VectorizedBeaconEngine:
    """Batched beacon synthesis: one numpy block per (client, day).

    The scalar reference engine walks every beacon fetch through Python —
    target selection, jitter draw, sink append — one call at a time.
    This engine synthesizes a whole (client, day) block of ``B`` beacons
    × ``T`` targets as arrays:

    * session-rank switches, random-pick keys, daily congestion offsets,
      jitter bodies, spike masks, spike magnitudes, and primitive-timing
      overheads are counter-based streams
      (:mod:`repro.simulation.counterrng`): pure functions of (seed, day,
      client index, beacon row, slot), evaluated through the shared
      :func:`_synthesize_rtts` path;
    * per-target fixed components (cached path baseline + persistent
      offset + daily congestion offset + episode inflation) assemble into
      a ``(B, T)`` base matrix that the jitter adds onto;
    * results flow into the sinks through the bulk APIs
      (:meth:`BeaconBackend.on_joined_batch`,
      :meth:`RequestDiffLog.observe_many`) — no per-sample Python calls.

    Because every draw is a pure per-coordinate function, the engine is
    deterministic per seed and bit-identical across serial, sharded, and
    re-ordered runs — and, by construction, bit-identical to the
    whole-day :class:`_MatrixBeaconEngine`, which evaluates the same
    streams batched across clients.  This per-client form is the oracle
    the matrix engine is verified against.  The reference engine consumes
    different streams, so its digests differ while the distributions
    match (pinned by the equivalence tests).
    """

    def __init__(
        self,
        scenario: Scenario,
        selector: BeaconTargetSelector,
        paths: "_PathCache",
        beacon_config: BeaconConfig,
        backend: BeaconBackend,
        request_diffs: RequestDiffLog,
        gate: ValidationGate,
    ) -> None:
        self._scenario = scenario
        self._selector = selector
        self._paths = paths
        self._beacon_config = beacon_config
        self._backend = backend
        self._request_diffs = request_diffs
        self._gate = gate
        self._latency = scenario.latency_model
        self._seed = scenario.config.seed
        self._layout = _layout_for(beacon_config)

    def run_client_day(
        self,
        day: int,
        day_keys: DayKeys,
        client: ClientPrefix,
        client_index: int,
        region: str,
        resource_timing_supported: bool,
        plan: DayRoutePlan,
        beacons: int,
        anycast_extra_ms: float,
        degraded_frontend: Optional[str],
        unicast_inflation_ms: float,
        dirty_slots: Optional[Dict[int, FaultKind]] = None,
        load_extras: Optional[Dict[str, float]] = None,
    ) -> None:
        """Synthesize and sink one client-day's ``beacons`` sessions.

        Days up to ``_MAX_BLOCK_BEACONS`` sessions run as a single
        block.  Heavier days (large simulated populations behind one
        /24) are split into fixed-size blocks with *absolute* row
        indices into the counter streams, so the transient ``(B, T)``
        matrices — the campaign's peak-memory driver — stay bounded no
        matter the day's volume while every draw stays independent of
        the block boundaries.
        """
        if beacons > ROW_CAP:
            raise ConfigurationError(
                f"client-day of {beacons} beacons exceeds the "
                f"{ROW_CAP} row capacity of the counter streams"
            )
        key = client.key
        ldns_id = client.ldns_id
        selector = self._selector
        closest = selector.closest(ldns_id)
        pool = selector.pick_pool(ldns_id)
        pool_size = len(pool)
        picks = min(self._beacon_config.random_picks, pool_size)

        offsets = _daily_path_offsets(
            self._latency.config,
            self._layout,
            day_keys.daily,
            np.array([client_index]),
            pool_size,
        )[0]

        # Anycast fixed component per possible session rank (1 or 2).
        rank_frontends: List[str] = []
        rank_fixed: List[float] = []
        for rank in plan.ranks:
            frontend_id, baseline = self._paths.anycast(key, rank)
            rank_frontends.append(frontend_id)
            rank_fixed.append(baseline + anycast_extra_ms)
        dual_rank = len(plan.ranks) > 1
        # With frac0 pinned to 1.0, the rank draw (strictly below 1)
        # always lands on the first rank — single-rank days cost no
        # branch in the shared synthesis path.
        frac0 = plan.fractions[0] if dual_rank else 1.0
        anycast_fixed0 = rank_fixed[0]
        anycast_fixed1 = rank_fixed[1] if dual_rank else rank_fixed[0]

        unicast_fixed = np.empty(1 + pool_size)
        unicast_fixed[0] = self._paths.unicast(key, closest) + offsets[0]
        for position, target_id in enumerate(pool):
            unicast_fixed[1 + position] = (
                self._paths.unicast(key, target_id) + offsets[1 + position]
            )
        if load_extras:
            # Queueing-delay extras land after the daily offsets and
            # before episode degradation — the same element-wise order
            # the matrix engine applies its staged adjustments in.
            extra = load_extras.get(closest)
            if extra is not None:
                unicast_fixed[0] += extra
            for position, target_id in enumerate(pool):
                extra = load_extras.get(target_id)
                if extra is not None:
                    unicast_fixed[1 + position] += extra
        if degraded_frontend is not None:
            if closest == degraded_frontend:
                unicast_fixed[0] += unicast_inflation_ms
            for position, target_id in enumerate(pool):
                if target_id == degraded_frontend:
                    unicast_fixed[1 + position] += unicast_inflation_ms

        log_weights = (
            selector.log_pick_weights(ldns_id)
            if 0 < picks < pool_size
            else None
        )
        for start in range(0, beacons, _MAX_BLOCK_BEACONS):
            self._run_block(
                day,
                day_keys,
                key,
                ldns_id,
                client_index,
                region,
                resource_timing_supported,
                dual_rank,
                frac0,
                anycast_fixed0,
                anycast_fixed1,
                unicast_fixed,
                log_weights,
                rank_frontends,
                closest,
                pool,
                pool_size,
                picks,
                min(_MAX_BLOCK_BEACONS, beacons - start),
                start,
                dirty_slots,
            )

    def _run_block(
        self,
        day: int,
        day_keys: DayKeys,
        key: str,
        ldns_id: str,
        client_index: int,
        region: str,
        resource_timing_supported: bool,
        dual_rank: bool,
        frac0: float,
        anycast_fixed0: float,
        anycast_fixed1: float,
        unicast_fixed: np.ndarray,
        log_weights: Optional[np.ndarray],
        rank_frontends: List[str],
        closest: str,
        pool: Tuple[str, ...],
        pool_size: int,
        picks: int,
        beacons: int,
        beacon_start: int,
        dirty_slots: Optional[Dict[int, FaultKind]] = None,
    ) -> None:
        """Synthesize and sink one block of ``beacons`` sessions."""
        targets = 2 + picks
        rows = np.arange(
            beacon_start, beacon_start + beacons, dtype=np.uint64
        )
        row_gids = self._layout.row_gids(client_index, rows)
        overhead_rows = (
            None if resource_timing_supported else np.arange(beacons)
        )
        on_first_rank, pick_indices, rtts = _synthesize_rtts(
            self._latency.config,
            self._beacon_config,
            self._layout,
            day_keys.beacon,
            row_gids,
            pool_size,
            picks,
            log_weights,
            frac0,
            anycast_fixed0,
            anycast_fixed1,
            unicast_fixed,
            overhead_rows,
        )
        if not dual_rank:
            on_first_rank = None
        if picks:
            picked_pool_indices = np.unique(pick_indices)
        else:
            picked_pool_indices = np.empty(0, dtype=np.intp)

        if dirty_slots:
            # Record faults land on flat b * T + t slots — the same
            # coordinates the reference engine counts fetches in (day
            # level, so rebase into this block's rows).
            for flat, kind in dirty_slots.items():
                b, t = divmod(flat, targets)
                b -= beacon_start
                if not 0 <= b < beacons:
                    continue
                rtts[b, t] = RecordFaultInjector.dirty_value(
                    kind, float(rtts[b, t])
                )

        admit = self._gate.admit_matrix(day, key, rtts)
        if admit is None:
            # Every cell valid (the overwhelmingly common case): the
            # original zero-copy bulk path.
            best_unicast = rtts[:, 1:].min(axis=1)
            self._request_diffs.observe_many(
                day, client_index, region, rtts[:, 0], best_unicast
            )
        else:
            # A session contributes a diff row only when its anycast
            # fetch and at least one unicast fetch were admitted — the
            # same rule the reference engine's per-fetch tracking
            # applies.
            row_ok = admit[:, 0] & admit[:, 1:].any(axis=1)
            if row_ok.any():
                best_unicast = np.where(
                    admit[:, 1:], rtts[:, 1:], np.inf
                ).min(axis=1)
                self._request_diffs.observe_many(
                    day,
                    client_index,
                    region,
                    rtts[row_ok, 0],
                    best_unicast[row_ok],
                )

        segments: List[JoinedSegment] = []

        def add_segment(
            target_id: str, frontend_id: str, values: np.ndarray
        ) -> None:
            if values.size:
                segments.append(
                    JoinedSegment(target_id, frontend_id, values)
                )

        anycast_ok = (
            np.ones(beacons, dtype=bool) if admit is None else admit[:, 0]
        )
        if on_first_rank is None:
            add_segment(
                ANYCAST_TARGET, rank_frontends[0], rtts[anycast_ok, 0]
            )
        else:
            for rank_position, mask in ((0, on_first_rank), (1, ~on_first_rank)):
                add_segment(
                    ANYCAST_TARGET,
                    rank_frontends[rank_position],
                    rtts[mask & anycast_ok, 0],
                )
        if admit is None:
            add_segment(closest, closest, rtts[:, 1])
        else:
            add_segment(closest, closest, rtts[admit[:, 1], 1])
        if picks:
            pick_rtts = rtts[:, 2:]
            pick_ok = None if admit is None else admit[:, 2:]
            for pool_index in picked_pool_indices:
                target_id = pool[pool_index]
                selected = pick_indices == pool_index
                if pick_ok is not None:
                    selected = selected & pick_ok
                add_segment(target_id, target_id, pick_rtts[selected])
        self._backend.on_joined_batch(
            JoinedBatch(
                day=day,
                client_key=key,
                ldns_id=ldns_id,
                segments=tuple(segments),
            )
        )


class _MatrixGroup:
    """One target-shape cohort of the matrix engine's member table.

    Clients sharing a pick-pool size share a target count, so their
    beacon rows have identical width and can be synthesized in one
    matrix.  Member columns are frozen at engine construction; the
    ``staged_*`` fields accumulate one day's active client-days between
    :meth:`_MatrixBeaconEngine.stage_client_day` and
    :meth:`_MatrixBeaconEngine.run_day`.
    """

    __slots__ = (
        "pool_size",
        "picks",
        "keys",
        "ldns_ids",
        "slot_ldns_ids",
        "closests",
        "pools",
        "client_indices",
        "region_codes",
        "rt_overhead",
        "base_unicast",
        "log_weights",
        "ldns_slot",
        "staged_members",
        "staged_beacons",
        "staged_frac0",
        "staged_af0",
        "staged_af1",
        "staged_load",
        "staged_degraded",
        "staged_dirty",
    )

    def __init__(self, pool_size: int, picks: int) -> None:
        self.pool_size = pool_size
        self.picks = picks
        self.keys: List[str] = []
        self.ldns_ids: List[str] = []
        self.slot_ldns_ids: List[str] = []
        self.closests: List[str] = []
        self.pools: List[Tuple[str, ...]] = []
        self.client_indices: np.ndarray = np.empty(0, dtype=np.int64)
        self.region_codes: np.ndarray = np.empty(0, dtype=np.int8)
        self.rt_overhead: np.ndarray = np.empty(0, dtype=bool)
        self.base_unicast: np.ndarray = np.empty((0, 1 + pool_size))
        self.log_weights: Optional[np.ndarray] = None
        self.ldns_slot: np.ndarray = np.empty(0, dtype=np.intp)
        self.clear_staging()

    def clear_staging(self) -> None:
        self.staged_members: List[int] = []
        self.staged_beacons: List[int] = []
        self.staged_frac0: List[float] = []
        self.staged_af0: List[float] = []
        self.staged_af1: List[float] = []
        #: (staged row, unicast column, extra) queueing-delay adjustments
        self.staged_load: List[Tuple[int, int, float]] = []
        #: (staged row, unicast column, inflation) episode adjustments
        self.staged_degraded: List[Tuple[int, int, float]] = []
        #: staged row → flat-slot dirty-record map
        self.staged_dirty: Dict[int, Dict[int, FaultKind]] = {}


class _MatrixBeaconEngine:
    """Whole-day beacon synthesis: one matrix pipeline across clients.

    The chunked :class:`_VectorizedBeaconEngine` synthesizes one
    (client, day) block per call — correct, but every client-day pays
    Python and small-array overhead.  This engine synthesizes a whole
    day at once: the day loop stages every active client's scalars
    (volume, route plan, episode adjustments), and :meth:`run_day`
    expands them into cross-client row chunks of up to
    ``_MATRIX_CHUNK_ROWS`` sessions that flow through the *same*
    :func:`_synthesize_rtts` counter-stream path the oracle uses.

    Bit-identity with the oracle holds by construction:

    * every random term is a pure function of (seed, day, client index,
      row, slot) — batching across clients evaluates the same values at
      the same coordinates;
    * every floating-point expression (fixed-component assembly, jitter
      adds, rounding) is shared code or written in the same operation
      order;
    * chunk spans are aligned to the oracle's ``_MAX_BLOCK_BEACONS``
      block grid, so validation-gate calls see the same block shapes
      and quarantine the same block-local record coordinates.

    Sinks are day-columnar: one :meth:`RequestDiffLog.observe_columns`
    call per chunk, per-span bulk extends into the grouped aggregates,
    and a single joined-count bump per chunk — no per-beacon Python.
    """

    def __init__(
        self,
        scenario: Scenario,
        selector: BeaconTargetSelector,
        paths: "_PathCache",
        beacon_config: BeaconConfig,
        backend: BeaconBackend,
        request_diffs: RequestDiffLog,
        ecs_aggregates: GroupedDailyAggregates,
        ldns_aggregates: GroupedDailyAggregates,
        gate: ValidationGate,
        clients: Sequence[ClientPrefix],
        regions: Dict[str, str],
        resource_timing: Dict[str, bool],
    ) -> None:
        self._scenario = scenario
        self._paths = paths
        self._beacon_config = beacon_config
        self._backend = backend
        self._request_diffs = request_diffs
        self._ecs = ecs_aggregates
        self._ldns = ldns_aggregates
        self._gate = gate
        self._latency = scenario.latency_model
        self._layout = _layout_for(beacon_config)
        self._groups: Dict[int, _MatrixGroup] = {}
        self._member: Dict[str, Tuple[_MatrixGroup, int]] = {}

        # Freeze the member table: per-client invariants land in columns
        # once, so the per-day staging path touches no dictionaries.
        builders: Dict[int, Dict[str, list]] = {}
        ldns_slots: Dict[int, Dict[str, int]] = {}
        random_picks = beacon_config.random_picks
        for client in clients:
            key = client.key
            ldns_id = client.ldns_id
            pool = selector.pick_pool(ldns_id)
            pool_size = len(pool)
            group = self._groups.get(pool_size)
            if group is None:
                group = _MatrixGroup(
                    pool_size, min(random_picks, pool_size)
                )
                self._groups[pool_size] = group
                builders[pool_size] = {
                    "cidx": [], "region": [], "rt": [], "base": [],
                    "lslot": [], "logw": [],
                }
                ldns_slots[pool_size] = {}
            build = builders[pool_size]
            slots = ldns_slots[pool_size]
            slot = slots.get(ldns_id)
            if slot is None:
                slot = len(group.closests)
                slots[ldns_id] = slot
                group.slot_ldns_ids.append(ldns_id)
                group.closests.append(selector.closest(ldns_id))
                group.pools.append(pool)
                if 0 < group.picks < pool_size:
                    build["logw"].append(
                        selector.log_pick_weights(ldns_id)
                    )
            self._member[key] = (group, len(group.keys))
            group.keys.append(key)
            group.ldns_ids.append(ldns_id)
            build["cidx"].append(scenario.client_index(key))
            build["region"].append(
                request_diffs.region_code(regions[key])
            )
            build["rt"].append(not resource_timing[key])
            build["lslot"].append(slot)
            base = np.empty(1 + pool_size)
            base[0] = paths.unicast(key, group.closests[slot])
            for position, target_id in enumerate(pool):
                base[1 + position] = paths.unicast(key, target_id)
            build["base"].append(base)
        for pool_size, group in self._groups.items():
            build = builders[pool_size]
            group.client_indices = np.asarray(build["cidx"], dtype=np.int64)
            group.region_codes = np.asarray(build["region"], dtype=np.int8)
            group.rt_overhead = np.asarray(build["rt"], dtype=bool)
            group.ldns_slot = np.asarray(build["lslot"], dtype=np.intp)
            group.base_unicast = (
                np.vstack(build["base"])
                if build["base"]
                else np.empty((0, 1 + pool_size))
            )
            if build["logw"]:
                group.log_weights = np.vstack(build["logw"])

    def stage_client_day(
        self,
        client_key: str,
        plan: DayRoutePlan,
        beacons: int,
        anycast_extra_ms: float,
        degraded_frontend: Optional[str],
        unicast_inflation_ms: float,
        dirty_slots: Optional[Dict[int, FaultKind]] = None,
        load_extras: Optional[Dict[str, float]] = None,
    ) -> None:
        """Queue one active client-day for the next :meth:`run_day`.

        The scalar assembly here mirrors the oracle's
        ``run_client_day`` expression-for-expression (same Python-float
        additions, same adjustment order), which is what keeps the
        fixed RTT components bit-identical.
        """
        if beacons > ROW_CAP:
            raise ConfigurationError(
                f"client-day of {beacons} beacons exceeds the "
                f"{ROW_CAP} row capacity of the counter streams"
            )
        group, member = self._member[client_key]
        staged_row = len(group.staged_members)
        group.staged_members.append(member)
        group.staged_beacons.append(beacons)
        _, baseline0 = self._paths.anycast(client_key, plan.ranks[0])
        anycast_fixed0 = baseline0 + anycast_extra_ms
        if len(plan.ranks) > 1:
            _, baseline1 = self._paths.anycast(client_key, plan.ranks[1])
            group.staged_frac0.append(plan.fractions[0])
            group.staged_af1.append(baseline1 + anycast_extra_ms)
        else:
            group.staged_frac0.append(1.0)
            group.staged_af1.append(anycast_fixed0)
        group.staged_af0.append(anycast_fixed0)
        if load_extras:
            slot = group.ldns_slot[member]
            extra = load_extras.get(group.closests[slot])
            if extra is not None:
                group.staged_load.append((staged_row, 0, extra))
            for position, target_id in enumerate(group.pools[slot]):
                extra = load_extras.get(target_id)
                if extra is not None:
                    group.staged_load.append(
                        (staged_row, 1 + position, extra)
                    )
        if degraded_frontend is not None:
            slot = group.ldns_slot[member]
            if group.closests[slot] == degraded_frontend:
                group.staged_degraded.append(
                    (staged_row, 0, unicast_inflation_ms)
                )
            for position, target_id in enumerate(group.pools[slot]):
                if target_id == degraded_frontend:
                    group.staged_degraded.append(
                        (staged_row, 1 + position, unicast_inflation_ms)
                    )
        if dirty_slots:
            group.staged_dirty[staged_row] = dirty_slots

    def run_day(self, day: int, day_keys: DayKeys) -> int:
        """Synthesize and sink every staged client-day; returns chunks."""
        chunks = 0
        for group in self._groups.values():
            if group.staged_members:
                chunks += self._run_group_day(day, day_keys, group)
                group.clear_staging()
        return chunks

    def _run_group_day(
        self, day: int, day_keys: DayKeys, group: _MatrixGroup
    ) -> int:
        members = np.asarray(group.staged_members, dtype=np.intp)
        beacons = np.asarray(group.staged_beacons, dtype=np.int64)
        frac0 = np.asarray(group.staged_frac0)
        af0 = np.asarray(group.staged_af0)
        af1 = np.asarray(group.staged_af1)
        cidx = group.client_indices[members]
        regions = group.region_codes[members]
        rt_overhead = group.rt_overhead[members]
        ldns_slot = group.ldns_slot[members]

        # Daily congestion offsets for every staged (client, unicast
        # path) in one evaluation, then the same offsets-then-episode
        # adjustment order the oracle applies per client.
        unicast_fixed = group.base_unicast[members] + _daily_path_offsets(
            self._latency.config,
            self._layout,
            day_keys.daily,
            cidx,
            group.pool_size,
        )
        for staged_row, column, extra in group.staged_load:
            unicast_fixed[staged_row, column] += extra
        for staged_row, column, inflation in group.staged_degraded:
            unicast_fixed[staged_row, column] += inflation

        # Expand client-days into oracle-aligned spans: client-day rows
        # [k * 4096, (k+1) * 4096) form span k, so the validation gate
        # sees exactly the oracle's block shapes.
        n_spans = (
            beacons + (_MAX_BLOCK_BEACONS - 1)
        ) // _MAX_BLOCK_BEACONS
        total_spans = int(n_spans.sum())
        span_member = np.repeat(np.arange(len(members)), n_spans)
        span_excl = np.cumsum(n_spans) - n_spans
        span_rank = np.arange(total_spans) - span_excl[span_member]
        span_start = span_rank * _MAX_BLOCK_BEACONS
        span_len = np.minimum(
            beacons[span_member] - span_start, _MAX_BLOCK_BEACONS
        )

        chunks = 0
        start = 0
        while start < total_spans:
            stop = start + 1
            rows = int(span_len[start])
            while (
                stop < total_spans
                and rows + int(span_len[stop]) <= _MATRIX_CHUNK_ROWS
            ):
                rows += int(span_len[stop])
                stop += 1
            self._run_chunk(
                day,
                day_keys,
                group,
                frac0,
                af0,
                af1,
                unicast_fixed,
                cidx,
                regions,
                rt_overhead,
                ldns_slot,
                members,
                span_member[start:stop],
                span_start[start:stop],
                span_len[start:stop],
            )
            chunks += 1
            start = stop
        return chunks

    def _run_chunk(
        self,
        day: int,
        day_keys: DayKeys,
        group: _MatrixGroup,
        frac0: np.ndarray,
        af0: np.ndarray,
        af1: np.ndarray,
        unicast_fixed: np.ndarray,
        cidx: np.ndarray,
        regions: np.ndarray,
        rt_overhead: np.ndarray,
        ldns_slot: np.ndarray,
        members: np.ndarray,
        span_member: np.ndarray,
        span_start: np.ndarray,
        span_len: np.ndarray,
    ) -> None:
        picks = group.picks
        targets = 2 + picks
        n_rows = int(span_len.sum())
        row_starts = np.cumsum(span_len) - span_len
        row_member = np.repeat(span_member, span_len)
        rows_abs = (
            np.arange(n_rows, dtype=np.int64)
            - np.repeat(row_starts, span_len)
            + np.repeat(span_start, span_len)
        )
        row_gids = self._layout.row_gids(cidx[row_member], rows_abs)
        overhead_rows = np.nonzero(rt_overhead[row_member])[0]
        log_weights = (
            group.log_weights[ldns_slot[row_member]]
            if group.log_weights is not None
            else None
        )
        on_first, pick_indices, rtts = _synthesize_rtts(
            self._latency.config,
            self._beacon_config,
            self._layout,
            day_keys.beacon,
            row_gids,
            group.pool_size,
            picks,
            log_weights,
            frac0[row_member],
            af0[row_member],
            af1[row_member],
            unicast_fixed[row_member],
            overhead_rows if overhead_rows.size else None,
        )

        # Dirty-record faults, rebased from day-flat slots into chunk
        # rows — same coordinates, same pre-admission application point
        # as the per-client engines.
        has_dirty = False
        if group.staged_dirty:
            for span_index in range(len(span_member)):
                dirty = group.staged_dirty.get(int(span_member[span_index]))
                if not dirty:
                    continue
                base_row = int(row_starts[span_index])
                first = int(span_start[span_index])
                length = int(span_len[span_index])
                for flat, kind in dirty.items():
                    b, t = divmod(flat, targets)
                    b -= first
                    if not 0 <= b < length:
                        continue
                    has_dirty = True
                    rtts[base_row + b, t] = RecordFaultInjector.dirty_value(
                        kind, float(rtts[base_row + b, t])
                    )

        # Validation: one all-valid probe for the whole chunk (the
        # overwhelmingly common case), else per-span admit_matrix calls
        # reproducing the oracle's block-local quarantine coordinates.
        admits: Optional[List[Optional[np.ndarray]]] = None
        if has_dirty or not self._gate.admit_bulk_valid(rtts):
            admits = []
            for span_index in range(len(span_member)):
                base_row = int(row_starts[span_index])
                length = int(span_len[span_index])
                member = int(members[span_member[span_index]])
                admits.append(
                    self._gate.admit_matrix(
                        day,
                        group.keys[member],
                        rtts[base_row:base_row + length],
                    )
                )

        if admits is None:
            self._sink_chunk_clean(
                day, group, members, span_member, span_len, row_starts,
                row_member, ldns_slot, cidx, regions, pick_indices, rtts,
            )
        else:
            self._sink_chunk_masked(
                day, group, members, span_member, span_len, row_starts,
                row_member, cidx, regions, admits, pick_indices, rtts,
            )

    def _sink_chunk_clean(
        self,
        day: int,
        group: _MatrixGroup,
        members: np.ndarray,
        span_member: np.ndarray,
        span_len: np.ndarray,
        row_starts: np.ndarray,
        row_member: np.ndarray,
        ldns_slot: np.ndarray,
        cidx: np.ndarray,
        regions: np.ndarray,
        pick_indices: np.ndarray,
        rtts: np.ndarray,
    ) -> None:
        """Sink an all-admitted chunk with run-grouped columnar extends.

        Each (day, group, target) still receives exactly the multiset of
        values the per-client oracle produces; what changes is the call
        shape — runs found by one argsort per key instead of a boolean
        mask per (client, pool position).  LDNS groups additionally
        coalesce across the clients sharing a resolver, so that sink
        sees one extend per (resolver, target) per chunk.
        """
        ecs = self._ecs
        ldns_aggregates = self._ldns
        picks = group.picks
        pool_size = group.pool_size
        n_rows = rtts.shape[0]
        self._backend.count_joined_bulk(n_rows * (2 + picks))
        self._request_diffs.observe_columns(
            day,
            cidx[row_member],
            regions[row_member],
            rtts[:, 0],
            rtts[:, 1:].min(axis=1),
        )

        # Anycast + closest per client-day: each span IS one client-day
        # segment, already contiguous.  Run extrema come from one
        # reduceat over the span boundaries instead of two reductions
        # per extend.
        keys = group.keys
        closests = group.closests
        member_slot = group.ldns_slot
        span_members = members[span_member].tolist()
        anycast_col = np.ascontiguousarray(rtts[:, 0])
        closest_col = np.ascontiguousarray(rtts[:, 1])
        # Both target columns ride in one buffer so each sink takes one
        # observe_runs call per chunk; closest-column entries index past
        # the anycast column.
        ecs_vals = np.concatenate((anycast_col, closest_col))
        low0 = np.minimum.reduceat(anycast_col, row_starts).tolist()
        high0 = np.maximum.reduceat(anycast_col, row_starts).tolist()
        low1 = np.minimum.reduceat(closest_col, row_starts).tolist()
        high1 = np.maximum.reduceat(closest_col, row_starts).tolist()
        span_bases = row_starts.tolist()
        span_lens = span_len.tolist()
        entries = []
        add = entries.append
        for span_index, member in enumerate(span_members):
            base_row = span_bases[span_index]
            end_row = base_row + span_lens[span_index]
            key = keys[member]
            add((
                key,
                ANYCAST_TARGET,
                base_row,
                end_row,
                low0[span_index],
                high0[span_index],
            ))
            add((
                key,
                closests[member_slot[member]],
                n_rows + base_row,
                n_rows + end_row,
                low1[span_index],
                high1[span_index],
            ))
        ecs.observe_runs(day, entries, ecs_vals)

        # Anycast + closest per resolver: one sort keys the chunk rows
        # by LDNS slot; the runs are that resolver's day columns.
        row_slots = ldns_slot[row_member]
        order = np.argsort(row_slots, kind="stable")
        sorted_slots = row_slots[order]
        run_bounds = np.nonzero(np.diff(sorted_slots))[0] + 1
        starts = np.concatenate(([0], run_bounds))
        ends = np.concatenate((run_bounds, [n_rows]))
        anycast_sorted = anycast_col[order]
        closest_sorted = closest_col[order]
        ldns_vals = np.concatenate((anycast_sorted, closest_sorted))
        la0 = np.minimum.reduceat(anycast_sorted, starts).tolist()
        ha0 = np.maximum.reduceat(anycast_sorted, starts).tolist()
        la1 = np.minimum.reduceat(closest_sorted, starts).tolist()
        ha1 = np.maximum.reduceat(closest_sorted, starts).tolist()
        slot_ldns_ids = group.slot_ldns_ids
        entries = []
        add = entries.append
        for run, (start, end) in enumerate(
            zip(starts.tolist(), ends.tolist())
        ):
            slot = int(sorted_slots[start])
            ldns_id = slot_ldns_ids[slot]
            add((ldns_id, ANYCAST_TARGET, start, end, la0[run], ha0[run]))
            add((
                ldns_id,
                closests[slot],
                n_rows + start,
                n_rows + end,
                la1[run],
                ha1[run],
            ))
        ldns_aggregates.observe_runs(day, entries, ldns_vals)

        if not picks:
            return
        # Random-pick cells, keyed (client-day, pool index) for the ECS
        # sink and (resolver, pool index) for the LDNS sink.
        pick_vals = np.ascontiguousarray(rtts[:, 2:]).reshape(-1)
        cell_staged = np.repeat(row_member.astype(np.int64), picks)
        cell_pool = pick_indices.reshape(-1).astype(np.int64)
        pools = group.pools
        for by_ldns in (False, True):
            if by_ldns:
                cell_keys = (
                    np.repeat(row_slots.astype(np.int64), picks) * pool_size
                    + cell_pool
                )
            else:
                cell_keys = cell_staged * pool_size + cell_pool
            order = np.argsort(cell_keys, kind="stable")
            sorted_keys = cell_keys[order]
            sorted_vals = pick_vals[order]
            run_bounds = np.nonzero(np.diff(sorted_keys))[0] + 1
            starts = np.concatenate(([0], run_bounds))
            ends = np.concatenate((run_bounds, [sorted_keys.shape[0]]))
            run_lows = np.minimum.reduceat(sorted_vals, starts).tolist()
            run_highs = np.maximum.reduceat(sorted_vals, starts).tolist()
            run_keys = sorted_keys[starts].tolist()
            entries = []
            add = entries.append
            for run, (start, end) in enumerate(
                zip(starts.tolist(), ends.tolist())
            ):
                run_key = run_keys[run]
                pool_index = run_key % pool_size
                if by_ldns:
                    slot = run_key // pool_size
                    add((
                        slot_ldns_ids[slot],
                        pools[slot][pool_index],
                        start,
                        end,
                        run_lows[run],
                        run_highs[run],
                    ))
                else:
                    member = int(members[run_key // pool_size])
                    add((
                        keys[member],
                        pools[member_slot[member]][pool_index],
                        start,
                        end,
                        run_lows[run],
                        run_highs[run],
                    ))
            sink = ldns_aggregates if by_ldns else ecs
            sink.observe_runs(day, entries, sorted_vals)

    def _sink_chunk_masked(
        self,
        day: int,
        group: _MatrixGroup,
        members: np.ndarray,
        span_member: np.ndarray,
        span_len: np.ndarray,
        row_starts: np.ndarray,
        row_member: np.ndarray,
        cidx: np.ndarray,
        regions: np.ndarray,
        admits: List[Optional[np.ndarray]],
        pick_indices: np.ndarray,
        rtts: np.ndarray,
    ) -> None:
        """Sink a chunk with quarantined cells, span by span.

        The slow path — it only runs for chunks that actually contain
        dirty or invalid records, so it keeps the straightforward
        per-span masking the oracle uses.
        """
        ecs = self._ecs
        ldns_aggregates = self._ldns
        picks = group.picks
        targets = 2 + picks
        joined = 0
        diff_pieces: List[Tuple[np.ndarray, ...]] = []
        for span_index in range(len(span_member)):
            base_row = int(row_starts[span_index])
            length = int(span_len[span_index])
            member = int(members[span_member[span_index]])
            key = group.keys[member]
            ldns_id = group.ldns_ids[member]
            slot = int(group.ldns_slot[member])
            view = rtts[base_row:base_row + length]
            admit = admits[span_index]
            if admit is None:
                anycast_col = view[:, 0]
                closest_col = view[:, 1]
            else:
                anycast_col = view[admit[:, 0], 0]
                closest_col = view[admit[:, 1], 1]
            if anycast_col.size:
                ecs.observe_many(day, key, ANYCAST_TARGET, anycast_col)
                ldns_aggregates.observe_many(
                    day, ldns_id, ANYCAST_TARGET, anycast_col
                )
            closest_id = group.closests[slot]
            if closest_col.size:
                ecs.observe_many(day, key, closest_id, closest_col)
                ldns_aggregates.observe_many(
                    day, ldns_id, closest_id, closest_col
                )
            if picks:
                pool = group.pools[slot]
                span_picks = pick_indices[base_row:base_row + length]
                pick_rtts = view[:, 2:]
                pick_ok = None if admit is None else admit[:, 2:]
                for pool_index in range(group.pool_size):
                    selected = span_picks == pool_index
                    if pick_ok is not None:
                        selected &= pick_ok
                    values = pick_rtts[selected]
                    if values.size:
                        target_id = pool[pool_index]
                        ecs.observe_many(day, key, target_id, values)
                        ldns_aggregates.observe_many(
                            day, ldns_id, target_id, values
                        )
            span_rows = slice(base_row, base_row + length)
            if admit is None:
                joined += length * targets
                diff_pieces.append(
                    (
                        cidx[row_member[span_rows]],
                        regions[row_member[span_rows]],
                        view[:, 0],
                        view[:, 1:].min(axis=1),
                    )
                )
            else:
                joined += int(admit.sum())
                row_ok = admit[:, 0] & admit[:, 1:].any(axis=1)
                if not row_ok.any():
                    continue
                best = np.where(
                    admit[:, 1:], view[:, 1:], np.inf
                ).min(axis=1)[row_ok]
                diff_pieces.append(
                    (
                        cidx[row_member[span_rows]][row_ok],
                        regions[row_member[span_rows]][row_ok],
                        view[row_ok, 0],
                        best,
                    )
                )

        if diff_pieces:
            self._request_diffs.observe_columns(
                day,
                np.concatenate([p[0] for p in diff_pieces]),
                np.concatenate([p[1] for p in diff_pieces]),
                np.concatenate([p[2] for p in diff_pieces]),
                np.concatenate([p[3] for p in diff_pieces]),
            )
        self._backend.count_joined_bulk(joined)


class CampaignRunner:
    """Runs a scenario's measurement campaign into a dataset.

    Args:
        scenario: The built study environment.
        config: Campaign knobs.
        client_slice: Optional half-open ``(start, stop)`` index range
            into ``scenario.clients`` — only those clients are measured.
            The churn and episode processes still evolve over the whole
            population (they are global, sequential processes), so a
            sliced run observes exactly what a full run observes for the
            same clients.  Used by the sharded parallel executor.
        telemetry: Optional :class:`repro.telemetry.Telemetry` to record
            into (the study layer shares one across campaign and
            analysis); a fresh instance with the run's context is
            created when omitted.
        fault_injector: Optional
            :class:`repro.faults.WorkerFaultInjector` firing this run's
            scheduled fault (crash at start, transient exception at a
            derived day, hang at the end).  When omitted but
            ``config.fault_plan`` is set, the plan is compiled for this
            single run (one shard, attempt 0) — the injected fault then
            surfaces as a raised ``Injected*Error`` with no retry;
            retries are the resilient executor's job
            (:class:`repro.simulation.parallel.ParallelCampaignRunner`).

    After :meth:`run` returns, :attr:`stats` holds the run's
    :class:`CampaignStats` and :attr:`telemetry` the full telemetry
    (snapshot it for merging, export, or the run report).
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[CampaignConfig] = None,
        client_slice: Optional[Tuple[int, int]] = None,
        telemetry: Optional[Telemetry] = None,
        fault_injector: Optional[WorkerFaultInjector] = None,
        heartbeat: Optional[Callable[[int, int, int], None]] = None,
    ) -> None:
        self._scenario = scenario
        self._config = config or CampaignConfig()
        #: Per-day hook ``f(day, num_days, beacons_so_far)`` — shard
        #: workers install their heartbeat channel here so the
        #: coordinator can aggregate live progress.
        self._heartbeat = heartbeat
        if client_slice is not None:
            start, stop = client_slice
            if not 0 <= start <= stop <= len(scenario.clients):
                raise ConfigurationError(
                    f"client_slice {client_slice!r} outside population of "
                    f"{len(scenario.clients)} clients"
                )
        self._client_slice = client_slice
        if fault_injector is None and self._config.fault_plan is not None:
            compiled = self._config.fault_plan.compile(
                scenario.config.seed, shards=1
            )
            fault_injector = WorkerFaultInjector(
                compiled.fault_for(0, 0),
                seed=scenario.config.seed,
                shard_index=0,
                attempt=0,
                hang_seconds=compiled.hang_seconds,
            )
        self._fault_injector = fault_injector
        engine = self._config.engine or scenario.config.engine
        self.telemetry = telemetry or Telemetry(
            RunContext(
                seed=scenario.config.seed,
                engine=engine,
                workers=1,
                config_hash=config_digest(scenario.config),
            )
        )
        self.stats: Optional[CampaignStats] = None
        #: Records rejected or repaired by this run's validation gate.
        self.quarantine = QuarantineLog()

    def run(self) -> StudyDataset:
        """Execute every day of the calendar and return the dataset.

        The whole run is traced under the ``campaign`` span (setup →
        per-day → finalize); counters and histograms land in
        :attr:`telemetry`, from whose snapshot :attr:`stats` is built.
        """
        tel = self.telemetry
        if self._fault_injector is not None:
            self._fault_injector.on_worker_start()
        with tel.span("campaign"):
            dataset = self._run_instrumented(tel)
        if self._fault_injector is not None:
            self._fault_injector.hang_before_return()
        root = tel.spans.records.get("campaign")
        tel.gauge(
            "campaign.wall_seconds",
            "campaign wall-clock (max across concurrent shards)",
        ).set(root.seconds if root is not None else 0.0)
        self.stats = CampaignStats.from_snapshot(tel.snapshot())
        return dataset

    def _run_instrumented(self, tel: Telemetry) -> StudyDataset:
        scenario = self._scenario
        cfg = self._config
        calendar = scenario.calendar
        engine = cfg.engine or scenario.config.engine

        beacons_counter = tel.counter(
            "campaign.beacons_total", "beacon sessions executed (§3.2.2)"
        )
        queries_counter = tel.counter(
            "campaign.queries_total",
            "production queries served over anycast (§3.2.1)",
        )
        passive_counter = tel.counter(
            "campaign.passive_records_total",
            "per-(day, client, front-end) passive-log appends",
        )
        client_days_counter = tel.counter(
            "campaign.client_days_total",
            "client-days that produced traffic",
        )
        idle_counter = tel.counter(
            "campaign.idle_client_days_total",
            "client-days skipped for zero query volume",
        )
        beacons_hist = tel.histogram(
            "campaign.beacons_per_client_day",
            "beacon sessions per (client, day) block",
        )
        day_hist = tel.histogram(
            "campaign.day_seconds", "wall-clock per simulated day"
        )

        with tel.span("setup"):
            selector = BeaconTargetSelector(
                scenario.network.frontends, scenario.geolocation, cfg.beacon
            )
            runner = BeaconRunner(selector, cfg.beacon)
            paths = _PathCache(scenario, tel)
            workload = scenario.workload_model
            latency = scenario.latency_model

            # Every record this run ingests — beacon fetches in either
            # engine, passive-log counts — passes this gate.
            gate = ValidationGate(
                ValidationPolicy.parse(cfg.validation),
                quarantine=self.quarantine,
            )
            # Dirty-data faults compile against the *full* population
            # and calendar, so a sharded run dirties exactly the records
            # a serial run does.
            record_faults: Optional[RecordFaultInjector] = None
            if cfg.fault_plan is not None:
                compiled_records = cfg.fault_plan.compile_records(
                    scenario.config.seed,
                    calendar.num_days,
                    len(scenario.clients),
                )
                if not compiled_records.empty:
                    record_faults = RecordFaultInjector(compiled_records)

            # Churn and episodes are global day-ordered processes;
            # computing every day's plans up front keeps the day loop
            # pure per-client work and gives sharded runs identical
            # global dynamics.
            churn = scenario.new_churn_model()
            episodes = scenario.new_episode_model()
            day_plans = [churn.plans_for_day(day) for day in calendar.days()]
            day_inflations = [
                episodes.inflations_for_day(day) for day in calendar.days()
            ]

            # Load management is another global day-ordered process:
            # the whole timeline (demand surges, shed fractions,
            # withdrawals, queueing delays) is fixed here from expected
            # demand over the full population, so every shard folds in
            # identical load signals.
            load_schedule = _build_load_schedule(scenario, cfg)
            shed_counter = (
                tel.counter(
                    "load.shed_queries_total",
                    "production queries shed and lost to overload "
                    "management",
                )
                if load_schedule is not None
                else None
            )

            if self._client_slice is None:
                clients = scenario.clients
            else:
                start, stop = self._client_slice
                clients = scenario.clients[start:stop]

            bounded = cfg.sketch_threshold is not None
            ecs_aggregates = GroupedDailyAggregates(
                "ecs",
                exact_threshold=cfg.sketch_threshold,
                relative_accuracy=cfg.sketch_accuracy,
                max_buckets=cfg.sketch_max_buckets,
            )
            ldns_aggregates = GroupedDailyAggregates(
                "ldns",
                exact_threshold=cfg.sketch_threshold,
                relative_accuracy=cfg.sketch_accuracy,
                max_buckets=cfg.sketch_max_buckets,
            )
            request_diffs = RequestDiffLog(
                bounded=bounded,
                relative_accuracy=cfg.sketch_accuracy,
                max_buckets=cfg.sketch_max_buckets,
            )
            passive = PassiveLog(bounded=bounded)

        vectorized: Optional[_VectorizedBeaconEngine] = None
        matrix: Optional[_MatrixBeaconEngine] = None
        if engine == "matrix":
            # The matrix engine writes its columns into the aggregate
            # sinks directly; the backend only keeps the joined-row
            # accounting (no observers, scalar or batch).
            backend = BeaconBackend()
            chunks_counter = tel.counter(
                "engine.matrix.chunks_total",
                "cross-client row chunks synthesized by the matrix engine",
            )
        elif engine == "vectorized":
            def on_joined_batch(batch: JoinedBatch) -> None:
                for segment in batch.segments:
                    ecs_aggregates.observe_many(
                        batch.day, batch.client_key,
                        segment.target_id, segment.rtts_ms,
                    )
                    ldns_aggregates.observe_many(
                        batch.day, batch.ldns_id,
                        segment.target_id, segment.rtts_ms,
                    )

            backend = BeaconBackend(batch_observers=(on_joined_batch,))
            vectorized = _VectorizedBeaconEngine(
                scenario, selector, paths, cfg.beacon, backend,
                request_diffs, gate,
            )
            batches_counter = tel.counter(
                "engine.vectorized.batches_total",
                "(client, day) blocks synthesized as numpy batches",
            )
        else:
            def on_joined(row: JoinedMeasurement) -> None:
                ecs_aggregates.observe(
                    row.day, row.client_key, row.target_id, row.rtt_ms
                )
                ldns_aggregates.observe(
                    row.day, row.ldns_id, row.target_id, row.rtt_ms
                )

            backend = BeaconBackend([on_joined])

        scenario_seed = scenario.config.seed

        with tel.span("invariants"):
            # Per-client invariants, hoisted out of the day loop: Resource
            # Timing support (a property of the client's browser, drawn from
            # a per-client derived RNG so it is shard-independent) and the
            # Fig 3 region label — the paper splits out the United States
            # specifically, not all of North America.
            metro_db = scenario.metro_db
            resource_timing: Dict[str, bool] = {}
            regions: Dict[str, str] = {}
            for client in clients:
                key = client.key
                resource_timing[key] = (
                    derive_rng(scenario_seed, "resource-timing", key).random()
                    < cfg.beacon.resource_timing_support
                )
                if metro_db.get(client.home_metro).country == "US":
                    regions[key] = "united-states"
                else:
                    regions[key] = str(region_of_point(client.location))

        if engine == "matrix":
            with tel.span("matrix-member-table"):
                matrix = _MatrixBeaconEngine(
                    scenario,
                    selector,
                    paths,
                    cfg.beacon,
                    backend,
                    request_diffs,
                    ecs_aggregates,
                    ldns_aggregates,
                    gate,
                    clients,
                    regions,
                    resource_timing,
                )

        _log.info(
            "campaign starting",
            extra={
                "clients": len(clients),
                "days": calendar.num_days,
                "engine": engine,
                "sliced": self._client_slice is not None,
            },
        )

        beacon_count = 0
        run_started = time.perf_counter()
        for day in calendar.days():
          if self._fault_injector is not None:
            # Transient-exception site: the injected failure surfaces at
            # the start of a seed-derived day, i.e. genuinely mid-run.
            self._fault_injector.on_day(day, calendar.num_days)
          day_beacons_before = beacon_count
          with tel.span("day", index=day):
            day_start_time = time.perf_counter()
            day_keys = DayKeys(scenario_seed, day)
            plans = day_plans[day]
            inflations = day_inflations[day]
            is_weekend = calendar.is_weekend(day)
            day_start = calendar.seconds_at(day)
            day_unicast_extras = (
                load_schedule.unicast_extras(day)
                if load_schedule is not None
                else None
            )
            day_shed = 0
            # Sub-phase times are accumulated with bare perf_counter
            # reads (not nested spans) to keep per-client overhead off
            # the hot path, then recorded once per day below.
            workload_seconds = 0.0
            passive_seconds = 0.0
            beacon_seconds = 0.0

            if matrix is not None:
                # Matrix day: three cross-client passes replace the
                # per-client section bookkeeping.  Scalar staging stays
                # in Python (each client's workload draw is its own
                # derived stream), but phase timers and telemetry
                # counters are read/bumped once per day, not per client.
                active = []
                day_queries = 0
                idle_days = 0
                for client in clients:
                    key = client.key
                    rng = derive_rng(scenario_seed, "campaign", day, key)
                    queries = workload.daily_queries(client, is_weekend, rng)
                    if load_schedule is not None:
                        queries = load_schedule.scaled_queries(
                            day, key, queries
                        )
                    if queries <= 0:
                        idle_days += 1
                        continue
                    day_queries += queries
                    # Drawn immediately after the query volume: the
                    # campaign stream has no draws in between in any
                    # engine, so beacon counts match per-client runs.
                    active.append(
                        (
                            client,
                            plans[key],
                            queries,
                            workload.daily_beacons(queries, rng),
                        )
                    )
                idle_counter.inc(idle_days)
                client_days_counter.inc(len(active))
                queries_counter.inc(day_queries)
                section_now = time.perf_counter()
                workload_seconds = section_now - day_start_time
                section_start = section_now

                passive_appends = 0
                if load_schedule is None:
                    for client, plan, queries, _beacons in active:
                        key = client.key
                        for rank, count in zip(
                            plan.ranks,
                            largest_remainder_apportion(
                                queries, plan.fractions
                            ),
                        ):
                            frontend_id = paths.anycast(key, rank)[0]
                            admitted_count = gate.admit_count(
                                day, key, frontend_id, count
                            )
                            if admitted_count is not None:
                                passive.record(
                                    day, key, frontend_id, admitted_count
                                )
                        passive_appends += len(plan.ranks)
                else:
                    for client, plan, queries, _beacons in active:
                        key = client.key
                        routes, shed = _passive_routes(
                            paths, key, plan, queries,
                            load_schedule.landing(day, key),
                        )
                        day_shed += shed
                        for frontend_id, count in routes:
                            admitted_count = gate.admit_count(
                                day, key, frontend_id, count
                            )
                            if admitted_count is not None:
                                passive.record(
                                    day, key, frontend_id, admitted_count
                                )
                        passive_appends += len(routes)
                passive_counter.inc(passive_appends)
                section_now = time.perf_counter()
                passive_seconds = section_now - section_start
                section_start = section_now

                day_beacons = 0
                for client, plan, _queries, beacons in active:
                    if beacons <= 0:
                        continue
                    key = client.key
                    beacons_hist.observe(beacons)
                    day_beacons += beacons
                    effect = inflations.get(key)
                    anycast_inflation = 0.0
                    degraded_frontend = None
                    unicast_inflation = 0.0
                    if effect is not None:
                        if effect.scope is EpisodeScope.ANYCAST:
                            anycast_inflation = effect.inflation_ms
                        else:
                            candidates = selector.candidates(client.ldns_id)
                            degraded_frontend = candidates[
                                int(effect.selector * len(candidates))
                            ]
                            unicast_inflation = effect.inflation_ms
                    # Same shared per-(day, client) anycast stream as
                    # the other engines (see the per-client loop below).
                    anycast_offset = latency.sample_daily_variation_ms(
                        derive_rng(
                            scenario_seed, "daily-variation", day, key,
                            ANYCAST_TARGET,
                        ),
                        anycast=True,
                    )
                    anycast_extra = anycast_inflation + anycast_offset
                    if load_schedule is not None:
                        anycast_extra += load_schedule.anycast_extra(
                            day, key
                        )
                    dirty_slots = None
                    if record_faults is not None:
                        n_targets = 2 + min(
                            cfg.beacon.random_picks,
                            len(selector.pick_pool(client.ldns_id)),
                        )
                        dirty_slots = record_faults.slots_for(
                            day,
                            scenario.client_index(key),
                            beacons * n_targets,
                        )
                    matrix.stage_client_day(
                        key,
                        plan,
                        beacons,
                        anycast_extra,
                        degraded_frontend,
                        unicast_inflation,
                        dirty_slots,
                        load_extras=day_unicast_extras,
                    )
                chunks_counter.inc(matrix.run_day(day, day_keys))
                beacons_counter.inc(day_beacons)
                beacon_count += day_beacons
                beacon_seconds = time.perf_counter() - section_start
            else:
                for client in clients:
                    section_start = time.perf_counter()
                    key = client.key
                    # Everything this client does today draws from its own
                    # derived stream — independent of every other client.
                    rng = derive_rng(scenario_seed, "campaign", day, key)
                    plan = plans[key]
                    effect = inflations.get(key)
                    anycast_inflation = 0.0
                    degraded_frontend: Optional[str] = None
                    unicast_inflation = 0.0
                    if effect is not None:
                        if effect.scope is EpisodeScope.ANYCAST:
                            anycast_inflation = effect.inflation_ms
                        else:
                            candidates = selector.candidates(client.ldns_id)
                            degraded_frontend = candidates[
                                int(effect.selector * len(candidates))
                            ]
                            unicast_inflation = effect.inflation_ms

                    queries = workload.daily_queries(client, is_weekend, rng)
                    if load_schedule is not None:
                        queries = load_schedule.scaled_queries(
                            day, key, queries
                        )
                    if queries <= 0:
                        idle_counter.inc()
                        workload_seconds += time.perf_counter() - section_start
                        continue
                    client_days_counter.inc()
                    queries_counter.inc(queries)
                    section_now = time.perf_counter()
                    workload_seconds += section_now - section_start
                    section_start = section_now

                    # Passive production traffic: split across the day's
                    # routes with largest-remainder apportionment, so the
                    # recorded counts sum exactly to the day's query volume.
                    if load_schedule is None:
                        rank_frontends = tuple(
                            paths.anycast(key, rank)[0] for rank in plan.ranks
                        )
                        for frontend_id, count in zip(
                            rank_frontends,
                            largest_remainder_apportion(
                                queries, plan.fractions
                            ),
                        ):
                            admitted_count = gate.admit_count(
                                day, key, frontend_id, count
                            )
                            if admitted_count is not None:
                                passive.record(
                                    day, key, frontend_id, admitted_count
                                )
                        passive_counter.inc(len(rank_frontends))
                    else:
                        routes, shed = _passive_routes(
                            paths, key, plan, queries,
                            load_schedule.landing(day, key),
                        )
                        day_shed += shed
                        for frontend_id, count in routes:
                            admitted_count = gate.admit_count(
                                day, key, frontend_id, count
                            )
                            if admitted_count is not None:
                                passive.record(
                                    day, key, frontend_id, admitted_count
                                )
                        passive_counter.inc(len(routes))

                    beacons = workload.daily_beacons(queries, rng)
                    section_now = time.perf_counter()
                    passive_seconds += section_now - section_start
                    section_start = section_now
                    if beacons <= 0:
                        continue
                    beacons_counter.inc(beacons)
                    beacons_hist.observe(beacons)
                    client_index = scenario.client_index(key)
                    region = regions[key]
                    rt_supported = resource_timing[key]

                    # The anycast path's daily congestion offset lives on a
                    # shared per-(day, client) derived stream: every engine
                    # realizes the same anycast elevation days, keeping the
                    # per-client anycast distributions comparable across
                    # engines.  (Unicast path offsets are engine-stream
                    # terms — counter-based in the batched engines.)
                    anycast_offset = latency.sample_daily_variation_ms(
                        derive_rng(
                            scenario_seed, "daily-variation", day, key,
                            ANYCAST_TARGET,
                        ),
                        anycast=True,
                    )
                    anycast_extra = anycast_inflation + anycast_offset
                    if load_schedule is not None:
                        anycast_extra += load_schedule.anycast_extra(
                            day, key
                        )

                    # Record faults for this (day, client) cell, as flat
                    # session * T + position slots.  The target count T is a
                    # per-client constant shared by both engines, so the
                    # slot map is engine- and shard-independent.
                    dirty_slots: Optional[Dict[int, FaultKind]] = None
                    if record_faults is not None:
                        n_targets = 2 + min(
                            cfg.beacon.random_picks,
                            len(selector.pick_pool(client.ldns_id)),
                        )
                        dirty_slots = record_faults.slots_for(
                            day, client_index, beacons * n_targets
                        )

                    if vectorized is not None:
                        vectorized.run_client_day(
                            day=day,
                            day_keys=day_keys,
                            client=client,
                            client_index=client_index,
                            region=region,
                            resource_timing_supported=rt_supported,
                            plan=plan,
                            beacons=beacons,
                            anycast_extra_ms=anycast_extra,
                            degraded_frontend=degraded_frontend,
                            unicast_inflation_ms=unicast_inflation,
                            dirty_slots=dirty_slots,
                            load_extras=day_unicast_extras,
                        )
                        beacon_count += beacons
                        batches_counter.inc()
                        beacon_seconds += time.perf_counter() - section_start
                        continue

                    unicast_offsets: Dict[str, float] = {}
                    session_rank_cell = [plan.ranks[0]]

                    def serve(target_id: str) -> Tuple[str, float]:
                        if target_id == ANYCAST_TARGET:
                            frontend_id, baseline = paths.anycast(
                                key, session_rank_cell[0]
                            )
                            extra = anycast_extra
                        else:
                            frontend_id = target_id
                            baseline = paths.unicast(key, target_id)
                            offset = unicast_offsets.get(target_id)
                            if offset is None:
                                offset = latency.sample_daily_variation_ms(
                                    derive_rng(
                                        scenario_seed, "daily-variation", day,
                                        key, target_id,
                                    ),
                                    anycast=False,
                                )
                                unicast_offsets[target_id] = offset
                            extra = offset
                            if day_unicast_extras:
                                extra += day_unicast_extras.get(
                                    target_id, 0.0
                                )
                            if target_id == degraded_frontend:
                                extra += unicast_inflation
                        rtt = (
                            baseline
                            + latency.sample_jitter_ms(rng)
                            + extra
                        )
                        return frontend_id, rtt

                    record_index = 0
                    for _ in range(beacons):
                        session_rank_cell[0] = plan.sample_rank(rng)

                        fetches = runner.run_beacon(
                            ldns_id=client.ldns_id,
                            resource_timing_supported=rt_supported,
                            serve=serve,
                            rng=rng,
                            now=day_start,
                        )
                        beacon_count += 1

                        anycast_rtt: Optional[float] = None
                        best_unicast: Optional[float] = None
                        for fetch in fetches:
                            rtt_ms = fetch.rtt_ms
                            if dirty_slots:
                                kind = dirty_slots.get(record_index)
                                if kind is not None:
                                    rtt_ms = RecordFaultInjector.dirty_value(
                                        kind, rtt_ms
                                    )
                            admitted = gate.admit(day, key, record_index, rtt_ms)
                            record_index += 1
                            if admitted is None:
                                # Quarantined: the record never reaches any
                                # log stream, so it cannot join.
                                continue
                            backend.on_dns(
                                fetch.measurement_id, client.ldns_id, fetch.target_id
                            )
                            backend.on_server(
                                fetch.measurement_id, fetch.serving_frontend_id
                            )
                            backend.on_http(
                                HttpLogEntry(
                                    day=day,
                                    measurement_id=fetch.measurement_id,
                                    client_key=key,
                                    rtt_ms=admitted,
                                    used_resource_timing=fetch.used_resource_timing,
                                )
                            )
                            if fetch.target_id == ANYCAST_TARGET:
                                anycast_rtt = admitted
                            elif best_unicast is None or admitted < best_unicast:
                                best_unicast = admitted

                        if anycast_rtt is not None and best_unicast is not None:
                            request_diffs.observe(
                                day, client_index, region, anycast_rtt, best_unicast
                            )

                    beacon_seconds += time.perf_counter() - section_start

            runner.purge_caches(calendar.seconds_at(day) + 86_400.0)
            day_elapsed = time.perf_counter() - day_start_time
            day_hist.observe(day_elapsed)
            tel.spans.record_seconds("campaign/day/workload", workload_seconds)
            tel.spans.record_seconds("campaign/day/passive", passive_seconds)
            tel.spans.record_seconds("campaign/day/beacons", beacon_seconds)
            _log.debug(
                "day complete",
                extra={"day": day, "seconds": round(day_elapsed, 4)},
            )
          # Per-day work totals as a data-scope trace event: numeric
          # args sum shard-invariantly (each shard contributes its
          # slice's beacons), so serial and sharded trace digests agree.
          tel.trace.data(
              "engine.day",
              "engine",
              index=day,
              engine=engine,
              beacons=beacon_count - day_beacons_before,
          )
          if load_schedule is not None:
            # Shed counts are integers apportioned per client, so each
            # shard's partial sum plus the trace digest's numeric
            # aggregation reproduce the serial totals exactly.
            shed_counter.inc(day_shed)
            tel.trace.data(
                "load.day", "load", index=day, shed_queries=day_shed
            )
          if self._heartbeat is not None:
            self._heartbeat(day, calendar.num_days, beacon_count)
          if cfg.progress_callback is not None:
            cfg.progress_callback(day, calendar.num_days)
          if cfg.progress_listener is not None:
            elapsed = time.perf_counter() - run_started
            cfg.progress_listener(
                CampaignProgress(
                    days_completed=day + 1,
                    num_days=calendar.num_days,
                    beacons=beacon_count,
                    beacons_per_second=(
                        beacon_count / elapsed if elapsed > 0 else 0.0
                    ),
                    elapsed_seconds=elapsed,
                )
            )

        with tel.span("finalize"):
            if backend.pending_count:
                raise ConfigurationError(
                    f"{backend.pending_count} measurements never joined — "
                    "campaign bookkeeping bug"
                )
            tel.counter(
                "campaign.measurements_total",
                "joined measurements (three-way DNS/server/HTTP join, §3.2.2)",
            ).inc(backend.joined_count)
            # A gauge, not a counter: every shard runs the full calendar,
            # so "days simulated" is a property of the run, not additive.
            tel.gauge(
                "campaign.days", "calendar days simulated"
            ).set(calendar.num_days)
            dns_hits, dns_misses = runner.cache_stats()
            tel.counter(
                "dns.cache.hits_total",
                "LDNS resolver-cache hits during beacon fetches",
            ).inc(dns_hits)
            tel.counter(
                "dns.cache.misses_total",
                "LDNS resolver-cache misses (fresh resolutions)",
            ).inc(dns_misses)

            # Validation accounting: the gate counts with plain ints on
            # the hot path; publish them once here.
            tel.counter(
                "validate.records_total",
                "records checked at the ingestion boundaries",
            ).inc(gate.records_total)
            tel.counter(
                "validate.quarantined_total",
                "invalid records dropped into the quarantine log",
            ).inc(gate.dropped_total)
            tel.counter(
                "validate.repaired_total",
                "invalid records clamped and kept (repair policy)",
            ).inc(gate.repaired_total)
            for reason, count in sorted(self.quarantine.counts.items()):
                tel.counter(
                    f"validate.quarantined.{reason}_total",
                    f"records flagged as {reason}",
                ).inc(count)
                tel.trace.data(
                    "quarantine", "validate", index=reason, records=count
                )
            if record_faults is not None:
                planted = record_faults.planted
                tel.counter(
                    "faults.records_planted_total",
                    "records dirtied by the dirty-data fault injector",
                ).inc(sum(planted.values()))
                for kind_value, count in sorted(planted.items()):
                    tel.counter(
                        f"faults.records.{kind_value}_total",
                        f"records dirtied as {kind_value}",
                    ).inc(count)

            if load_schedule is not None:
                # The schedule is global and identical in every shard,
                # so max-merged gauges survive shard merging unchanged.
                summary = load_schedule.summary
                frontends = summary["frontends"]
                tel.gauge(
                    "load.peak_utilization",
                    "highest per-front-end utilization over the run",
                    merge="max",
                ).set(
                    max(
                        row["peak_utilization"]
                        for row in frontends.values()
                    )
                    if frontends
                    else 0.0
                )
                tel.gauge(
                    "load.peak_shed_fraction",
                    "highest per-front-end shed fraction over the run",
                    merge="max",
                ).set(
                    max(
                        row["peak_shed_fraction"]
                        for row in frontends.values()
                    )
                    if frontends
                    else 0.0
                )
                withdrawn_rows = sorted(
                    (frontend_id, row["withdrawn_day"])
                    for frontend_id, row in frontends.items()
                    if row["withdrawn_day"] is not None
                )
                tel.gauge(
                    "load.withdrawn_frontends",
                    "front-ends withdrawn (failed or cascaded) by "
                    "the end of the run",
                    merge="max",
                ).set(float(len(withdrawn_rows)))
                for frontend_id, withdrawn_day in withdrawn_rows:
                    tel.trace.instant(
                        "load.withdrawn",
                        "load",
                        frontend=frontend_id,
                        day=withdrawn_day,
                    )

            # Memory accounting: lifetime peak RSS (max-merged across
            # shards) plus sketch-compression counters when the bounded
            # mode is on.
            tel.gauge(
                "campaign.peak_rss_bytes",
                "OS-reported peak resident set of the campaign process",
                merge="max",
            ).set(float(peak_rss_bytes()))
            if cfg.sketch_threshold is not None:
                exact_digests = sketch_digests = 0
                sketch_buckets = sketch_samples = sketch_halvings = 0
                for aggregates in (ecs_aggregates, ldns_aggregates):
                    e, s, b, n, h = aggregates.sketch_stats()
                    exact_digests += e
                    sketch_digests += s
                    sketch_buckets += b
                    sketch_samples += n
                    sketch_halvings += h
                diff_sketches, diff_buckets, diff_samples, diff_halvings = (
                    request_diffs.sketch_stats()
                )
                tel.counter(
                    "sketch.digests_exact_total",
                    "latency digests still below the sketch threshold",
                ).inc(exact_digests)
                tel.counter(
                    "sketch.digests_promoted_total",
                    "latency digests promoted to bounded sketches",
                ).inc(sketch_digests)
                tel.counter(
                    "sketch.buckets_total",
                    "sketch buckets held across all promoted digests "
                    "and diff sketches",
                ).inc(sketch_buckets + diff_buckets)
                tel.counter(
                    "sketch.samples_compressed_total",
                    "samples represented by sketches instead of raw "
                    "retention",
                ).inc(sketch_samples + diff_samples)
                tel.counter(
                    "sketch.diff_sketches_total",
                    "bounded (day, region) request-diff sketches",
                ).inc(diff_sketches)
                tel.counter(
                    "sketch.compressions_total",
                    "resolution halvings forced by the per-sketch "
                    "bucket cap",
                ).inc(sketch_halvings + diff_halvings)

        _log.info(
            "campaign complete",
            extra={
                "beacons": beacon_count,
                "measurements": backend.joined_count,
            },
        )
        covered = (
            (self._client_slice,)
            if self._client_slice is not None
            else None  # None -> full coverage
        )
        return StudyDataset(
            calendar=calendar,
            clients=scenario.clients,
            ecs_aggregates=ecs_aggregates,
            ldns_aggregates=ldns_aggregates,
            request_diffs=request_diffs,
            passive=passive,
            beacon_count=beacon_count,
            measurement_count=backend.joined_count,
            covered_ranges=covered,
            load_summary=(
                load_schedule.summary
                if load_schedule is not None
                else None
            ),
        )
