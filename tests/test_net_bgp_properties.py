"""Property-based BGP tests over randomly generated topologies.

Hypothesis drives the topology-generator knobs; for every resulting
Internet and a random announcement we assert the global invariants that
must hold for *any* valley-free route computation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geo.metros import MetroDatabase
from repro.net.anycast import resolve_route
from repro.net.bgp import Announcement, RouteComputation
from repro.net.ip import IPv4Prefix
from repro.net.topology import (
    AsRole,
    Relationship,
    TopologyConfig,
    generate_topology,
)

PREFIX = IPv4Prefix.parse("203.0.113.0/24")

configs = st.builds(
    TopologyConfig,
    tier1_count=st.integers(min_value=2, max_value=6),
    tier1_presence=st.floats(min_value=0.3, max_value=0.9),
    transit_per_region=st.integers(min_value=1, max_value=3),
    transit_presence=st.floats(min_value=0.4, max_value=0.95),
    access_per_country=st.integers(min_value=1, max_value=2),
    cold_potato_fraction=st.floats(min_value=0.0, max_value=0.4),
    transit_cold_potato_fraction=st.floats(min_value=0.0, max_value=0.4),
    multihoming_probability=st.floats(min_value=0.0, max_value=1.0),
)


@st.composite
def topology_and_rib(draw):
    config = draw(configs)
    seed = draw(st.integers(min_value=0, max_value=10_000))
    topology = generate_topology(MetroDatabase(), config, seed=seed)
    tier1s = topology.ases_with_role(AsRole.TIER1)
    origin = tier1s[draw(st.integers(min_value=0, max_value=len(tier1s) - 1))]
    rib = RouteComputation(topology).compute(Announcement(PREFIX, origin.asn))
    return topology, rib, origin


@given(topology_and_rib())
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_generated_internet_routing_invariants(world):
    topology, rib, origin = world

    # 1. A tier-1 origin is universally reachable.
    assert len(rib) == len(topology)

    for entry in rib:
        path = entry.as_path
        # 2. Loop-free paths ending at the origin.
        assert len(set(path)) == len(path)
        assert path[-1] == origin.asn
        # 3. Adjacent path elements are topology neighbors, and the
        #    hand-off metros are legal for the first hop.
        for here, there in zip(path, path[1:]):
            assert topology.are_adjacent(here, there)
        if not entry.is_origin:
            assert entry.handoff_metros <= topology.neighbor(
                entry.asn, entry.next_hop
            ).metros
        # 4. Valley-freedom: once the path stops climbing via providers it
        #    never climbs again, and at most one peer link is crossed.
        state = "up"
        peers_crossed = 0
        for here, there in zip(path, path[1:]):
            rel = topology.neighbor(here, there).relationship
            if rel is Relationship.PEER:
                peers_crossed += 1
            if state == "up":
                if rel is Relationship.PROVIDER:
                    continue
                state = "down"
            else:
                assert rel is Relationship.CUSTOMER
        assert peers_crossed <= 1

    # 5. The data plane terminates at the origin from every access AS PoP.
    for access in topology.ases_with_role(AsRole.ACCESS)[:10]:
        metro = sorted(access.pop_metros)[0]
        route = resolve_route(topology, rib, access.asn, metro)
        assert route.origin_asn == origin.asn
        assert route.ingress_metro in origin.pop_metros
