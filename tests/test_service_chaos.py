"""Chaos parity: a killed-and-resumed service equals an uninterrupted one.

The headline crash/restart guarantee of the live service: a run that is
chaos-killed mid-stream and resumed from its checkpoint produces
**bit-identical** predictor outputs, rolling dataset digest, and
quarantine digest to a run that was never interrupted.  These tests
drive that guarantee through the in-process API (single and repeated
crashes, transient-fault auto-retry, mid-day checkpoint cadence) and
through the ``repro replay`` CLI (crash → exit code 3 → ``--resume-from``
→ digests match), over a stream deliberately dirtied with ``record-*``
faults so the quarantine digest is a meaningful part of the identity.
"""

import dataclasses
import json

import pytest

from repro import cli
from repro.clients.population import ClientPopulationConfig
from repro.faults.inject import InjectedCrashError
from repro.faults.plan import FaultPlan
from repro.measurement.export import save_dataset
from repro.service import LiveService, dirty_events, events_from_dataset
from repro.service.ingest import ServiceConfig
from repro.simulation.campaign import CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import Scenario, ScenarioConfig

pytestmark = [pytest.mark.service, pytest.mark.chaos]

SEED = 47
NUM_DAYS = 3

#: The worker fault is spec index 0 in every plan so the ``record-*``
#: specs keep their indexes (record-fault cells derive from spec index):
#: every plan here dirties exactly the same stream positions.
CRASH_PLAN = "crash:1,record-corrupt:4,record-clock-skew:3"
DOUBLE_CRASH_PLAN = "crash:2,record-corrupt:4,record-clock-skew:3"
TRANSIENT_PLAN = "exception:2,record-corrupt:4,record-clock-skew:3"
RECORD_PLAN = "record-corrupt:4,record-clock-skew:3"


@pytest.fixture(scope="module")
def chaos_dataset():
    scenario = Scenario.build(
        ScenarioConfig(
            seed=SEED,
            population=ClientPopulationConfig(prefix_count=40),
            calendar=SimulationCalendar(num_days=NUM_DAYS),
        )
    )
    return CampaignRunner(scenario).run()


@pytest.fixture(scope="module")
def dirty_stream(chaos_dataset):
    """The recorded stream with record faults applied once, up front.

    Every run in this module consumes this same damaged stream, so the
    only variable under test is the service's fault handling.
    """
    events = events_from_dataset(chaos_dataset)
    return dirty_events(
        chaos_dataset, events, FaultPlan.from_spec(RECORD_PLAN), SEED
    )


@pytest.fixture(scope="module")
def baseline(chaos_dataset, dirty_stream):
    """The uninterrupted run the chaos runs must reproduce."""
    service = LiveService(
        ServiceConfig(seed=SEED),
        num_days=NUM_DAYS,
        source_fingerprint=chaos_dataset.digest(),
    )
    result = service.run_stream(list(dirty_stream))
    assert result.quarantine_summary["dropped"] > 0
    return result


def assert_bit_identical(result, baseline):
    assert result.predictions_digest == baseline.predictions_digest
    assert result.stream_digest == baseline.stream_digest
    assert result.quarantine_digest == baseline.quarantine_digest
    assert result.predictions == baseline.predictions
    assert result.beacons_admitted == baseline.beacons_admitted
    assert result.days_closed == baseline.days_closed


class TestCrashResume:
    def make_config(self, plan, tmp_path, **overrides):
        return ServiceConfig(
            seed=SEED,
            fault_plan=FaultPlan.from_spec(plan),
            checkpoint_dir=str(tmp_path / "ckpt"),
            **overrides,
        )

    def run_until_complete(
        self, config, chaos_dataset, dirty_stream, max_deaths=5
    ):
        """Simulate process deaths: a fresh LiveService per crash."""
        deaths = 0
        while True:
            service = LiveService(
                config if deaths == 0
                else dataclasses.replace(config, resume=True),
                num_days=NUM_DAYS,
                source_fingerprint=chaos_dataset.digest(),
            )
            try:
                return deaths, service.run_stream(list(dirty_stream))
            except InjectedCrashError:
                deaths += 1
                assert deaths <= max_deaths

    def test_crash_then_resume_is_bit_identical(
        self, chaos_dataset, dirty_stream, baseline, tmp_path
    ):
        config = self.make_config(CRASH_PLAN, tmp_path)
        deaths, result = self.run_until_complete(
            config, chaos_dataset, dirty_stream
        )
        assert deaths == 1
        assert result.attempt == 1
        assert_bit_identical(result, baseline)

    def test_repeated_crashes_still_converge(
        self, chaos_dataset, dirty_stream, baseline, tmp_path
    ):
        config = self.make_config(DOUBLE_CRASH_PLAN, tmp_path)
        deaths, result = self.run_until_complete(
            config, chaos_dataset, dirty_stream
        )
        assert deaths == 2
        assert_bit_identical(result, baseline)

    def test_mid_day_checkpoint_cadence_preserves_identity(
        self, chaos_dataset, dirty_stream, baseline, tmp_path
    ):
        """Fine-grained every-N-events spills resume mid-day cleanly."""
        config = self.make_config(
            CRASH_PLAN, tmp_path, checkpoint_every_events=500
        )
        deaths, result = self.run_until_complete(
            config, chaos_dataset, dirty_stream
        )
        assert deaths == 1
        assert result.checkpoints_written > NUM_DAYS
        assert result.resumed_from_cursor > 0
        assert_bit_identical(result, baseline)

    def test_transient_faults_absorbed_by_retry(
        self, chaos_dataset, dirty_stream, baseline
    ):
        """Exceptions auto-retry in-process, no checkpoint needed."""
        service = LiveService(
            ServiceConfig(
                seed=SEED, fault_plan=FaultPlan.from_spec(TRANSIENT_PLAN)
            ),
            num_days=NUM_DAYS,
            source_fingerprint=chaos_dataset.digest(),
        )
        result = service.run_stream(list(dirty_stream))
        assert result.retries == 2
        assert_bit_identical(result, baseline)

    def test_checkpoint_with_different_identity_is_ignored(
        self, chaos_dataset, dirty_stream, tmp_path
    ):
        config = self.make_config(CRASH_PLAN, tmp_path)
        with pytest.raises(InjectedCrashError):
            LiveService(
                config,
                num_days=NUM_DAYS,
                source_fingerprint=chaos_dataset.digest(),
            ).run_stream(list(dirty_stream))
        # A semantically different service (other min_samples) must not
        # adopt the spilled state.
        other = dataclasses.replace(
            config,
            resume=True,
            fault_plan=None,
            predictor=dataclasses.replace(
                config.predictor, min_samples=5
            ),
        )
        service = LiveService(
            other,
            num_days=NUM_DAYS,
            source_fingerprint=chaos_dataset.digest(),
        )
        result = service.run_stream(list(dirty_stream))
        assert result.resumed_from_cursor == 0


class TestCliChaosParity:
    def test_cli_crash_exit_code_then_resume_matches_baseline(
        self, chaos_dataset, tmp_path
    ):
        dataset_path = tmp_path / "campaign.json"
        ckpt = tmp_path / "ckpt"
        save_dataset(chaos_dataset, str(dataset_path))

        crashed = tmp_path / "crashed.json"
        code = cli.main(
            [
                "replay", str(dataset_path),
                "--seed", str(SEED),
                "--fault-plan", CRASH_PLAN,
                "--checkpoint-dir", str(ckpt),
                "--manifest-out", str(crashed),
            ]
        )
        assert code == cli.EXIT_SERVICE_CRASHED
        assert not crashed.exists()

        resumed = tmp_path / "resumed.json"
        code = cli.main(
            [
                "replay", str(dataset_path),
                "--seed", str(SEED),
                "--fault-plan", CRASH_PLAN,
                "--resume-from", str(ckpt),
                "--manifest-out", str(resumed),
            ]
        )
        assert code == 0

        # The uninterrupted reference swaps the crash for a transient
        # fault at the same spec index: the record faults hit the same
        # cells and the exception is absorbed in-process.
        reference = tmp_path / "reference.json"
        code = cli.main(
            [
                "replay", str(dataset_path),
                "--seed", str(SEED),
                "--fault-plan", TRANSIENT_PLAN.replace(":2", ":1"),
                "--manifest-out", str(reference),
            ]
        )
        assert code == 0

        resumed_doc = json.loads(resumed.read_text())
        reference_doc = json.loads(reference.read_text())
        assert resumed_doc["digests"] == reference_doc["digests"]
        assert resumed_doc["attempt"] == 1
        assert resumed_doc["quarantine"]["dropped"] > 0
