"""AS-level Internet topology with geographic points of presence.

The model captures exactly the structures the paper's case studies implicate
in poor anycast performance (§5):

* ASes have *points of presence* (PoPs) at metros, and interconnect with
  neighbors only at metros where both are present.
* Each AS has an *egress policy*: hot-potato (hand traffic off at the
  interconnect nearest its entry point — the common default) or cold-potato
  (carry traffic to one designated egress PoP, reproducing the "ISP carries
  traffic from Moscow to Stockholm" pathology).
* Relationships are customer–provider or settlement-free peering, and route
  export follows the Gao–Rexford rules (see :mod:`repro.net.bgp`).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.metros import Metro, MetroDatabase
from repro.geo.regions import Region


class AsRole(enum.Enum):
    """Coarse role of an AS in the topology."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    ACCESS = "access"
    CDN = "cdn"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class EgressPolicy(enum.Enum):
    """How an AS picks the interconnect to hand traffic to the next hop."""

    #: Hand off at the interconnect nearest where traffic entered the AS.
    HOT_POTATO = "hot-potato"
    #: Carry traffic internally to one designated egress PoP first.
    COLD_POTATO = "cold-potato"


class LinkKind(enum.Enum):
    """Business relationship on an inter-AS link."""

    CUSTOMER_PROVIDER = "customer-provider"
    PEERING = "peering"


class Relationship(enum.Enum):
    """A neighbor's relationship *from this AS's perspective*."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"


@dataclass(frozen=True)
class PointOfPresence:
    """An AS's presence at one metro."""

    asn: int
    metro_code: str


@dataclass(frozen=True)
class AutonomousSystem:
    """An autonomous system.

    Attributes:
        asn: AS number (unique).
        name: Human-readable name.
        role: Tier-1 / transit / access / CDN.
        pop_metros: Metro codes where this AS has PoPs.
        egress_policy: Hot- or cold-potato interconnect selection.
        cold_potato_egress: Designated egress metro (required iff the policy
            is cold-potato); must be one of ``pop_metros``.
    """

    asn: int
    name: str
    role: AsRole
    pop_metros: FrozenSet[str]
    egress_policy: EgressPolicy = EgressPolicy.HOT_POTATO
    cold_potato_egress: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.pop_metros:
            raise TopologyError(f"AS{self.asn} has no PoPs")
        if self.egress_policy is EgressPolicy.COLD_POTATO:
            if self.cold_potato_egress is None:
                raise TopologyError(
                    f"AS{self.asn} is cold-potato but has no designated egress"
                )
            if self.cold_potato_egress not in self.pop_metros:
                raise TopologyError(
                    f"AS{self.asn} designated egress {self.cold_potato_egress!r}"
                    " is not one of its PoPs"
                )
        elif self.cold_potato_egress is not None:
            raise TopologyError(
                f"AS{self.asn} is hot-potato but has a designated egress"
            )


@dataclass(frozen=True)
class Link:
    """An inter-AS adjacency.

    For ``CUSTOMER_PROVIDER`` links, ``a`` is the customer and ``b`` the
    provider.  ``metros`` lists the interconnection metros (both ASes must
    have PoPs there).
    """

    a: int
    b: int
    kind: LinkKind
    metros: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-link on AS{self.a}")
        if not self.metros:
            raise TopologyError(
                f"link AS{self.a}-AS{self.b} has no interconnection metros"
            )


@dataclass(frozen=True)
class Neighbor:
    """Adjacency record from one AS's perspective."""

    asn: int
    relationship: Relationship
    metros: FrozenSet[str]


class Topology:
    """An immutable AS-level topology bound to a metro database."""

    def __init__(
        self,
        metro_db: MetroDatabase,
        ases: Iterable[AutonomousSystem],
        links: Iterable[Link],
    ) -> None:
        self._metro_db = metro_db
        self._ases: Dict[int, AutonomousSystem] = {}
        for as_ in ases:
            if as_.asn in self._ases:
                raise TopologyError(f"duplicate ASN {as_.asn}")
            for code in as_.pop_metros:
                if code not in metro_db:
                    raise TopologyError(
                        f"AS{as_.asn} has a PoP at unknown metro {code!r}"
                    )
            self._ases[as_.asn] = as_

        self._links: List[Link] = []
        self._neighbors: Dict[int, Dict[int, Neighbor]] = {
            asn: {} for asn in self._ases
        }
        for link in links:
            self._add_link(link)
        # Egress rankings depend only on (anchor metro, candidate set)
        # over this frozen topology; route resolution asks for the same
        # handful of rankings once per client, so memoize them.
        self._egress_rank_cache: Dict[
            Tuple[str, Tuple[str, ...]], Tuple[str, ...]
        ] = {}

    def _add_link(self, link: Link) -> None:
        for asn in (link.a, link.b):
            if asn not in self._ases:
                raise TopologyError(f"link references unknown AS{asn}")
        for code in link.metros:
            for asn in (link.a, link.b):
                if code not in self._ases[asn].pop_metros:
                    raise TopologyError(
                        f"link AS{link.a}-AS{link.b} interconnects at "
                        f"{code!r} where AS{asn} has no PoP"
                    )
        if link.b in self._neighbors[link.a]:
            raise TopologyError(
                f"duplicate link between AS{link.a} and AS{link.b}"
            )
        self._links.append(link)
        if link.kind is LinkKind.CUSTOMER_PROVIDER:
            rel_ab = Relationship.PROVIDER  # from a's view, b is its provider
            rel_ba = Relationship.CUSTOMER
        else:
            rel_ab = Relationship.PEER
            rel_ba = Relationship.PEER
        self._neighbors[link.a][link.b] = Neighbor(
            asn=link.b, relationship=rel_ab, metros=link.metros
        )
        self._neighbors[link.b][link.a] = Neighbor(
            asn=link.a, relationship=rel_ba, metros=link.metros
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def metro_db(self) -> MetroDatabase:
        """The metro database this topology is bound to."""
        return self._metro_db

    @property
    def links(self) -> Tuple[Link, ...]:
        """All links, in insertion order."""
        return tuple(self._links)

    def __len__(self) -> int:
        return len(self._ases)

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._ases.values())

    def get(self, asn: int) -> AutonomousSystem:
        """The AS with the given number.

        Raises:
            TopologyError: if the ASN is unknown.
        """
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    def ases_with_role(self, role: AsRole) -> Tuple[AutonomousSystem, ...]:
        """All ASes with the given role."""
        return tuple(a for a in self._ases.values() if a.role == role)

    def neighbors(self, asn: int) -> Tuple[Neighbor, ...]:
        """Adjacency records for an AS (deterministic order by ASN)."""
        self.get(asn)
        table = self._neighbors[asn]
        return tuple(table[key] for key in sorted(table))

    def neighbor(self, asn: int, other: int) -> Neighbor:
        """The adjacency record between ``asn`` and ``other``.

        Raises:
            TopologyError: if the ASes are not adjacent.
        """
        self.get(asn)
        try:
            return self._neighbors[asn][other]
        except KeyError:
            raise TopologyError(f"AS{asn} and AS{other} are not adjacent") from None

    def are_adjacent(self, asn: int, other: int) -> bool:
        """Whether two ASes share a link."""
        return asn in self._ases and other in self._neighbors.get(asn, {})

    # ------------------------------------------------------------------
    # Egress selection
    # ------------------------------------------------------------------

    def ranked_egress_metros(
        self, asn: int, entry_metro: str, candidate_metros: Iterable[str]
    ) -> Tuple[str, ...]:
        """Candidate hand-off metros in the order the AS's policy prefers.

        Hot-potato ASes rank candidates by distance from the entry metro;
        cold-potato ASes rank by distance from their designated egress PoP.
        Ties break on metro code for determinism.
        """
        as_ = self.get(asn)
        if as_.egress_policy is EgressPolicy.COLD_POTATO:
            anchor_code = as_.cold_potato_egress
        else:
            anchor_code = entry_metro
        cache_key = (anchor_code, frozenset(candidate_metros))
        cached = self._egress_rank_cache.get(cache_key)
        if cached is not None:
            return cached
        candidates = sorted(cache_key[1])
        if not candidates:
            raise TopologyError(
                f"no candidate egress metros for AS{asn} from {entry_metro!r}"
            )
        anchor = self._metro_db.get(anchor_code).location
        ranked = tuple(
            sorted(
                candidates,
                key=lambda code: (
                    haversine_km(self._metro_db.get(code).location, anchor),
                    code,
                ),
            )
        )
        self._egress_rank_cache[cache_key] = ranked
        return ranked

    def egress_metro(
        self,
        asn: int,
        entry_metro: str,
        candidate_metros: Iterable[str],
        rank: int = 0,
    ) -> str:
        """Pick the interconnect metro AS ``asn`` hands traffic off at.

        Args:
            asn: The AS carrying the traffic.
            entry_metro: Metro where the traffic entered (or originated in)
                this AS.
            candidate_metros: Interconnect metros available toward the next
                hop for the route in question.
            rank: Preference rank to select — 0 is the policy's first
                choice; higher ranks model transient route shifts (clamped
                to the number of candidates).

        Returns:
            The chosen metro code, per the AS's egress policy.  Hot-potato
            picks the candidate nearest the entry metro; cold-potato picks
            the candidate nearest the AS's designated egress PoP.
        """
        if rank < 0:
            raise TopologyError(f"egress rank must be >= 0, got {rank}")
        ranked = self.ranked_egress_metros(asn, entry_metro, candidate_metros)
        return ranked[min(rank, len(ranked) - 1)]


class TopologyBuilder:
    """Incremental, validated construction of a :class:`Topology`."""

    def __init__(self, metro_db: MetroDatabase) -> None:
        self._metro_db = metro_db
        self._ases: Dict[int, AutonomousSystem] = {}
        self._links: List[Link] = []
        self._link_keys: Set[FrozenSet[int]] = set()

    @property
    def metro_db(self) -> MetroDatabase:
        """The metro database the topology will be bound to."""
        return self._metro_db

    def add_as(self, as_: AutonomousSystem) -> AutonomousSystem:
        """Add an AS; duplicate ASNs are an error."""
        if as_.asn in self._ases:
            raise TopologyError(f"duplicate ASN {as_.asn}")
        for code in as_.pop_metros:
            if code not in self._metro_db:
                raise TopologyError(
                    f"AS{as_.asn} has a PoP at unknown metro {code!r}"
                )
        self._ases[as_.asn] = as_
        return as_

    def has_as(self, asn: int) -> bool:
        """Whether an AS with this number was added."""
        return asn in self._ases

    def get_as(self, asn: int) -> AutonomousSystem:
        """A previously added AS."""
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    def ases(self) -> Tuple[AutonomousSystem, ...]:
        """All ASes added so far."""
        return tuple(self._ases.values())

    def shared_metros(self, a: int, b: int) -> FrozenSet[str]:
        """Metros where both ASes have PoPs."""
        return self.get_as(a).pop_metros & self.get_as(b).pop_metros

    def connect(
        self,
        a: int,
        b: int,
        kind: LinkKind,
        metros: Optional[Iterable[str]] = None,
    ) -> Link:
        """Add a link between two ASes.

        If ``metros`` is omitted, the link interconnects at every shared
        metro.  For customer-provider links, ``a`` is the customer.
        """
        key = frozenset((a, b))
        if key in self._link_keys:
            raise TopologyError(f"duplicate link between AS{a} and AS{b}")
        if metros is None:
            interconnects: FrozenSet[str] = self.shared_metros(a, b)
        else:
            interconnects = frozenset(metros)
        link = Link(a=a, b=b, kind=kind, metros=interconnects)
        # Validate PoP presence eagerly for a clear error site.
        for code in interconnects:
            for asn in (a, b):
                if code not in self.get_as(asn).pop_metros:
                    raise TopologyError(
                        f"link AS{a}-AS{b} interconnects at {code!r} "
                        f"where AS{asn} has no PoP"
                    )
        self._links.append(link)
        self._link_keys.add(key)
        return link

    def build(self) -> Topology:
        """Freeze into an immutable :class:`Topology`."""
        return Topology(self._metro_db, self._ases.values(), self._links)


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs for the synthetic Internet generator.

    The defaults produce an Internet whose anycast behaviour lands near the
    paper's headline numbers (see DESIGN.md §5); tests and benches may
    shrink the counts for speed.
    """

    #: Number of global tier-1 backbones.
    tier1_count: int = 8
    #: Fraction of all metros where each tier-1 has a PoP.
    tier1_presence: float = 0.65
    #: Regional transit providers per region.
    transit_per_region: int = 3
    #: Fraction of a region's metros covered by each transit AS.
    transit_presence: float = 0.92
    #: Intercontinental PoPs each transit AS additionally operates.
    transit_remote_pop_count: int = 2
    #: Fraction of transit ASes using cold-potato egress — the mechanism
    #: behind long-haul anycast misdirection (an Asian ISP's transit
    #: handing traffic to the CDN in New York).
    transit_cold_potato_fraction: float = 0.04
    #: Access ISPs per metro "cluster" (ISPs are per-country groupings).
    access_per_country: int = 3
    #: Max metros a single access ISP covers within its country.
    access_max_metros: int = 6
    #: Fraction of access ISPs that use cold-potato egress selection.
    cold_potato_fraction: float = 0.05
    #: Probability an access ISP buys transit from a second provider.
    multihoming_probability: float = 0.45
    #: First ASN for each role block (purely cosmetic).
    tier1_base_asn: int = 100
    transit_base_asn: int = 1000
    access_base_asn: int = 10000

    def __post_init__(self) -> None:
        if self.tier1_count < 1:
            raise ConfigurationError("tier1_count must be >= 1")
        for name in ("tier1_presence", "transit_presence"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
        if not 0.0 <= self.cold_potato_fraction <= 1.0:
            raise ConfigurationError("cold_potato_fraction must be in [0, 1]")
        if not 0.0 <= self.transit_cold_potato_fraction <= 1.0:
            raise ConfigurationError(
                "transit_cold_potato_fraction must be in [0, 1]"
            )
        if self.transit_remote_pop_count < 0:
            raise ConfigurationError(
                "transit_remote_pop_count must be non-negative"
            )
        if not 0.0 <= self.multihoming_probability <= 1.0:
            raise ConfigurationError("multihoming_probability must be in [0, 1]")
        if self.transit_per_region < 1:
            raise ConfigurationError("transit_per_region must be >= 1")
        if self.access_per_country < 1:
            raise ConfigurationError("access_per_country must be >= 1")
        if self.access_max_metros < 1:
            raise ConfigurationError("access_max_metros must be >= 1")


@dataclass(frozen=True)
class BaseInternet:
    """Handles to the generated base Internet (before any CDN attaches)."""

    tier1_asns: Tuple[int, ...]
    transit_asns: Tuple[int, ...]
    access_asns: Tuple[int, ...]


def populate_base_internet(
    builder: TopologyBuilder,
    config: Optional[TopologyConfig] = None,
    seed: int = 0,
) -> BaseInternet:
    """Generate a synthetic Internet into ``builder``.

    Structure:

    * ``tier1_count`` global backbones, fully meshed with peering.  Their
      combined footprint covers *every* metro, so any CDN PoP metro has at
      least one backbone present to hear announcements.
    * Per region, ``transit_per_region`` transit ASes covering most of the
      region's metros, buying transit from two tier-1s and peering with the
      other transits in their region.
    * Per country, ``access_per_country`` access ISPs, each covering up to
      ``access_max_metros`` of that country's metros, buying transit from
      one or two regional transit ASes (or a tier-1 when the region has no
      transit AS).  A configurable fraction uses cold-potato egress.

    The CDN's AS is *not* generated here — :mod:`repro.cdn.deployment`
    attaches it so the deployment (front-end metros, peering density) stays
    a CDN-level decision.

    Returns:
        A :class:`BaseInternet` with the generated ASN groups.
    """
    cfg = config or TopologyConfig()
    rng = random.Random(seed)
    metro_db = builder.metro_db
    all_metros = list(metro_db)

    # --- Tier-1 backbones -------------------------------------------------
    # Sample footprints first, then patch coverage so the union spans every
    # metro (real tier-1s collectively cover all major metros).
    tier1_pops: List[Set[str]] = []
    for index in range(cfg.tier1_count):
        if index == 0:
            # The first tier-1 is a global backstop present everywhere —
            # the stand-in for the handful of true-global backbones whose
            # transit makes any single-point announcement world-reachable.
            tier1_pops.append({m.code for m in all_metros})
            continue
        count = max(2, int(round(cfg.tier1_presence * len(all_metros))))
        tier1_pops.append({m.code for m in rng.sample(all_metros, count)})

    tier1_asns: List[int] = []
    for index, pops in enumerate(tier1_pops):
        asn = cfg.tier1_base_asn + index
        builder.add_as(
            AutonomousSystem(
                asn=asn,
                name=f"Tier1-{index + 1}",
                role=AsRole.TIER1,
                pop_metros=frozenset(pops),
            )
        )
        tier1_asns.append(asn)
    for i, a in enumerate(tier1_asns):
        for b in tier1_asns[i + 1 :]:
            shared = builder.shared_metros(a, b)
            if shared:
                builder.connect(a, b, LinkKind.PEERING, shared)

    # --- Regional transit -------------------------------------------------
    transit_by_region: Dict[Region, List[int]] = {r: [] for r in Region}
    next_transit = cfg.transit_base_asn
    for region in Region:
        region_metros = [m for m in all_metros if m.region == region]
        if len(region_metros) < 2:
            continue
        for index in range(cfg.transit_per_region):
            asn = next_transit
            next_transit += 1
            count = max(2, int(round(cfg.transit_presence * len(region_metros))))
            pop_set = {
                m.code
                for m in rng.sample(region_metros, min(count, len(region_metros)))
            }
            # Real transit providers are not purely regional: a few
            # intercontinental PoPs (submarine-cable landing points, big
            # IXPs) hang off the regional footprint.
            remote_candidates = [
                m for m in all_metros if m.region != region
            ]
            remote_count = min(cfg.transit_remote_pop_count, len(remote_candidates))
            pop_set.update(
                m.code for m in rng.sample(remote_candidates, remote_count)
            )
            cold = rng.random() < cfg.transit_cold_potato_fraction
            # Cold-potato egress anchors at a *regional* PoP: the paper's
            # case studies are metro-scale hand-off pathologies
            # (Moscow→Stockholm, Denver→Phoenix), not transcontinental.
            regional_pops = sorted(
                pop_set & {m.code for m in region_metros}
            )
            egress = rng.choice(regional_pops) if cold else None
            builder.add_as(
                AutonomousSystem(
                    asn=asn,
                    name=f"Transit-{region.value}-{index + 1}",
                    role=AsRole.TRANSIT,
                    pop_metros=frozenset(pop_set),
                    egress_policy=(
                        EgressPolicy.COLD_POTATO if cold else EgressPolicy.HOT_POTATO
                    ),
                    cold_potato_egress=egress,
                )
            )
            transit_by_region[region].append(asn)
            # Buy transit from two tier-1s with overlapping footprint.
            providers = [
                t for t in tier1_asns if builder.shared_metros(asn, t)
            ]
            rng.shuffle(providers)
            for provider in providers[:2]:
                builder.connect(asn, provider, LinkKind.CUSTOMER_PROVIDER)
        # Peer regional transits with each other.
        regional = transit_by_region[region]
        for i, a in enumerate(regional):
            for b in regional[i + 1 :]:
                shared = builder.shared_metros(a, b)
                if shared:
                    builder.connect(a, b, LinkKind.PEERING, shared)

    # --- Access ISPs -------------------------------------------------------
    metros_by_country: Dict[str, List[Metro]] = {}
    for metro in all_metros:
        metros_by_country.setdefault(metro.country, []).append(metro)

    access_asns: List[int] = []
    next_access = cfg.access_base_asn
    for country in sorted(metros_by_country):
        country_metros = metros_by_country[country]
        region = country_metros[0].region
        for index in range(cfg.access_per_country):
            asn = next_access
            next_access += 1
            coverage = rng.randint(
                1, min(cfg.access_max_metros, len(country_metros))
            )
            pops = frozenset(
                m.code for m in rng.sample(country_metros, coverage)
            )
            cold = rng.random() < cfg.cold_potato_fraction
            egress = rng.choice(sorted(pops)) if cold else None
            builder.add_as(
                AutonomousSystem(
                    asn=asn,
                    name=f"Access-{country}-{index + 1}",
                    role=AsRole.ACCESS,
                    pop_metros=pops,
                    egress_policy=(
                        EgressPolicy.COLD_POTATO if cold else EgressPolicy.HOT_POTATO
                    ),
                    cold_potato_egress=egress,
                )
            )
            # Providers: regional transit ASes with footprint overlap,
            # falling back to tier-1s.
            candidates = [
                t for t in transit_by_region.get(region, [])
                if builder.shared_metros(asn, t)
            ]
            if not candidates:
                candidates = [
                    t for t in tier1_asns if builder.shared_metros(asn, t)
                ]
            if not candidates:
                # Guarantee connectivity: attach at the provider's nearest
                # PoP metro by giving the provider a presence view — pick
                # the tier-1 with the nearest PoP and interconnect there is
                # impossible without a shared metro, so attach via the
                # country's primary metro on the widest tier-1.
                raise TopologyError(
                    f"access AS{asn} in {country} has no reachable provider; "
                    "increase tier1_presence or transit_presence"
                )
            rng.shuffle(candidates)
            provider_count = 2 if rng.random() < cfg.multihoming_probability else 1
            for provider in candidates[:provider_count]:
                builder.connect(asn, provider, LinkKind.CUSTOMER_PROVIDER)
            access_asns.append(asn)

    return BaseInternet(
        tier1_asns=tuple(tier1_asns),
        transit_asns=tuple(
            asn for asns in transit_by_region.values() for asn in asns
        ),
        access_asns=tuple(access_asns),
    )


def generate_topology(
    metro_db: MetroDatabase,
    config: Optional[TopologyConfig] = None,
    seed: int = 0,
) -> Topology:
    """Generate and freeze a base Internet (no CDN AS) in one call."""
    builder = TopologyBuilder(metro_db)
    populate_base_internet(builder, config, seed)
    return builder.build()
