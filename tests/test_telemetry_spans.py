"""Span tracker semantics: nesting, exception safety, merging, logs."""

import asyncio
import io
import json
import logging
import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import RunContext, configure_logging, get_logger
from repro.telemetry.spans import SpanTracker


class TestSpanNesting:
    def test_paths_join_with_separator(self):
        tracker = SpanTracker()
        with tracker.span("campaign"):
            with tracker.span("day"):
                with tracker.span("beacons"):
                    pass
        assert set(tracker.records) == {
            "campaign", "campaign/day", "campaign/day/beacons",
        }

    def test_sibling_spans_share_parent_path(self):
        tracker = SpanTracker()
        with tracker.span("campaign"):
            with tracker.span("setup"):
                pass
            with tracker.span("day"):
                pass
        assert [path for path, _ in tracker.children_of("campaign")] == [
            "campaign/setup", "campaign/day",
        ]
        assert [path for path, _ in tracker.roots()] == ["campaign"]

    def test_repeated_entries_aggregate(self):
        tracker = SpanTracker()
        for day in range(3):
            with tracker.span("day", index=day):
                pass
        record = tracker.records["day"]
        assert record.count == 3
        assert set(record.indexed) == {"0", "1", "2"}
        assert sum(record.indexed.values()) == pytest.approx(record.seconds)

    def test_depth_tracks_stack(self):
        tracker = SpanTracker()
        assert tracker.depth == 0
        with tracker.span("a"):
            assert tracker.depth == 1
            with tracker.span("b"):
                assert tracker.depth == 2
        assert tracker.depth == 0


class TestExceptionSafety:
    def test_raising_span_still_records_and_pops(self):
        tracker = SpanTracker()
        with pytest.raises(ValueError):
            with tracker.span("campaign"):
                with tracker.span("day"):
                    raise ValueError("boom")
        assert tracker.depth == 0
        assert tracker.records["campaign"].count == 1
        assert tracker.records["campaign/day"].count == 1
        # The stack unwound cleanly: a new span is a root again.
        with tracker.span("after"):
            pass
        assert "after" in tracker.records

    def test_coverage(self):
        tracker = SpanTracker()
        tracker.record_seconds("campaign", 10.0)
        tracker.record_seconds("campaign/day", 9.0)
        tracker.record_seconds("campaign/setup", 0.5)
        assert tracker.coverage("campaign") == pytest.approx(0.95)
        assert tracker.coverage("missing") == 0.0
        tracker.record_seconds("empty", 0.0)
        assert tracker.coverage("empty") == 1.0

    def test_absorb_adds_per_path(self):
        a = SpanTracker()
        b = SpanTracker()
        a.record_seconds("campaign/day", 1.0, index=0)
        b.record_seconds("campaign/day", 2.0, index=0)
        b.record_seconds("campaign/day", 4.0, index=1)
        a.absorb(b.records)
        record = a.records["campaign/day"]
        assert record.seconds == pytest.approx(7.0)
        assert record.indexed == {"0": pytest.approx(3.0), "1": 4.0}


class TestConcurrentNesting:
    """Regression: spans entered by concurrent asyncio tasks must not
    splice into each other's paths.

    The live service times its producer and consumer with two spans
    held open *simultaneously* on one tracker.  With a tracker-global
    nesting stack, whichever task entered second would record itself as
    a child of the first (``produce/consume``) and pop the other task's
    frame on exit; the per-context stack keeps each task's nesting (and
    each thread's) independent while the records still aggregate into
    one shared tree.
    """

    def test_concurrent_async_tasks_keep_independent_paths(self):
        tracker = SpanTracker()

        async def worker(name, rounds):
            with tracker.span(name):
                for _ in range(rounds):
                    with tracker.span("inner"):
                        # Suspend while the span is open so the other
                        # task interleaves inside it.
                        await asyncio.sleep(0)

        async def main():
            await asyncio.gather(worker("produce", 25), worker("consume", 25))

        asyncio.run(main())
        assert set(tracker.records) == {
            "produce",
            "consume",
            "produce/inner",
            "consume/inner",
        }
        assert tracker.records["produce"].count == 1
        assert tracker.records["consume"].count == 1
        assert tracker.records["produce/inner"].count == 25
        assert tracker.records["consume/inner"].count == 25

    def test_exception_in_one_task_does_not_corrupt_the_other(self):
        tracker = SpanTracker()

        async def failing():
            with tracker.span("failing"):
                await asyncio.sleep(0)
                raise RuntimeError("boom")

        async def survivor():
            with tracker.span("survivor"):
                for _ in range(10):
                    with tracker.span("step"):
                        await asyncio.sleep(0)

        async def main():
            results = await asyncio.gather(
                failing(), survivor(), return_exceptions=True
            )
            assert any(isinstance(r, RuntimeError) for r in results)

        asyncio.run(main())
        assert "survivor/step" in tracker.records
        assert "failing/survivor" not in tracker.records
        assert tracker.records["survivor/step"].count == 10
        assert tracker.depth == 0

    def test_threads_keep_independent_stacks(self):
        tracker = SpanTracker()
        barrier = threading.Barrier(2)

        def worker(name):
            with tracker.span(name):
                barrier.wait()  # both spans open at once
                with tracker.span("inner"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(name,))
            for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert set(tracker.records) == {"a", "b", "a/inner", "b/inner"}


class TestStructuredLogging:
    def _capture(self, level="info", fmt="json", context=None):
        stream = io.StringIO()
        configure_logging(
            level=level, fmt=fmt, context=context, stream=stream
        )
        return stream

    def teardown_method(self):
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            root.removeHandler(handler)
        root.setLevel(logging.NOTSET)

    def test_json_lines_carry_run_context(self):
        stream = self._capture(
            context=RunContext(
                seed=11, engine="vectorized", workers=4, config_hash="abcd"
            )
        )
        get_logger("campaign").info("day complete", extra={"day": 3})
        line = json.loads(stream.getvalue().strip())
        assert line["msg"] == "day complete"
        assert line["logger"] == "repro.campaign"
        assert line["level"] == "info"
        assert line["seed"] == 11
        assert line["engine"] == "vectorized"
        assert line["workers"] == 4
        assert line["config_hash"] == "abcd"
        assert line["day"] == 3

    def test_text_format_includes_extras(self):
        stream = self._capture(fmt="text")
        get_logger("campaign").warning("slow day", extra={"day": 5})
        assert "warning" in stream.getvalue()
        assert "day=5" in stream.getvalue()

    def test_level_filters(self):
        stream = self._capture(level="warning")
        get_logger("campaign").info("quiet")
        assert stream.getvalue() == ""

    def test_reconfigure_does_not_stack_handlers(self):
        self._capture()
        stream = self._capture()
        get_logger("x").info("once")
        assert len(stream.getvalue().strip().splitlines()) == 1

    def test_unknown_level_or_format_raises(self):
        with pytest.raises(TelemetryError):
            configure_logging(level="verbose")
        with pytest.raises(TelemetryError):
            configure_logging(fmt="yaml")

    def test_library_is_quiet_without_configuration(self):
        logger = get_logger("campaign")
        # No handler installed at import time on the repro root.
        assert logging.getLogger("repro").handlers == []
        assert logger.name == "repro.campaign"
