"""Live campaign progress: callbacks, listeners, and shard aggregation.

``CampaignConfig.progress_callback`` was accepted-but-ignored by the
parallel runner for five PRs; these tests pin the repaired contract:

* serial runs invoke the callback once per completed day, in order;
* sharded runs (single-worker inline pool and true multiprocess)
  aggregate worker heartbeats and fire the *same* callback sequence —
  one call per day, in day order, only when the day is complete across
  every shard;
* retries never double-report a day (progress is monotone);
* ``progress_listener`` observes rich :class:`CampaignProgress` rows
  whose final state covers all days and shards.
"""

import functools

from repro.clients.population import ClientPopulationConfig
from repro.faults import FaultPlan
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignProgress,
    CampaignRunner,
)
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig

DAYS = 3


@functools.lru_cache(maxsize=None)
def _scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            seed=5,
            population=ClientPopulationConfig(prefix_count=40),
            calendar=SimulationCalendar(num_days=DAYS),
            engine="vectorized",
        )
    )


def _expected():
    return [(day, DAYS) for day in range(DAYS)]


def test_serial_progress_callback_fires_per_day():
    calls = []
    runner = CampaignRunner(
        _scenario(),
        CampaignConfig(progress_callback=lambda d, n: calls.append((d, n))),
    )
    runner.run()
    assert calls == _expected()


def test_serial_progress_listener_observes_rich_rows():
    rows = []
    runner = CampaignRunner(
        _scenario(), CampaignConfig(progress_listener=rows.append)
    )
    runner.run()
    assert rows
    final = rows[-1]
    assert isinstance(final, CampaignProgress)
    assert final.days_completed == DAYS
    assert final.num_days == DAYS
    assert final.beacons > 0
    assert final.beacons_per_second > 0
    assert f"day {DAYS}/{DAYS}" in final.format()


def test_single_worker_sharded_progress():
    calls = []
    runner = ParallelCampaignRunner(
        _scenario(),
        CampaignConfig(progress_callback=lambda d, n: calls.append((d, n))),
        workers=1,
    )
    runner.run()
    assert calls == _expected()


def test_multiprocess_sharded_progress():
    calls = []
    rows = []
    runner = ParallelCampaignRunner(
        _scenario(),
        CampaignConfig(
            progress_callback=lambda d, n: calls.append((d, n)),
            progress_listener=rows.append,
        ),
        workers=2,
    )
    dataset = runner.run()
    assert calls == _expected()
    assert rows
    final = rows[-1]
    assert final.days_completed == DAYS
    assert final.shards_done == final.shards_total == 2
    # The listener's final beacon total matches the merged dataset.
    assert final.beacons == dataset.beacon_count


def test_retry_never_double_reports_a_day():
    calls = []
    runner = ParallelCampaignRunner(
        _scenario(),
        CampaignConfig(
            progress_callback=lambda d, n: calls.append((d, n)),
            fault_plan=FaultPlan.from_spec("exception:1"),
            max_retries=3,
            retry_backoff_seconds=0.0,
        ),
        workers=2,
    )
    runner.run()
    # The crashed shard re-runs its days, but aggregation reports each
    # day exactly once, in order.
    assert calls == _expected()


def test_retries_surface_in_listener():
    rows = []
    runner = ParallelCampaignRunner(
        _scenario(),
        CampaignConfig(
            progress_listener=rows.append,
            fault_plan=FaultPlan.from_spec("exception:1"),
            max_retries=3,
            retry_backoff_seconds=0.0,
        ),
        workers=2,
    )
    runner.run()
    assert rows[-1].retries >= 1
    assert "retries" in rows[-1].format()


def test_progress_format_smoke():
    row = CampaignProgress(
        days_completed=2,
        num_days=7,
        beacons=12345,
        beacons_per_second=4567.0,
        elapsed_seconds=1.25,
        shards_done=1,
        shards_total=4,
        retries=2,
    )
    text = row.format()
    assert "day 2/7" in text
    assert "12,345" in text
    assert "shards 1/4" in text
    assert "retries 2" in text
