"""Crash-safe storage tests: framing, torn tails, bit rot, recovery.

Satellite of the hardened-data-plane issue: every damage mode a log
pipeline sees — a writer killed mid-flush, bytes flipped at rest, a
file cut mid-record — must either raise a precise
:class:`~repro.errors.StorageError` (strict posture) or salvage every
intact frame and report exactly what was lost (recovery posture).
"""

import io
import os

import pytest

from repro.errors import MeasurementError, StorageError
from repro.measurement.export import (
    load_dataset,
    recover_dataset,
    save_dataset,
)
from repro.measurement.storage import (
    atomic_write_text,
    footer_frame,
    format_frame,
    read_segment_file,
    read_segment_text,
    write_segment_file,
)


def _frames(n):
    return [{"kind": "sample", "index": i, "value": i * 1.5} for i in range(n)]


class TestFraming:
    def test_round_trip_path(self, tmp_path):
        path = str(tmp_path / "segment.jsonl")
        count = write_segment_file(path, _frames(5))
        assert count == 5
        frames, report = read_segment_file(path)
        assert frames == _frames(5)
        assert report.complete
        assert report.salvaged_kinds == {"sample": 5}

    def test_round_trip_stream(self):
        buffer = io.StringIO()
        write_segment_file(buffer, _frames(3))
        frames, report = read_segment_text(buffer.getvalue())
        assert frames == _frames(3)
        assert report.complete

    def test_footer_counts_frames(self):
        buffer = io.StringIO()
        write_segment_file(buffer, _frames(2))
        lines = buffer.getvalue().splitlines()
        assert lines[-1] == format_frame(footer_frame(2)).rstrip("\n")

    def test_atomic_writer_cleans_up_temp_files(self, tmp_path):
        path = str(tmp_path / "segment.jsonl")
        write_segment_file(path, _frames(2))

        def exploding():
            yield {"kind": "sample"}
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            write_segment_file(path, exploding())
        # The destination keeps its previous complete content and no
        # temp file is left behind.
        frames, report = read_segment_file(path)
        assert len(frames) == 2 and report.complete
        assert os.listdir(tmp_path) == ["segment.jsonl"]

    def test_atomic_write_text(self, tmp_path):
        path = str(tmp_path / "note.json")
        atomic_write_text(path, "{}\n")
        with open(path) as handle:
            assert handle.read() == "{}\n"
        assert os.listdir(tmp_path) == ["note.json"]


class TestDamage:
    def _segment_text(self, n=4):
        buffer = io.StringIO()
        write_segment_file(buffer, _frames(n))
        return buffer.getvalue()

    def test_torn_tail(self):
        text = self._segment_text()
        torn = text[:-25]  # cut mid-frame, no trailing newline
        with pytest.raises(StorageError, match="torn tail"):
            read_segment_text(torn, source="seg")
        frames, report = read_segment_text(torn, strict=False)
        assert report.torn_tail
        assert not report.complete
        assert len(frames) == report.frames_total
        assert frames == _frames(len(frames))

    def test_mid_record_truncation_at_every_offset(self):
        """No truncation point yields a parse error or phantom frame."""
        text = self._segment_text(3)
        full_frames, _ = read_segment_text(text)
        for cut in range(len(text)):
            frames, report = read_segment_text(text[:cut], strict=False)
            assert frames == full_frames[: len(frames)]
            assert not report.complete or cut == len(text)

    def test_bit_flip_is_localized(self):
        text = self._segment_text(4)
        lines = text.splitlines(keepends=True)
        # Flip a character inside the second frame's payload.
        victim = lines[1]
        flip_at = victim.index('"value"') + 3
        lines[1] = (
            victim[:flip_at]
            + chr(ord(victim[flip_at]) ^ 1)
            + victim[flip_at + 1:]
        )
        damaged = "".join(lines)
        with pytest.raises(StorageError, match="corrupt frame at line 2"):
            read_segment_text(damaged, source="seg")
        frames, report = read_segment_text(damaged, strict=False)
        assert report.frames_corrupt == 1
        assert not report.footer_seen  # footer count no longer matches
        assert [f["index"] for f in frames] == [0, 2, 3]

    def test_non_ascii_damage_skipped(self):
        text = self._segment_text(2)
        lines = text.splitlines(keepends=True)
        lines[0] = lines[0].replace("sample", "samplé", 1)
        frames, report = read_segment_text("".join(lines), strict=False)
        assert report.frames_corrupt == 1
        assert [f["index"] for f in frames] == [1]

    def test_missing_footer_strict(self):
        text = self._segment_text(2)
        without_footer = "".join(text.splitlines(keepends=True)[:-1])
        with pytest.raises(StorageError, match="footer"):
            read_segment_text(without_footer, source="seg")
        frames, report = read_segment_text(without_footer, strict=False)
        assert len(frames) == 2 and not report.footer_seen


class TestDatasetRecovery:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.clients.population import ClientPopulationConfig
        from repro.simulation.campaign import CampaignRunner
        from repro.simulation.clock import SimulationCalendar
        from repro.simulation.scenario import Scenario, ScenarioConfig

        scenario = Scenario.build(
            ScenarioConfig(
                seed=13,
                population=ClientPopulationConfig(prefix_count=20),
                calendar=SimulationCalendar(num_days=2),
            )
        )
        return CampaignRunner(scenario).run()

    def test_framed_round_trip(self, dataset, tmp_path):
        path = str(tmp_path / "dataset.json")
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert loaded.digest() == dataset.digest()
        recovered, recovery = recover_dataset(path)
        assert recovery.complete
        assert recovered.digest() == dataset.digest()

    def test_torn_tail_load_raises_then_recovers(self, dataset, tmp_path):
        path = str(tmp_path / "torn.json")
        save_dataset(dataset, path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 300)
        with pytest.raises(StorageError):
            load_dataset(path)
        recovered, recovery = recover_dataset(path)
        assert recovery.report.torn_tail
        assert not recovery.complete
        assert recovered.beacon_count == dataset.beacon_count
        assert (
            recovery.recovered_measurement_count
            <= recovery.claimed_measurement_count
        )

    def test_corrupt_middle_frame_recovers_the_rest(self, dataset, tmp_path):
        path = str(tmp_path / "rot.json")
        save_dataset(dataset, path)
        with open(path, "r", encoding="ascii", newline="") as handle:
            lines = handle.read().splitlines(keepends=True)
        # Damage an aggregates frame (header and clients must survive for
        # recovery to be possible at all).
        victim_index = next(
            i for i, line in enumerate(lines) if '"aggregates"' in line
        )
        lines[victim_index] = lines[victim_index].replace("0", "1", 1)
        with open(path, "w", encoding="ascii", newline="") as handle:
            handle.write("".join(lines))

        recovered, recovery = recover_dataset(path)
        assert recovery.report.frames_corrupt == 1
        assert not recovery.complete
        assert recovered.beacon_count == dataset.beacon_count
        assert (
            recovery.recovered_measurement_count
            < recovery.claimed_measurement_count
        )

    def test_unrecoverable_without_header(self, dataset, tmp_path):
        path = str(tmp_path / "headless.json")
        save_dataset(dataset, path)
        with open(path, "r", encoding="ascii", newline="") as handle:
            lines = handle.read().splitlines(keepends=True)
        # Corrupt the header frame itself.
        lines[0] = lines[0].replace('"header"', '"haeder"', 1)
        with open(path, "w", encoding="ascii", newline="") as handle:
            handle.write("".join(lines))
        with pytest.raises(StorageError, match="unrecoverable"):
            recover_dataset(path)

    def test_legacy_json_still_loads_but_cannot_recover(
        self, dataset, tmp_path
    ):
        import json

        from repro.measurement.export import dataset_to_json

        path = str(tmp_path / "legacy.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(dataset_to_json(dataset), handle)
        assert load_dataset(path).digest() == dataset.digest()
        with pytest.raises(MeasurementError, match="no frame structure"):
            recover_dataset(path)

    def test_missing_format_version_is_a_clear_error(self, dataset):
        from repro.measurement.export import (
            dataset_from_json,
            dataset_to_json,
        )

        obj = dataset_to_json(dataset)
        del obj["format_version"]
        with pytest.raises(MeasurementError, match="no format version"):
            dataset_from_json(obj)
        obj["format_version"] = 999
        with pytest.raises(
            MeasurementError, match="unsupported dataset format version"
        ):
            dataset_from_json(obj)
