"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_catalog_command(capsys):
    assert main(["catalog"]) == 0
    out = capsys.readouterr().out
    assert "Akamai" in out
    assert "Bing CDN (measured)" in out
    assert "anycast" in out


def test_catalog_custom_bing_count(capsys):
    main(["catalog", "--bing-locations", "99"])
    out = capsys.readouterr().out
    assert "   99" in out


def test_report_command_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.txt"
    code = main([
        "report", "--prefixes", "60", "--days", "2", "--seed", "5",
        "--out", str(out_file),
    ])
    assert code == 0
    text = out_file.read_text()
    assert "Fig 3" in text
    assert "Fig 9" in text
    assert "wrote report" in capsys.readouterr().out


def test_failover_command(capsys):
    code = main([
        "failover", "fe-lon", "--prefixes", "60", "--days", "1",
        "--seed", "5",
    ])
    assert code == 0
    assert "Withdrawal cascade" in capsys.readouterr().out


def test_failover_unknown_frontend(capsys):
    code = main([
        "failover", "fe-atlantis", "--prefixes", "60", "--days", "1",
        "--seed", "5",
    ])
    assert code == 2
    assert "unknown front-end" in capsys.readouterr().err


def test_run_and_analyze_round_trip(tmp_path, capsys):
    dataset_path = str(tmp_path / "ds.json")
    assert main([
        "run", "--prefixes", "50", "--days", "3", "--seed", "9",
        dataset_path,
    ]) == 0
    assert "campaign complete" in capsys.readouterr().out

    assert main(["analyze", dataset_path, "--figures", "fig3", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "Fig 3" in out
    assert "Fig 5" in out


def test_analyze_all_default(tmp_path, capsys):
    dataset_path = str(tmp_path / "ds.json")
    main(["run", "--prefixes", "50", "--days", "3", "--seed", "9", dataset_path])
    capsys.readouterr()
    assert main(["analyze", dataset_path]) == 0
    out = capsys.readouterr().out
    for marker in ("Fig 3", "Fig 5", "Fig 6", "Fig 9"):
        assert marker in out


def test_analyze_unknown_figure(tmp_path, capsys):
    dataset_path = str(tmp_path / "ds.json")
    main(["run", "--prefixes", "50", "--days", "2", "--seed", "9", dataset_path])
    capsys.readouterr()
    assert main(["analyze", dataset_path, "--figures", "nope"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_troubleshoot_command(capsys):
    code = main([
        "troubleshoot", "--prefixes", "60", "--days", "1", "--seed", "5",
        "--top", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "vantages with anycast carried" in out
