"""DNS substrate: LDNS population, caching, ECS, authoritative redirection."""

from repro.dns.authoritative import (
    ANYCAST_TARGET,
    DEFAULT_TTL_SECONDS,
    AnycastPolicy,
    AuthoritativeServer,
    DnsQuery,
    DnsQueryRecord,
    DnsResponse,
    RedirectionPolicy,
    StaticMappingPolicy,
)
from repro.dns.cache import TtlCache
from repro.dns.scoped_cache import EcsResolver, ScopedDnsCache
from repro.dns.ecs import EcsOption, ecs_key_for_prefix
from repro.dns.ldns import (
    LdnsConfig,
    LdnsDirectory,
    LdnsKind,
    LdnsServer,
)

__all__ = [
    "ANYCAST_TARGET",
    "DEFAULT_TTL_SECONDS",
    "AnycastPolicy",
    "DnsQuery",
    "DnsQueryRecord",
    "AuthoritativeServer",
    "DnsResponse",
    "EcsOption",
    "EcsResolver",
    "LdnsConfig",
    "ScopedDnsCache",
    "LdnsDirectory",
    "LdnsKind",
    "LdnsServer",
    "RedirectionPolicy",
    "StaticMappingPolicy",
    "TtlCache",
    "ecs_key_for_prefix",
]
