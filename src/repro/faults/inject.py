"""Fault injection sites: turning a compiled plan into live failures.

The :class:`WorkerFaultInjector` carries *one* shard attempt's scheduled
fault (handed out by the coordinator from a
:class:`~repro.faults.plan.CompiledFaultPlan`) into the worker, and
fires it at the matching site:

* ``CRASH`` — :meth:`WorkerFaultInjector.on_worker_start`, before any
  work (the abort is modeled as a raised
  :class:`InjectedCrashError`, which crosses the process boundary
  cleanly — a hard ``os._exit`` would wedge the worker pool, and the
  coordinator treats both identically: attempt failed, retry);
* ``EXCEPTION`` — :meth:`WorkerFaultInjector.on_day`, at the start of a
  seed-derived calendar day, so the transient error lands mid-run;
* ``HANG`` — :meth:`WorkerFaultInjector.hang_before_return`, a bounded
  sleep after the shard's work completes, long enough for a configured
  shard timeout to fire first;
* ``CORRUPT`` — :meth:`WorkerFaultInjector.transform_payload`, flipping
  a byte of the serialized shard payload so the coordinator's
  content-hash check rejects it;
* ``MERGE`` — checked by the coordinator itself via
  :attr:`WorkerFaultInjector.fires_on_merge` when folding the shard's
  dataset into the campaign result.

Injected errors derive from :class:`repro.errors.FaultError`, so the
resilient executor can tell simulated faults from organic bugs in its
accounting while retrying both the same way.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import FaultError
from repro.faults.plan import FaultKind
from repro.rand import derive_seed


class InjectedFaultError(FaultError):
    """Base class for failures raised by fault injection."""


class InjectedCrashError(InjectedFaultError):
    """A simulated worker-process crash at shard start."""


class InjectedTransientError(InjectedFaultError):
    """A simulated transient failure mid-campaign (recoverable by retry)."""


class InjectedMergeError(InjectedFaultError):
    """A simulated failure while merging a shard into the campaign result."""


def corrupt_payload(payload: bytes) -> bytes:
    """Flip one byte in the middle of a serialized payload.

    Deterministic (always the same byte), guaranteed to change the
    payload's content hash, and cheap — the point is to exercise the
    coordinator's integrity check, not to model a particular bit-rot
    distribution.
    """
    if not payload:
        return b"\xff"
    corrupted = bytearray(payload)
    corrupted[len(corrupted) // 2] ^= 0xFF
    return bytes(corrupted)


class WorkerFaultInjector:
    """Fires one shard attempt's scheduled fault at the right site.

    Args:
        kind: The fault scheduled for this ``(shard, attempt)``, or
            ``None`` for a clean attempt (every site is then a no-op).
        seed: Scenario seed; derives the ``EXCEPTION`` firing day.
        shard_index: The shard this injector rides along with.
        attempt: The attempt number (0 = first try).
        hang_seconds: Sleep duration for ``HANG``.
        sleep: Sleep function, injectable for tests.
    """

    def __init__(
        self,
        kind: Optional[FaultKind],
        seed: int,
        shard_index: int,
        attempt: int,
        hang_seconds: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.kind = kind
        self.seed = seed
        self.shard_index = shard_index
        self.attempt = attempt
        self.hang_seconds = hang_seconds
        self._sleep = sleep

    def _describe(self) -> str:
        return f"shard {self.shard_index} attempt {self.attempt}"

    def on_worker_start(self) -> None:
        """``CRASH`` site: abort before the shard does any work."""
        if self.kind is FaultKind.CRASH:
            raise InjectedCrashError(
                f"injected worker crash ({self._describe()})"
            )

    def on_day(self, day: int, num_days: int) -> None:
        """``EXCEPTION`` site: raise at the start of a derived day."""
        if self.kind is not FaultKind.EXCEPTION:
            return
        target = derive_seed(
            self.seed, "fault-day", self.shard_index, self.attempt
        ) % max(num_days, 1)
        if day == target:
            raise InjectedTransientError(
                f"injected transient failure on day {day} "
                f"({self._describe()})"
            )

    def hang_before_return(self) -> None:
        """``HANG`` site: stall long enough for a shard timeout to fire."""
        if self.kind is FaultKind.HANG:
            self._sleep(self.hang_seconds)

    def transform_payload(self, payload: bytes) -> bytes:
        """``CORRUPT`` site: damage the serialized shard payload."""
        if self.kind is FaultKind.CORRUPT:
            return corrupt_payload(payload)
        return payload

    @property
    def fires_on_merge(self) -> bool:
        """Whether the coordinator should fail this shard's merge."""
        return self.kind is FaultKind.MERGE
