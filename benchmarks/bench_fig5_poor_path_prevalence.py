"""Fig 5 — daily prevalence of poor anycast paths during April 2015.

Paper: on an average day 19% of /24s see some improvement from a specific
unicast front-end; 12% see >=10 ms; only 4% see >=50 ms.
"""

from conftest import write_report


def test_fig5_poor_path_prevalence(benchmark, paper_study):
    result = benchmark(paper_study.fig5_poor_path_prevalence)
    write_report("fig5_poor_path_prevalence", result.format())

    any_improvement = result.mean_fraction(1.0)
    ten = result.mean_fraction(10.0)
    fifty = result.mean_fraction(50.0)
    hundred = result.mean_fraction(100.0)
    # Ordering is strict: higher thresholds are rarer.
    assert any_improvement > ten > fifty >= hundred
    # Shape bands around the paper's 19% / 12% / 4%.
    assert 0.10 <= ten <= 0.30
    assert fifty <= 0.10
    # Poor paths are a daily condition: every day shows a nonzero 'all'.
    assert all(
        row[1.0] > 0 for row in result.daily_fractions.values()
    )
