"""Overload chaos drills: the load-aware campaign end to end.

The headline scenario ISSUE'd from §2: the *same seeded flash crowd*
under the ``withdraw`` policy reproduces the hard-withdrawal behavior
the paper warns about (routes withdrawn, latency pinned by reroute
penalties, never recovering), while ``fastroute`` converges — shed
fractions stay in [0, 1], no route is withdrawn, and tail latency ends
strictly better.  Both runs stay bit-identical between serial and
4-shard execution on every engine (dataset digest, quarantine digest,
and trace data-digest), and the run manifest / exports carry the
per-front-end load block.
"""

import json

import pytest

from repro.analysis.load import load_latency_tradeoff, shed_traffic_fractions
from repro.errors import AnalysisError, ConfigurationError
from repro.clients.population import ClientPopulationConfig
from repro.faults import FaultPlan
from repro.measurement.export import (
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    save_dataset,
)
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.episodes import OverloadPlan
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import build_run_manifest

pytestmark = pytest.mark.overload

#: Tight-but-not-degenerate provisioning: the flash crowd overloads its
#: target several times over, everything else starts within capacity.
HEADROOM = 1.25

FLASH_PLAN = "flash-crowd:1@1"


@pytest.fixture(scope="module")
def load_scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            seed=2015,
            population=ClientPopulationConfig(prefix_count=60),
            calendar=SimulationCalendar(num_days=4),
        )
    )


def _campaign(policy: str, **overrides) -> CampaignConfig:
    overrides.setdefault("engine", "vectorized")
    return CampaignConfig(
        frontend_capacity=HEADROOM,
        overload_plan=OverloadPlan.from_spec(FLASH_PLAN),
        load_policy=policy,
        **overrides,
    )


@pytest.fixture(scope="module")
def withdraw_dataset(load_scenario):
    return CampaignRunner(load_scenario, _campaign("withdraw")).run()


@pytest.fixture(scope="module")
def fastroute_dataset(load_scenario):
    return CampaignRunner(load_scenario, _campaign("fastroute")).run()


class TestConfigValidation:
    def test_capacity_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="frontend_capacity"):
            CampaignConfig(frontend_capacity=1.0)

    def test_overload_plan_requires_capacity(self):
        with pytest.raises(ConfigurationError, match="frontend_capacity"):
            CampaignConfig(
                overload_plan=OverloadPlan.from_spec(FLASH_PLAN)
            )

    def test_load_policy_requires_capacity(self):
        with pytest.raises(ConfigurationError, match="frontend_capacity"):
            CampaignConfig(load_policy="fastroute")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="load policy"):
            CampaignConfig(frontend_capacity=1.5, load_policy="panic")


class TestChaosHeadline:
    def test_withdraw_reproduces_section2_cascade(
        self, load_scenario, withdraw_dataset
    ):
        """The flash crowd hard-withdraws its target, permanently."""
        summary = withdraw_dataset.load_summary
        days = summary["days"]
        # Surge day: the target blows well past capacity.
        assert days[1]["max_utilization"] > 2.0
        # One-day control delay, then withdrawal — and it never returns.
        assert not days[0]["withdrawn"] and not days[1]["withdrawn"]
        assert days[2]["withdrawn"]
        assert set(days[2]["withdrawn"]) <= set(days[3]["withdrawn"])
        # The withdrawn front-end's clients were rerouted.
        assert days[2]["rerouted_clients"] > 0
        withdrawn_days = [
            stats["withdrawn_day"]
            for stats in summary["frontends"].values()
            if stats["withdrawn_day"] is not None
        ]
        assert withdrawn_days

    def test_withdraw_run_is_deterministic(
        self, load_scenario, withdraw_dataset
    ):
        again = CampaignRunner(load_scenario, _campaign("withdraw")).run()
        assert again.digest() == withdraw_dataset.digest()
        assert again.load_summary == withdraw_dataset.load_summary

    def test_fastroute_converges_with_bounded_sheds(
        self, fastroute_dataset
    ):
        """Shedding reacts instead: bounded fractions, zero withdrawals."""
        summary = fastroute_dataset.load_summary
        assert all(not row["withdrawn"] for row in summary["days"])
        assert any(
            row["shedding_frontends"] > 0 for row in summary["days"]
        )
        for stats in summary["frontends"].values():
            assert 0.0 <= stats["peak_shed_fraction"] <= 1.0
            assert stats["withdrawn_day"] is None
        shed = shed_traffic_fractions(fastroute_dataset)
        assert shed.peak_shed_fraction > 0.0
        assert shed.total_withdrawn == 0

    def test_fastroute_ends_with_better_tail_latency(
        self, withdraw_dataset, fastroute_dataset
    ):
        """Once the surge passes, shedding recovers; withdrawal cannot."""
        withdraw_rows = load_latency_tradeoff(withdraw_dataset).rows
        fastroute_rows = load_latency_tradeoff(fastroute_dataset).rows
        assert (
            fastroute_rows[-1].anycast_p95_ms
            < withdraw_rows[-1].anycast_p95_ms
        )

    def test_policies_share_the_same_compiled_drill(
        self, withdraw_dataset, fastroute_dataset
    ):
        assert (
            withdraw_dataset.load_summary["events"]
            == fastroute_dataset.load_summary["events"]
        )


class TestShardAndEngineParity:
    @pytest.mark.parametrize("engine", ["reference", "vectorized", "matrix"])
    @pytest.mark.parametrize("policy", ["withdraw", "fastroute"])
    def test_serial_matches_four_shards(self, load_scenario, engine, policy):
        """Digest, quarantine, and trace parity — serial vs 4 shards.

        The record-corrupt faults keep the quarantine log non-trivial so
        its digest comparison actually checks something.
        """
        cfg = _campaign(
            policy,
            engine=engine,
            fault_plan=FaultPlan.from_spec("record-corrupt:2"),
        )
        serial = CampaignRunner(load_scenario, cfg)
        serial_dataset = serial.run()
        sharded = ParallelCampaignRunner(load_scenario, cfg, workers=4)
        sharded_dataset = sharded.run()

        assert sharded_dataset.digest() == serial_dataset.digest()
        assert sharded_dataset.load_summary == serial_dataset.load_summary
        assert serial.quarantine.counts  # the faults actually fired
        assert (
            sharded.quarantine.digest() == serial.quarantine.digest()
        )
        serial_trace = serial.telemetry.snapshot().trace
        sharded_trace = sharded.telemetry.snapshot().trace
        assert serial_trace is not None and sharded_trace is not None
        assert sharded_trace.digest() == serial_trace.digest()

    def test_vectorized_and_matrix_bit_identical(self, load_scenario):
        digests = {
            engine: CampaignRunner(
                load_scenario, _campaign("fastroute", engine=engine)
            )
            .run()
            .digest()
            for engine in ("vectorized", "matrix")
        }
        assert digests["vectorized"] == digests["matrix"]

    def test_capacity_off_unaffected(self, load_scenario):
        """The load machinery is fully gated: off == the historical path."""
        plain = CampaignRunner(
            load_scenario, CampaignConfig(engine="vectorized")
        ).run()
        assert plain.load_summary is None
        with pytest.raises(AnalysisError, match="frontend-capacity"):
            load_latency_tradeoff(plain)


class TestTelemetryAndPersistence:
    def test_manifest_carries_load_block(self, load_scenario):
        runner = CampaignRunner(load_scenario, _campaign("fastroute"))
        dataset = runner.run()
        manifest = build_run_manifest(
            runner.telemetry.snapshot(), dataset=dataset
        )
        load_block = manifest["load"]
        assert load_block["policy"] == "fastroute"
        assert load_block["headroom"] == HEADROOM
        for stats in load_block["frontends"].values():
            assert "peak_utilization" in stats
            assert "peak_shed_fraction" in stats
        json.dumps(manifest)  # JSON-clean end to end

    def test_load_gauges_published(self, load_scenario):
        runner = CampaignRunner(load_scenario, _campaign("fastroute"))
        runner.run()
        gauges = runner.telemetry.snapshot().gauges
        assert gauges["load.peak_utilization"]["value"] > 1.0
        assert gauges["load.peak_shed_fraction"]["value"] > 0.0

    def test_export_round_trips_load_summary(
        self, fastroute_dataset, tmp_path
    ):
        path = str(tmp_path / "load.dataset.json")
        save_dataset(fastroute_dataset, path)
        restored = load_dataset(path)
        assert restored.load_summary == fastroute_dataset.load_summary
        assert restored.digest() == fastroute_dataset.digest()

    def test_legacy_json_round_trips_load_summary(self, fastroute_dataset):
        document = dataset_to_json(fastroute_dataset)
        restored = dataset_from_json(document)
        assert restored.load_summary == fastroute_dataset.load_summary

    def test_analyze_figures_render(self, fastroute_dataset):
        tradeoff = load_latency_tradeoff(fastroute_dataset).format()
        assert "load-vs-latency" in tradeoff
        assert "flash-crowd" in tradeoff
        shed = shed_traffic_fractions(fastroute_dataset).format()
        assert "shed-traffic" in shed
