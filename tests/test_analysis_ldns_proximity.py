"""Tests for the §3.3 LDNS-proximity and §5 switch-rate side analyses."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.affinity import daily_switch_rate
from repro.analysis.ldns_proximity import ldns_proximity
from repro.dns.ldns import LdnsConfig, LdnsDirectory
from repro.geo.metros import MetroDatabase
from repro.net.topology import generate_topology

from tests.helpers import make_client, make_dataset


class TestLdnsProximity:
    def test_paper_band_on_generated_population(self, small_scenario):
        result = ldns_proximity(
            small_scenario.clients, small_scenario.ldns_directory
        )
        # [17]: ~11-12% of non-public demand is >500 km from its LDNS.
        assert 0.0 <= result.far_demand_fraction <= 0.35
        assert result.median_km < 500.0
        assert 0.0 <= result.public_demand_fraction <= 0.15
        assert "paper cites 11-12%" in result.format()

    def test_validation(self, small_scenario):
        with pytest.raises(AnalysisError):
            ldns_proximity([], small_scenario.ldns_directory)
        with pytest.raises(AnalysisError):
            ldns_proximity(
                small_scenario.clients,
                small_scenario.ldns_directory,
                far_threshold_km=0.0,
            )

    def test_all_public_rejected(self):
        topology = generate_topology(MetroDatabase(), seed=2)
        directory = LdnsDirectory(
            topology, LdnsConfig(public_usage_fraction=1.0), seed=2
        )
        client = make_client(1, ldns_id="ldns-public-sfo")
        with pytest.raises(AnalysisError, match="public"):
            ldns_proximity([client], directory)


class TestDailySwitchRate:
    def test_counts_multi_frontend_clients(self):
        clients = [make_client(1), make_client(2)]
        k1, k2 = clients[0].key, clients[1].key
        dataset = make_dataset(
            clients,
            num_days=1,
            passive_counts=[
                (0, k1, "fe-a", 5),
                (0, k1, "fe-b", 3),
                (0, k2, "fe-a", 9),
            ],
        )
        assert daily_switch_rate(dataset, 0) == pytest.approx(0.5)

    def test_empty_day_rejected(self):
        dataset = make_dataset([make_client(1)], num_days=1)
        with pytest.raises(AnalysisError):
            daily_switch_rate(dataset, 0)

    def test_campaign_rate_in_paper_neighborhood(self, small_dataset):
        rate = daily_switch_rate(small_dataset, 0)
        # §5: "slightly higher" than the roots' 1.1-4.7%.
        assert 0.0 <= rate <= 0.20
