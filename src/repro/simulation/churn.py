"""Route churn: the front-end-affinity dynamics behind Figs 7 and 8.

The paper observes (§5, "Front-end Affinity"): 7% of clients landed on
multiple front-ends within the first day; 2–4% more see a change each
weekday; under 0.5% change on weekend days ("network operators not pushing
out changes during the weekend"); 21% of clients landed on multiple
front-ends across the whole week.

That shape — a big first-day fraction but small daily increments — implies
*heterogeneity*: a minority of clients sit on unstable routes and switch
repeatedly, while the majority never move.  The model reproduces it
structurally: only clients whose AS has more than one viable first-hop
egress (per :meth:`repro.cdn.network.CdnNetwork.anycast_variant_ranks`)
can churn at all; a configured fraction of those is "unstable" and
re-rolls its route with a weekday/weekend-dependent probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cdn.network import CdnNetwork
from repro.clients.population import ClientPrefix
from repro.rand import derive_rng
from repro.simulation.clock import SimulationCalendar


@dataclass(frozen=True)
class ChurnConfig:
    """Churn process parameters.

    Attributes:
        unstable_fraction: Fraction of *eligible* clients (those with >1
            distinct anycast ingress) that churn actively.
        weekday_switch_probability: Per-weekday chance an unstable client
            re-rolls its route.
        weekend_switch_probability: Same, for Saturday/Sunday.
        stable_switch_probability: Tiny per-day chance that a nominally
            stable (but eligible) client still switches.
        return_home_probability: When re-rolling, chance of landing on the
            steady-state route rather than an alternate.
        max_rank: Deepest egress rank explored for alternates.
    """

    unstable_fraction: float = 0.65
    weekday_switch_probability: float = 0.38
    weekend_switch_probability: float = 0.02
    stable_switch_probability: float = 0.002
    return_home_probability: float = 0.55
    max_rank: int = 3

    def __post_init__(self) -> None:
        for name in (
            "unstable_fraction",
            "weekday_switch_probability",
            "weekend_switch_probability",
            "stable_switch_probability",
            "return_home_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.max_rank < 1:
            raise ConfigurationError("max_rank must be >= 1")


@dataclass(frozen=True)
class DayRoutePlan:
    """A client's anycast routing for one day.

    On a switch day the client spends part of the day on the old route and
    the rest on the new one (routing changes happen mid-day, and §5 counts
    a client as changed once it lands on multiple front-ends).

    Attributes:
        ranks: One or two egress ranks in effect during the day.
        fractions: Fraction of the day's traffic on each rank (sums to 1).
    """

    ranks: Tuple[int, ...]
    fractions: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.ranks) != len(self.fractions) or not self.ranks:
            raise ConfigurationError("ranks and fractions must align")
        if abs(sum(self.fractions) - 1.0) > 1e-9:
            raise ConfigurationError("fractions must sum to 1")

    @property
    def switched(self) -> bool:
        """Whether the route changed during this day."""
        return len(self.ranks) > 1

    @property
    def final_rank(self) -> int:
        """The rank in effect at the end of the day."""
        return self.ranks[-1]

    def sample_rank(self, rng: random.Random) -> int:
        """Draw the rank in effect for one query/beacon within the day."""
        if len(self.ranks) == 1:
            return self.ranks[0]
        return rng.choices(self.ranks, weights=self.fractions, k=1)[0]


class RouteChurnModel:
    """Evolves each client's anycast route day by day.

    Days must be advanced in order via :meth:`plans_for_day`; the model
    keeps one rank of state per client.
    """

    def __init__(
        self,
        clients: Sequence[ClientPrefix],
        network: CdnNetwork,
        calendar: SimulationCalendar,
        config: Optional[ChurnConfig] = None,
        seed: int = 0,
    ) -> None:
        self._config = config or ChurnConfig()
        self._calendar = calendar
        self._rng = derive_rng(seed, "churn")
        cfg = self._config

        self._variants: Dict[str, Tuple[int, ...]] = {}
        self._unstable: Dict[str, bool] = {}
        self._state: Dict[str, int] = {}
        self._next_day = 0

        variant_cache: Dict[Tuple[int, str], Tuple[int, ...]] = {}
        for client in clients:
            cache_key = (client.asn, client.home_metro)
            ranks = variant_cache.get(cache_key)
            if ranks is None:
                ranks = network.anycast_variant_ranks(
                    client.asn, client.home_metro, cfg.max_rank
                )
                variant_cache[cache_key] = ranks
            self._variants[client.key] = ranks
            eligible = len(ranks) > 1
            self._unstable[client.key] = (
                eligible and self._rng.random() < cfg.unstable_fraction
            )
            self._state[client.key] = 0  # index into ranks, not a raw rank

    @property
    def config(self) -> ChurnConfig:
        """The churn parameters."""
        return self._config

    def variants(self, client_key: str) -> Tuple[int, ...]:
        """Distinct-ingress egress ranks available to a client."""
        return self._variants[client_key]

    def is_unstable(self, client_key: str) -> bool:
        """Whether the client is in the actively churning class."""
        return self._unstable[client_key]

    def unstable_fraction_overall(self) -> float:
        """Fraction of all clients classified unstable (diagnostic)."""
        if not self._unstable:
            return 0.0
        return sum(self._unstable.values()) / len(self._unstable)

    def _switch_probability(self, client_key: str, day: int) -> float:
        cfg = self._config
        if len(self._variants[client_key]) <= 1:
            return 0.0
        if not self._unstable[client_key]:
            return cfg.stable_switch_probability
        if self._calendar.is_weekend(day):
            return cfg.weekend_switch_probability
        return cfg.weekday_switch_probability

    def plans_for_day(self, day: int) -> Dict[str, DayRoutePlan]:
        """Evolve state into ``day`` and return every client's plan.

        Must be called with consecutive day indices starting at 0.
        """
        if day != self._next_day:
            raise ConfigurationError(
                f"churn must advance day by day (expected {self._next_day}, "
                f"got {day})"
            )
        self._next_day += 1
        cfg = self._config
        rng = self._rng
        plans: Dict[str, DayRoutePlan] = {}
        for client_key, ranks in self._variants.items():
            old_index = self._state[client_key]
            if rng.random() >= self._switch_probability(client_key, day):
                plans[client_key] = DayRoutePlan(
                    ranks=(ranks[old_index],), fractions=(1.0,)
                )
                continue
            # Re-roll: maybe return to steady state, else a random
            # different variant.
            if old_index != 0 and rng.random() < cfg.return_home_probability:
                new_index = 0
            else:
                choices = [i for i in range(len(ranks)) if i != old_index]
                new_index = rng.choice(choices)
            self._state[client_key] = new_index
            cut = rng.uniform(0.2, 0.8)
            plans[client_key] = DayRoutePlan(
                ranks=(ranks[old_index], ranks[new_index]),
                fractions=(cut, 1.0 - cut),
            )
        return plans
