"""Ablation — the prediction metric percentile (§6's design choice).

The paper picks the 25th percentile (median equivalent) because higher
percentiles of latency distributions are too noisy to predict with.  This
ablation re-runs the Fig 9 evaluation with the metric at the 25th, 50th,
75th, and 95th percentiles and confirms the design rationale: low
percentiles keep the improved/worse ratio healthy, high percentiles
degrade it.
"""

import pytest

from conftest import write_report

from repro.analysis.prediction_eval import evaluate_prediction
from repro.core.predictor import HistoryBasedPredictor, PredictorConfig

PERCENTILES = (25.0, 50.0, 75.0, 95.0)


@pytest.fixture(scope="module")
def ablation_rows(paper_study):
    rows = []
    for metric in PERCENTILES:
        predictor = HistoryBasedPredictor(
            PredictorConfig(metric_percentile=metric)
        )
        evaluation = evaluate_prediction(
            paper_study.dataset, predictor, groupings=("ecs",),
            eval_percentiles=(50.0,),
        )
        summary = evaluation.summary("ecs", 50.0)
        rows.append((metric, summary))
    return rows


def test_ablation_prediction_metric(benchmark, paper_study, ablation_rows):
    # Time one representative evaluation (the 25th-percentile one).
    predictor = HistoryBasedPredictor(PredictorConfig(metric_percentile=25.0))
    benchmark(
        evaluate_prediction,
        paper_study.dataset,
        predictor,
        ("ecs",),
        (50.0,),
    )

    lines = ["Ablation — prediction metric percentile (ECS, eval at median)"]
    for metric, summary in ablation_rows:
        ratio = (
            summary.fraction_improved / summary.fraction_worse
            if summary.fraction_worse
            else float("inf")
        )
        lines.append(
            f"  metric p{metric:<4.0f} improved {summary.fraction_improved:6.1%}"
            f"  worse {summary.fraction_worse:6.1%}  ratio {ratio:5.1f}"
        )
    write_report("ablation_prediction_metric", "\n".join(lines))

    by_metric = dict(ablation_rows)
    # §6's rationale: the 25th percentile's improved:worse ratio beats the
    # 95th percentile's.
    def ratio(summary):
        return summary.fraction_improved / max(summary.fraction_worse, 1e-9)

    assert ratio(by_metric[25.0]) >= ratio(by_metric[95.0])
    # 25th and median behave similarly (the paper found them equivalent).
    assert abs(
        by_metric[25.0].fraction_improved - by_metric[50.0].fraction_improved
    ) <= 0.10
