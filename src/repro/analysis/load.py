"""Load-aware anycast figures: overload vs. latency, and shed traffic.

Two dataset-only figures for capacity-enabled campaigns (those run with
``--frontend-capacity``, whose datasets carry a ``load_summary``):

* **load** — the load-vs-latency tradeoff: per day, the front-end
  utilization the load schedule recorded next to the anycast latency
  the clients actually experienced (p50/p95 over per-/24 daily
  medians).  Under the ``none`` policy latency blows up with the convex
  queueing term on overloaded days; ``withdraw`` trades it for reroute
  penalties and cascades; ``fastroute`` bounds both.
* **shed** — shed-traffic fractions: the per-day shed series (max shed
  fraction, shedding front-end count, withdrawn set, rerouted clients)
  and each front-end's peak utilization/shed over the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.dns.authoritative import ANYCAST_TARGET
from repro.errors import AnalysisError
from repro.latency.sampling import percentile
from repro.simulation.dataset import StudyDataset


def _require_load_summary(dataset: StudyDataset) -> Dict[str, object]:
    summary = dataset.load_summary
    if summary is None:
        raise AnalysisError(
            "dataset has no load summary; re-run the campaign with "
            "--frontend-capacity to enable finite front-end capacity"
        )
    return summary


def _daily_anycast_percentiles(
    dataset: StudyDataset, min_samples: int = 1
) -> Dict[int, Tuple[float, float, int]]:
    """day -> (p50, p95, /24 count) over per-/24 anycast daily medians.

    Working from per-group medians (not raw samples) keeps the figure
    available in bounded-sketch mode and mirrors the per-/24-day framing
    the poor-path figures use.
    """
    result: Dict[int, Tuple[float, float, int]] = {}
    aggregates = dataset.ecs_aggregates
    for day in aggregates.days:
        medians: List[float] = []
        for _group, target_id, digest in aggregates.iter_day(day):
            if target_id != ANYCAST_TARGET or digest.count < min_samples:
                continue
            medians.append(digest.median())
        if not medians:
            continue
        medians.sort()
        result[day] = (
            percentile(medians, 50.0),
            percentile(medians, 95.0),
            len(medians),
        )
    return result


@dataclass(frozen=True)
class LoadDayRow:
    """One day of the load-vs-latency tradeoff."""

    day: int
    max_utilization: float
    mean_utilization: float
    anycast_p50_ms: Optional[float]
    anycast_p95_ms: Optional[float]
    shedding_frontends: int
    withdrawn_frontends: int


@dataclass(frozen=True)
class LoadLatencyTradeoff:
    """Load-vs-latency figure: per-day utilization against latency."""

    policy: str
    headroom: float
    rows: Tuple[LoadDayRow, ...]
    overload_events: Tuple[Mapping[str, object], ...]
    peak_utilization: float
    peak_anycast_p95_ms: Optional[float]

    def format(self) -> str:
        """Per-day table plus the campaign's overload drills."""
        lines = [
            "Load — load-vs-latency tradeoff "
            f"(policy={self.policy}, headroom={self.headroom:g}x)",
            f"  peak front-end utilization: {self.peak_utilization:6.2f}"
            + (
                f", peak anycast p95: {self.peak_anycast_p95_ms:8.1f} ms"
                if self.peak_anycast_p95_ms is not None
                else ""
            ),
            "  day  max-util  mean-util  anycast-p50  anycast-p95"
            "  shedding  withdrawn",
        ]
        for row in self.rows:
            p50 = (
                f"{row.anycast_p50_ms:9.1f}ms"
                if row.anycast_p50_ms is not None
                else "        --"
            )
            p95 = (
                f"{row.anycast_p95_ms:9.1f}ms"
                if row.anycast_p95_ms is not None
                else "        --"
            )
            lines.append(
                f"  {row.day:3d}  {row.max_utilization:8.2f}"
                f"  {row.mean_utilization:9.2f}  {p50}  {p95}"
                f"  {row.shedding_frontends:8d}"
                f"  {row.withdrawn_frontends:9d}"
            )
        if self.overload_events:
            lines.append("  overload drills:")
            for event in self.overload_events:
                lines.append(
                    f"    {event['kind']:<14s} day {event['start_day']}"
                    f" x{event['duration_days']}"
                    f"  magnitude {float(event['magnitude']):.2f}"
                    f"  -> {event['target']}"
                )
        return "\n".join(lines)


def load_latency_tradeoff(dataset: StudyDataset) -> LoadLatencyTradeoff:
    """Compute the load-vs-latency tradeoff from a saved dataset.

    Raises:
        AnalysisError: if the dataset was produced without
            ``--frontend-capacity`` (no load summary recorded).
    """
    summary = _require_load_summary(dataset)
    latency = _daily_anycast_percentiles(dataset)
    rows: List[LoadDayRow] = []
    peak_utilization = 0.0
    peak_p95: Optional[float] = None
    for day_row in summary["days"]:
        day = int(day_row["day"])
        day_latency = latency.get(day)
        p50 = day_latency[0] if day_latency else None
        p95 = day_latency[1] if day_latency else None
        max_utilization = float(day_row["max_utilization"])
        peak_utilization = max(peak_utilization, max_utilization)
        if p95 is not None and (peak_p95 is None or p95 > peak_p95):
            peak_p95 = p95
        rows.append(
            LoadDayRow(
                day=day,
                max_utilization=max_utilization,
                mean_utilization=float(day_row["mean_utilization"]),
                anycast_p50_ms=p50,
                anycast_p95_ms=p95,
                shedding_frontends=int(day_row["shedding_frontends"]),
                withdrawn_frontends=len(day_row["withdrawn"]),
            )
        )
    if not rows:
        raise AnalysisError("load summary covers no days")
    return LoadLatencyTradeoff(
        policy=str(summary["policy"]),
        headroom=float(summary["headroom"]),
        rows=tuple(rows),
        overload_events=tuple(summary.get("events") or ()),
        peak_utilization=peak_utilization,
        peak_anycast_p95_ms=peak_p95,
    )


@dataclass(frozen=True)
class ShedFractionResult:
    """Shed-traffic figure: per-day shed series and per-front-end peaks."""

    policy: str
    rows: Tuple[Mapping[str, object], ...]
    frontends: Mapping[str, Mapping[str, object]]
    total_withdrawn: int
    peak_shed_fraction: float

    def format(self) -> str:
        """Per-day shed table plus per-front-end peaks."""
        lines = [
            f"Shed — shed-traffic fractions (policy={self.policy})",
            f"  peak shed fraction: {self.peak_shed_fraction:6.1%},"
            f" front-ends withdrawn: {self.total_withdrawn}",
            "  day  max-shed  shedding-fes  withdrawn  rerouted-clients",
        ]
        for row in self.rows:
            lines.append(
                f"  {int(row['day']):3d}"
                f"  {float(row['max_shed_fraction']):8.1%}"
                f"  {int(row['shedding_frontends']):12d}"
                f"  {len(row['withdrawn']):9d}"
                f"  {int(row['rerouted_clients']):16d}"
            )
        busy = [
            (frontend_id, stats)
            for frontend_id, stats in self.frontends.items()
            if float(stats["peak_shed_fraction"]) > 0.0
            or stats.get("withdrawn_day") is not None
        ]
        if busy:
            lines.append("  front-ends that shed or withdrew:")
            for frontend_id, stats in busy:
                withdrawn_day = stats.get("withdrawn_day")
                suffix = (
                    f"  withdrawn day {withdrawn_day}"
                    if withdrawn_day is not None
                    else ""
                )
                lines.append(
                    f"    {frontend_id:<16s}"
                    f" peak-util {float(stats['peak_utilization']):6.2f}"
                    f"  peak-shed {float(stats['peak_shed_fraction']):6.1%}"
                    f"{suffix}"
                )
        return "\n".join(lines)


def shed_traffic_fractions(dataset: StudyDataset) -> ShedFractionResult:
    """Compute the shed-traffic figure from a saved dataset.

    Raises:
        AnalysisError: if the dataset carries no load summary.
    """
    summary = _require_load_summary(dataset)
    rows = tuple(summary["days"])
    if not rows:
        raise AnalysisError("load summary covers no days")
    frontends: Mapping[str, Mapping[str, object]] = summary["frontends"]
    peak_shed = max(
        (float(stats["peak_shed_fraction"]) for stats in frontends.values()),
        default=0.0,
    )
    total_withdrawn = sum(
        1
        for stats in frontends.values()
        if stats.get("withdrawn_day") is not None
    )
    return ShedFractionResult(
        policy=str(summary["policy"]),
        rows=rows,
        frontends=frontends,
        total_withdrawn=total_withdrawn,
        peak_shed_fraction=peak_shed,
    )
