"""Network substrate: IP addressing, AS topology, BGP, anycast, traceroute.

This package is the stand-in for the real Internet the paper measured over.
It models the AS-level structures that produce the paper's observations:
Gao–Rexford route propagation, hot- vs cold-potato egress selection, anycast
announcements from many PoPs, and the unicast per-front-end announcements of
§3.1's routing configuration.
"""

from repro.net.anycast import AnycastResolver, AnycastRoute, resolve_route
from repro.net.bgp import (
    Announcement,
    BgpRib,
    RouteComputation,
    RouteEntry,
    relationship_preference,
)
from repro.net.ip import IPv4Address, IPv4Prefix, PrefixAllocator, slash24_of
from repro.net.topology import (
    AsRole,
    AutonomousSystem,
    BaseInternet,
    EgressPolicy,
    Link,
    LinkKind,
    Neighbor,
    PointOfPresence,
    Relationship,
    Topology,
    TopologyBuilder,
    TopologyConfig,
    generate_topology,
    populate_base_internet,
)
from repro.net.traceroute import Traceroute, TracerouteHop, trace_route

__all__ = [
    "Announcement",
    "AnycastResolver",
    "AnycastRoute",
    "AsRole",
    "AutonomousSystem",
    "BaseInternet",
    "BgpRib",
    "EgressPolicy",
    "IPv4Address",
    "IPv4Prefix",
    "Link",
    "LinkKind",
    "Neighbor",
    "PointOfPresence",
    "PrefixAllocator",
    "Relationship",
    "RouteComputation",
    "RouteEntry",
    "Topology",
    "TopologyBuilder",
    "TopologyConfig",
    "Traceroute",
    "TracerouteHop",
    "generate_topology",
    "populate_base_internet",
    "relationship_preference",
    "resolve_route",
    "slash24_of",
    "trace_route",
]
