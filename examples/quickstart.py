#!/usr/bin/env python3
"""Quickstart: measure anycast vs unicast on a small simulated CDN.

Builds a compact world (400 client /24s, one simulated week), runs the
beacon campaign, and prints the headline answers to the paper's two
questions: does anycast direct clients to nearby front-ends, and what does
poor redirection cost?

Run:
    python examples/quickstart.py
"""

from repro import AnycastStudy, ScenarioConfig
from repro.clients.population import ClientPopulationConfig
from repro.simulation.clock import SimulationCalendar


def main() -> None:
    config = ScenarioConfig(
        seed=2015,
        population=ClientPopulationConfig(prefix_count=400),
        calendar=SimulationCalendar(num_days=7),
    )
    study = AnycastStudy(config)

    scenario = study.scenario
    print(
        f"Built a world with {len(scenario.topology)} ASes, "
        f"{len(scenario.network.frontends)} front-ends, "
        f"{len(scenario.clients)} client /24s."
    )

    dataset = study.dataset
    print(
        f"Campaign: {dataset.beacon_count:,} beacon executions, "
        f"{dataset.measurement_count:,} joined measurements "
        f"over {dataset.calendar.num_days} days.\n"
    )

    # Question 1: does anycast direct clients to nearby front-ends?
    fig4 = study.fig4_anycast_distance()
    print("Does anycast direct clients to nearby front-ends?")
    print(
        f"  {fig4.fraction_at_nearest:.0%} of clients land on their "
        f"nearest front-end; {fig4.fraction_within_2000km:.0%} are served "
        f"within 2000 km."
    )

    # Question 2: what is the performance impact of poor redirection?
    fig3 = study.fig3_anycast_penalty()
    world = fig3.fraction_slower["world"]
    print("\nWhat does poor redirection cost?")
    print(
        f"  Anycast is >=25 ms slower than the best measured unicast "
        f"front-end for {world[25.0]:.0%} of requests, and >=100 ms slower "
        f"for {world[100.0]:.0%}."
    )

    # The paper's remedy: history-based prediction (§6).
    fig9 = study.fig9_prediction()
    ecs = fig9.summary("ecs", 50.0)
    print("\nCan a simple prediction scheme recover it?")
    print(
        f"  Prediction-driven DNS redirection improves "
        f"{ecs.fraction_improved:.0%} of query-weighted /24s and makes "
        f"{ecs.fraction_worse:.0%} worse; the rest stay on anycast."
    )


if __name__ == "__main__":
    main()
