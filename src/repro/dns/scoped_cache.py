"""ECS-aware resolver caching (RFC 7871 scopes).

§2's ECS discussion assumes the resolver machinery this module provides:
an answer returned with scope /S is valid only for clients inside the
query's /S subnet, so the resolver keeps *multiple* cache entries per
hostname — one per client scope — while scope-0 answers stay shared.
This is what turns per-LDNS redirection into per-prefix redirection
without a resolver change beyond ECS support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.dns.authoritative import AuthoritativeServer, DnsQuery, DnsResponse
from repro.dns.ecs import EcsOption
from repro.net.ip import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class _ScopedEntry:
    """One cached answer and the client scope it is valid for."""

    target_id: str
    #: None = valid for every client (scope 0).
    scope: Optional[IPv4Prefix]
    expires_at: float

    def matches(self, client: IPv4Address, now: float) -> bool:
        if now >= self.expires_at:
            return False
        return self.scope is None or self.scope.contains(client)


class ScopedDnsCache:
    """A resolver cache honoring ECS scopes.

    Entries for one hostname coexist: a scope-0 entry answers everyone;
    scoped entries answer only their subnet.  Scoped entries take
    precedence (they are more specific), matching resolver behavior.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, List[_ScopedEntry]] = {}
        self._hits = 0
        self._misses = 0

    def get(
        self, hostname: str, client: IPv4Address, now: float
    ) -> Optional[str]:
        """The cached target for a client, or ``None`` on a miss."""
        entries = self._entries.get(hostname)
        if entries:
            live = [e for e in entries if now < e.expires_at]
            if len(live) != len(entries):
                self._entries[hostname] = live
            scoped = [
                e for e in live if e.scope is not None and e.matches(client, now)
            ]
            if scoped:
                self._hits += 1
                return scoped[0].target_id
            shared = [e for e in live if e.scope is None]
            if shared:
                self._hits += 1
                return shared[0].target_id
        self._misses += 1
        return None

    def put(
        self,
        hostname: str,
        response: DnsResponse,
        client: IPv4Address,
        now: float,
    ) -> None:
        """Cache an authoritative answer under its ECS scope."""
        if response.ttl_seconds <= 0:
            raise ConfigurationError("TTL must be positive")
        if response.ecs_scope_len == 0:
            scope: Optional[IPv4Prefix] = None
        else:
            mask = (~0 << (32 - response.ecs_scope_len)) & 0xFFFFFFFF
            scope = IPv4Prefix(
                IPv4Address(client.value & mask), response.ecs_scope_len
            )
        entries = self._entries.setdefault(hostname, [])
        # Replace an existing entry with the same scope.
        entries[:] = [e for e in entries if e.scope != scope]
        entries.append(
            _ScopedEntry(
                target_id=response.target_id,
                scope=scope,
                expires_at=now + response.ttl_seconds,
            )
        )

    def entry_count(self, hostname: str) -> int:
        """Live + expired entries currently held for a hostname."""
        return len(self._entries.get(hostname, ()))

    @property
    def stats(self) -> Tuple[int, int]:
        """(hits, misses) counters."""
        return (self._hits, self._misses)


class EcsResolver:
    """A minimal ECS-forwarding LDNS in front of an authoritative server.

    On a cache miss it forwards the query with the client's /24 attached
    (the common IPv4 ECS source length) and caches the answer under the
    returned scope — the full §2 ECS data path.
    """

    def __init__(
        self,
        ldns_id: str,
        authoritative: AuthoritativeServer,
        source_prefix_length: int = 24,
    ) -> None:
        if not 0 < source_prefix_length <= 32:
            raise ConfigurationError("bad ECS source prefix length")
        self._ldns_id = ldns_id
        self._authoritative = authoritative
        self._source_prefix_length = source_prefix_length
        self._cache = ScopedDnsCache()

    @property
    def cache(self) -> ScopedDnsCache:
        """The resolver's scoped cache."""
        return self._cache

    def resolve(
        self, hostname: str, client: IPv4Address, now: float = 0.0
    ) -> str:
        """Answer a client's query, using the scoped cache when possible."""
        cached = self._cache.get(hostname, client, now)
        if cached is not None:
            return cached
        query = DnsQuery(
            hostname=hostname,
            ldns_id=self._ldns_id,
            ecs=EcsOption.for_address(client, self._source_prefix_length),
        )
        response = self._authoritative.resolve(query, now=now)
        self._cache.put(hostname, response, client, now)
        return response.target_id
