"""Structured trace events with cross-shard clock alignment.

A campaign run is a swarm of phases spread over shards: engines chew
through days, the resilient coordinator dispatches / retries / resumes,
faults fire, checkpoints spill, sidecars hit or miss.  Counters and
spans (:mod:`repro.telemetry.core`) answer "how much" and "how long in
total"; this module answers "*when*, and *on which shard*" — the
timeline view the paper's §6 operational-diagnosis workflow assumes.

Design constraints, in order:

* **Order-insensitive merge.**  Shard snapshots arrive in completion
  order, which varies run to run.  A :class:`TraceLog` merge is a plain
  event-set union with clock rebasing; the canonical ordering is derived
  from event content, never from arrival order.
* **Clock alignment.**  Every log records the ``time.monotonic()``
  instant it was created (its *origin*); event timestamps are
  microseconds since that origin.  Linux's ``CLOCK_MONOTONIC`` is
  system-wide, so merging rebases the other log's events by the origin
  delta — after a merge, all events share the coordinator's clock and
  lanes line up in Perfetto.
* **Shard-invariant digests.**  Wall-clock timestamps can never be
  identical between a serial and a sharded run, so :meth:`TraceLog.digest`
  hashes only ``scope="data"`` events (engine day totals, quarantine
  counts, …) *aggregated by identity with numeric args summed* — the
  event algebra mirrors counter merges, making the digest a pure
  function of the work performed, not of how it was scheduled.
* **Perfetto export.**  :meth:`TraceLog.to_perfetto_obj` emits the
  Chrome trace-event JSON (``ph: "X"`` complete slices, ``ph: "i"``
  instants, thread-name metadata) that ``ui.perfetto.dev`` and
  ``chrome://tracing`` load directly, one lane ("thread") per shard.

Everything here is pure stdlib so shard workers can import it without
dragging in numpy or the measurement stack.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Bump when the serialized trace layout changes incompatibly.
TRACE_FORMAT_VERSION = 1

#: Lane index used for events emitted outside any shard worker
#: (serial runs, the coordinator).  Rendered as the "main" lane.
MAIN_LANE = -1

#: Lane index of the live service's ingestion loop (``repro serve`` /
#: ``repro replay``).  Rendered as the "service" lane, so streaming
#: runs land on their own row of the timeline next to any shard lanes
#: absorbed from a campaign.
SERVICE_LANE = -2

#: Perfetto thread id the service lane maps to — far above any
#: plausible shard index so the two tid ranges can never collide.
_SERVICE_TID = 1_000_000


def _lane_to_tid(lane: int) -> int:
    if lane == MAIN_LANE:
        return 0
    if lane == SERVICE_LANE:
        return _SERVICE_TID
    return lane + 1


def _tid_to_lane(tid: int) -> int:
    if tid == 0:
        return MAIN_LANE
    if tid == _SERVICE_TID:
        return SERVICE_LANE
    return tid - 1

_ArgItems = Tuple[Tuple[str, Any], ...]


def _freeze_args(args: Dict[str, Any]) -> _ArgItems:
    """Sort arg items into a hashable, deterministic tuple."""
    return tuple(sorted(args.items()))


@dataclass(frozen=True)
class TraceEvent:
    """One timeline event.

    ``ts_us`` is microseconds since the owning log's origin; ``dur_us``
    is ``None`` for instants.  ``shard`` is the lane (:data:`MAIN_LANE`
    for coordinator/serial events), ``attempt`` the retry attempt that
    emitted it.  ``scope`` partitions events into ``"ops"`` (timing,
    scheduling — excluded from digests) and ``"data"`` (work totals —
    the digest's subject).
    """

    name: str
    cat: str
    ts_us: int
    dur_us: Optional[int] = None
    shard: int = MAIN_LANE
    attempt: int = 0
    scope: str = "ops"
    args: _ArgItems = ()

    def sort_key(self) -> Tuple[Any, ...]:
        """Content-derived ordering key (arrival-order free)."""
        return (
            self.ts_us,
            self.shard,
            self.attempt,
            self.cat,
            self.name,
            -1 if self.dur_us is None else self.dur_us,
            self.args,
        )

    def to_obj(self) -> Dict[str, Any]:
        """A JSON-compatible document for this event."""
        obj: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ts_us": self.ts_us,
            "shard": self.shard,
            "attempt": self.attempt,
            "scope": self.scope,
        }
        if self.dur_us is not None:
            obj["dur_us"] = self.dur_us
        if self.args:
            obj["args"] = dict(self.args)
        return obj

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_obj` output."""
        return cls(
            name=str(obj["name"]),
            cat=str(obj["cat"]),
            ts_us=int(obj["ts_us"]),
            dur_us=None if obj.get("dur_us") is None else int(obj["dur_us"]),
            shard=int(obj.get("shard", MAIN_LANE)),
            attempt=int(obj.get("attempt", 0)),
            scope=str(obj.get("scope", "ops")),
            args=_freeze_args(dict(obj.get("args", {}))),
        )


@dataclass
class TraceLog:
    """An append-only event log with a monotonic-clock origin.

    Emission sites set :attr:`lane` / :attr:`attempt` once (shard
    workers do this on entry) so individual ``instant``/``complete``
    calls stay terse.  Logs merge by event-set union after rebasing the
    other log's timestamps onto this log's origin.
    """

    origin: float = field(default_factory=time.monotonic)
    lane: int = MAIN_LANE
    attempt: int = 0
    events: List[TraceEvent] = field(default_factory=list)

    # -- emission -----------------------------------------------------

    def now_us(self) -> int:
        """Microseconds elapsed since this log's origin."""
        return round((time.monotonic() - self.origin) * 1e6)

    def instant(
        self,
        name: str,
        cat: str,
        *,
        shard: Optional[int] = None,
        attempt: Optional[int] = None,
        scope: str = "ops",
        ts_us: Optional[int] = None,
        **args: Any,
    ) -> TraceEvent:
        """Record a point-in-time event (Perfetto ``ph: "i"``)."""
        event = TraceEvent(
            name=name,
            cat=cat,
            ts_us=self.now_us() if ts_us is None else ts_us,
            dur_us=None,
            shard=self.lane if shard is None else shard,
            attempt=self.attempt if attempt is None else attempt,
            scope=scope,
            args=_freeze_args(args),
        )
        self.events.append(event)
        return event

    def complete(
        self,
        name: str,
        cat: str = "phase",
        *,
        ts_us: int,
        dur_us: int,
        shard: Optional[int] = None,
        attempt: Optional[int] = None,
        scope: str = "ops",
        **args: Any,
    ) -> TraceEvent:
        """Record a duration slice (Perfetto ``ph: "X"``)."""
        event = TraceEvent(
            name=name,
            cat=cat,
            ts_us=ts_us,
            dur_us=max(0, dur_us),
            shard=self.lane if shard is None else shard,
            attempt=self.attempt if attempt is None else attempt,
            scope=scope,
            args=_freeze_args(args),
        )
        self.events.append(event)
        return event

    def data(
        self,
        name: str,
        cat: str = "engine",
        *,
        index: Optional[Any] = None,
        **args: Any,
    ) -> TraceEvent:
        """Record a ``scope="data"`` instant carrying work totals.

        Data events are the digest's subject: numeric args are summed
        across shards during aggregation, so only shard-invariant totals
        (beacons per day, quarantined records per reason) belong here —
        never anything that depends on how clients were sliced.
        """
        if index is not None:
            args = dict(args)
            # Stringified so the index stays part of the event's
            # *identity* during aggregation (numeric args are summed).
            args["index"] = str(index)
        return self.instant(name, cat, scope="data", **args)

    # -- merge / canonical form ---------------------------------------

    def merge(self, other: "TraceLog") -> None:
        """Absorb ``other``'s events, rebased onto this log's clock."""
        offset_us = round((other.origin - self.origin) * 1e6)
        if offset_us == 0:
            self.events.extend(other.events)
            return
        for event in other.events:
            self.events.append(
                dataclasses.replace(event, ts_us=event.ts_us + offset_us)
            )

    def canonical(self) -> List[TraceEvent]:
        """Events in a content-derived order (arrival-order free)."""
        return sorted(self.events, key=TraceEvent.sort_key)

    def copy(self) -> "TraceLog":
        """A shallow copy sharing (immutable) events, not the list."""
        clone = TraceLog(origin=self.origin, lane=self.lane, attempt=self.attempt)
        clone.events = list(self.events)
        return clone

    # -- digest -------------------------------------------------------

    def data_totals(self) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
        """Aggregate data events by identity, summing numeric args.

        The identity key is ``(cat, name, non-numeric args)`` — shard,
        attempt, and timestamps are deliberately excluded so serial and
        sharded runs of the same campaign aggregate identically.
        Numeric sums are computed over sorted value lists to keep float
        addition associative in practice.
        """
        groups: Dict[Tuple[Any, ...], Dict[str, List[Any]]] = {}
        for event in self.events:
            if event.scope != "data":
                continue
            identity_args: List[Tuple[str, Any]] = []
            numeric: Dict[str, Any] = {}
            for key, value in event.args:
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    identity_args.append((key, value))
                else:
                    numeric[key] = value
            identity = (event.cat, event.name, tuple(identity_args))
            bucket = groups.setdefault(identity, {})
            for key, value in numeric.items():
                bucket.setdefault(key, []).append(value)
        totals: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        for identity, values in groups.items():
            totals[identity] = {
                key: sum(sorted(samples))
                for key, samples in sorted(values.items())
            }
        return totals

    def digest(self) -> str:
        """SHA-256 over the aggregated data events.

        Identical for serial and sharded runs of the same campaign:
        timing/scheduling events (``scope="ops"``) are excluded, and
        data totals sum shard-invariantly.
        """
        rows = [
            {
                "cat": identity[0],
                "name": identity[1],
                "args": [list(pair) for pair in identity[2]],
                "totals": totals,
            }
            for identity, totals in sorted(
                self.data_totals().items(), key=lambda item: repr(item[0])
            )
        ]
        payload = json.dumps(rows, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- serialization ------------------------------------------------

    def to_obj(self) -> Dict[str, Any]:
        """A JSON-compatible document, events in canonical order."""
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "origin_monotonic": self.origin,
            "events": [event.to_obj() for event in self.canonical()],
        }

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "TraceLog":
        """Rebuild a log from :meth:`to_obj` output."""
        version = obj.get("format_version")
        if version != TRACE_FORMAT_VERSION:
            from repro.errors import TelemetryError

            raise TelemetryError(
                f"unsupported trace format_version: {version!r}"
            )
        log = cls(origin=float(obj.get("origin_monotonic", 0.0)))
        log.events = [TraceEvent.from_obj(item) for item in obj["events"]]
        return log

    # -- Perfetto / Chrome trace-event JSON ---------------------------

    def to_perfetto_obj(self) -> Dict[str, Any]:
        """Chrome trace-event JSON: one lane ("thread") per shard.

        Loadable directly in ``ui.perfetto.dev`` / ``chrome://tracing``.
        Lane :data:`MAIN_LANE` renders as thread 0 ("main"); shard ``N``
        as thread ``N + 1`` ("shard N").  Event ``args`` carry the
        attempt and scope so retries are distinguishable in the UI.
        """
        pid = 1
        lanes = sorted({event.shard for event in self.events})
        trace_events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro campaign"},
            }
        ]
        for lane in lanes:
            tid = _lane_to_tid(lane)
            label = _lane_label(lane)
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
            trace_events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        for event in self.canonical():
            tid = _lane_to_tid(event.shard)
            args = dict(event.args)
            args["attempt"] = event.attempt
            args["scope"] = event.scope
            entry: Dict[str, Any] = {
                "name": event.name,
                "cat": event.cat,
                "pid": pid,
                "tid": tid,
                "ts": event.ts_us,
                "args": args,
            }
            if event.dur_us is None:
                entry["ph"] = "i"
                entry["s"] = "t"
            else:
                entry["ph"] = "X"
                entry["dur"] = event.dur_us
            trace_events.append(entry)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "format_version": TRACE_FORMAT_VERSION,
                "origin_monotonic": self.origin,
            },
        }

    @classmethod
    def from_perfetto_obj(cls, obj: Dict[str, Any]) -> "TraceLog":
        """Inverse of :meth:`to_perfetto_obj` (metadata events skipped)."""
        other = obj.get("otherData", {})
        log = cls(origin=float(other.get("origin_monotonic", 0.0)))
        for entry in obj.get("traceEvents", []):
            ph = entry.get("ph")
            if ph not in ("X", "i"):
                continue
            args = dict(entry.get("args", {}))
            attempt = int(args.pop("attempt", 0))
            scope = str(args.pop("scope", "ops"))
            tid = int(entry.get("tid", 0))
            log.events.append(
                TraceEvent(
                    name=str(entry["name"]),
                    cat=str(entry.get("cat", "ops")),
                    ts_us=int(entry["ts"]),
                    dur_us=int(entry["dur"]) if ph == "X" else None,
                    shard=_tid_to_lane(tid),
                    attempt=attempt,
                    scope=scope,
                    args=_freeze_args(args),
                )
            )
        return log


# -- timeline report ---------------------------------------------------


def _lane_label(lane: int) -> str:
    if lane == MAIN_LANE:
        return "main"
    if lane == SERVICE_LANE:
        return "service"
    return f"shard {lane}"


def format_trace_report(log: TraceLog) -> str:
    """Human-readable timeline summary with critical-path attribution.

    Renders per-lane activity (first/last event, busy time, counts), the
    operational event census (retries, faults, checkpoints, sidecar
    traffic), and a per-phase attribution over the *critical lane* — the
    lane whose activity finishes last and therefore bounds wall time.
    """
    events = log.canonical()
    if not events:
        return "trace: no events recorded\n"

    lanes: Dict[int, Dict[str, Any]] = {}
    for event in events:
        info = lanes.setdefault(
            event.shard,
            {"first": event.ts_us, "last": event.ts_us, "count": 0},
        )
        end = event.ts_us + (event.dur_us or 0)
        info["first"] = min(info["first"], event.ts_us)
        info["last"] = max(info["last"], end)
        info["count"] += 1

    lines: List[str] = []
    lines.append("== trace timeline ==")
    t0 = min(info["first"] for info in lanes.values())
    t_end = max(info["last"] for info in lanes.values())
    lines.append(
        f"wall span: {(t_end - t0) / 1e6:.3f}s across "
        f"{len(lanes)} lane(s), {len(events)} event(s)"
    )
    lines.append("")
    lines.append(f"{'lane':<10} {'start(s)':>9} {'end(s)':>9} "
                 f"{'span(s)':>9} {'events':>7}")
    critical_lane = max(lanes, key=lambda lane: lanes[lane]["last"])
    for lane in sorted(lanes):
        info = lanes[lane]
        marker = "  <- critical" if lane == critical_lane else ""
        lines.append(
            f"{_lane_label(lane):<10} "
            f"{(info['first'] - t0) / 1e6:>9.3f} "
            f"{(info['last'] - t0) / 1e6:>9.3f} "
            f"{(info['last'] - info['first']) / 1e6:>9.3f} "
            f"{info['count']:>7}{marker}"
        )

    ops_counts: Dict[Tuple[str, str], int] = {}
    for event in events:
        if event.scope == "ops" and event.dur_us is None:
            key = (event.cat, event.name)
            ops_counts[key] = ops_counts.get(key, 0) + 1
    if ops_counts:
        lines.append("")
        lines.append("operational events:")
        for (cat, name), count in sorted(ops_counts.items()):
            lines.append(f"  {cat}/{name:<28} {count:>6}")

    # Critical-path phase attribution: sum phase slices on the lane
    # that finishes last, grouped by phase path, deepest paths first.
    phase_totals: Dict[str, int] = {}
    for event in events:
        if (
            event.shard == critical_lane
            and event.dur_us is not None
            and event.cat == "phase"
        ):
            phase_totals[event.name] = (
                phase_totals.get(event.name, 0) + event.dur_us
            )
    if phase_totals:
        lines.append("")
        lines.append(
            f"critical-path phases ({_lane_label(critical_lane)}):"
        )
        total = max(
            (v for k, v in phase_totals.items() if "/" not in k),
            default=sum(phase_totals.values()),
        )
        for name, dur in sorted(
            phase_totals.items(), key=lambda item: -item[1]
        ):
            share = (dur / total * 100.0) if total else 0.0
            lines.append(
                f"  {name:<32} {dur / 1e6:>9.3f}s  {share:>5.1f}%"
            )

    data_totals = log.data_totals()
    if data_totals:
        lines.append("")
        lines.append(f"data digest: {log.digest()}")
    return "\n".join(lines) + "\n"


# -- module-level active trace (for emission sites without a Telemetry
#    handle, e.g. the columnar sidecar loader) --------------------------

_active_trace: Optional[TraceLog] = None


def set_active_trace(trace: Optional[TraceLog]) -> None:
    """Install (or clear) the process-wide default trace log."""
    global _active_trace
    _active_trace = trace


def active_trace() -> Optional[TraceLog]:
    """The process-wide default trace log, if one is installed."""
    return _active_trace


def merge_trace_logs(logs: Iterable[TraceLog]) -> Optional[TraceLog]:
    """Merge logs into a copy of the first; ``None`` for no logs."""
    merged: Optional[TraceLog] = None
    for log in logs:
        if merged is None:
            merged = log.copy()
        else:
            merged.merge(log)
    return merged
