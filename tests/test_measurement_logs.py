"""Tests for measurement log stores and aggregation structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, MeasurementError
from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
)
from repro.measurement.logs import (
    HttpLogEntry,
    PassiveLog,
    RawMeasurementLog,
    ServerLogEntry,
)


class TestLatencyDigest:
    def test_count_and_percentiles(self):
        digest = LatencyDigest([5.0, 1.0, 3.0])
        assert digest.count == 3
        assert digest.median() == 3.0
        assert digest.minimum() == 1.0

    def test_add_invalidates_sorted_view(self):
        digest = LatencyDigest([10.0])
        assert digest.median() == 10.0
        digest.add(0.0)
        assert digest.median() == 5.0

    def test_merge(self):
        a = LatencyDigest([1.0, 2.0])
        b = LatencyDigest([3.0, 4.0])
        a.merge(b)
        assert a.count == 4
        assert a.values() == (1.0, 2.0, 3.0, 4.0)

    def test_empty_errors(self):
        digest = LatencyDigest()
        with pytest.raises(AnalysisError):
            digest.percentile(50)
        with pytest.raises(AnalysisError):
            digest.minimum()

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e5, allow_nan=False),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=50)
    def test_percentiles_match_numpy(self, values):
        digest = LatencyDigest(values)
        for q in (25.0, 50.0, 75.0):
            assert digest.percentile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-9, abs=1e-9
            )


class TestGroupedDailyAggregates:
    def test_observe_and_query(self):
        agg = GroupedDailyAggregates("ecs")
        agg.observe(0, "10.0.0.0/24", "anycast", 20.0)
        agg.observe(0, "10.0.0.0/24", "anycast", 22.0)
        agg.observe(0, "10.0.0.0/24", "fe-lon", 18.0)
        agg.observe(1, "10.0.0.0/24", "anycast", 30.0)
        assert agg.days == (0, 1)
        assert agg.groups_on(0) == ("10.0.0.0/24",)
        digest = agg.digest(0, "10.0.0.0/24", "anycast")
        assert digest is not None and digest.count == 2
        assert agg.digest(0, "10.0.0.0/24", "fe-nyc") is None
        targets = agg.targets_for(0, "10.0.0.0/24")
        assert set(targets) == {"anycast", "fe-lon"}

    def test_iter_day(self):
        agg = GroupedDailyAggregates("ldns")
        agg.observe(2, "ldns-a", "anycast", 1.0)
        triples = list(agg.iter_day(2))
        assert len(triples) == 1
        assert triples[0][0] == "ldns-a"

    def test_empty_grouping_label(self):
        with pytest.raises(MeasurementError):
            GroupedDailyAggregates("")


class TestRequestDiffLog:
    def test_observe_and_diffs(self):
        log = RequestDiffLog()
        log.observe(0, 1, "europe", 30.0, 20.0)
        log.observe(0, 2, "united-states", 15.0, 18.0)
        assert len(log) == 2
        assert log.diffs() == pytest.approx([10.0, -3.0])
        assert log.diffs("europe") == pytest.approx([10.0])
        assert log.diffs("asia") == []

    def test_region_codes_stable(self):
        log = RequestDiffLog()
        assert log.region_code("europe") == 0
        assert log.region_code("asia") == 1
        assert log.region_code("europe") == 0
        assert log.region_names == ("europe", "asia")

    def test_rows(self):
        log = RequestDiffLog()
        log.observe(3, 7, "europe", 30.0, 20.0)
        row = next(log.rows())
        assert row.client_index == 7
        assert row.diff_ms == pytest.approx(10.0)


class TestPassiveLog:
    def test_record_and_query(self):
        log = PassiveLog()
        log.record(0, "p1", "fe-a", 10)
        log.record(0, "p1", "fe-a", 5)
        log.record(0, "p1", "fe-b", 3)
        assert log.frontends_for(0, "p1") == {"fe-a": 15, "fe-b": 3}
        assert log.primary_frontend(0, "p1") == "fe-a"
        assert log.total_queries(0) == 18
        assert log.clients_on(0) == ("p1",)
        assert log.days == (0,)

    def test_zero_count_is_noop(self):
        log = PassiveLog()
        log.record(0, "p1", "fe-a", 0)
        assert log.frontends_for(0, "p1") == {}
        assert log.primary_frontend(0, "p1") is None

    def test_negative_count_rejected(self):
        with pytest.raises(MeasurementError):
            PassiveLog().record(0, "p1", "fe-a", -1)

    def test_primary_tie_breaks_on_name(self):
        log = PassiveLog()
        log.record(0, "p1", "fe-b", 5)
        log.record(0, "p1", "fe-a", 5)
        assert log.primary_frontend(0, "p1") == "fe-b"  # max by (count, name)

    def test_iter_day(self):
        log = PassiveLog()
        log.record(1, "p1", "fe-a", 2)
        assert dict(log.iter_day(1)) == {"p1": {"fe-a": 2}}
        assert list(log.iter_day(5)) == []


class TestRawMeasurementLog:
    def test_records_and_lookup(self):
        log = RawMeasurementLog()
        log.record_dns("m1", "ldns-1", "anycast")
        log.record_http(HttpLogEntry(0, "m1", "10.0.0.0/24", 25.0, True))
        log.record_server(ServerLogEntry(0, "m1", "fe-lon"))
        assert log.dns_record("m1") == ("ldns-1", "anycast")
        assert len(log) == 1

    def test_duplicate_dns_rejected(self):
        log = RawMeasurementLog()
        log.record_dns("m1", "a", "b")
        with pytest.raises(MeasurementError, match="duplicate"):
            log.record_dns("m1", "a", "b")

    def test_missing_dns_record(self):
        with pytest.raises(MeasurementError, match="no DNS record"):
            RawMeasurementLog().dns_record("missing")
