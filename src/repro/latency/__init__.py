"""Latency substrate: converting geographic paths into measured RTTs."""

from repro.latency.model import LatencyConfig, LatencyModel
from repro.latency.sampling import (
    coefficient_of_variation,
    percentile,
    percentile_stability_profile,
)

__all__ = [
    "LatencyConfig",
    "LatencyModel",
    "coefficient_of_variation",
    "percentile",
    "percentile_stability_profile",
]
