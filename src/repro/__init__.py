"""repro — reproduction of "Analyzing the Performance of an Anycast CDN"
(Calder et al., IMC 2015).

The package builds, from scratch, everything the paper's measurement study
needed — a policy-faithful AS-level Internet, an anycast CDN with the
§3.1 routing configuration, a client population, the JavaScript-beacon
methodology, and the §6 history-based prediction scheme — and regenerates
every figure of the evaluation.

Quickstart::

    from repro import AnycastStudy, ScenarioConfig

    study = AnycastStudy(ScenarioConfig(seed=2015))
    print(study.fig3_anycast_penalty().format())

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.core.hybrid import HybridConfig, HybridRedirector
from repro.core.predictor import (
    HistoryBasedPredictor,
    Prediction,
    PredictorConfig,
)
from repro.core.study import AnycastStudy
from repro.errors import (
    AddressError,
    AnalysisError,
    ConfigurationError,
    GeoError,
    MeasurementError,
    PredictionError,
    ReproError,
    RoutingError,
    TelemetryError,
    TopologyError,
)
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignStats,
)
from repro.simulation.dataset import StudyDataset
from repro.simulation.parallel import ParallelCampaignRunner, run_campaign
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import (
    RunContext,
    Telemetry,
    TelemetrySnapshot,
    configure_logging,
)

__version__ = "1.0.0"

__all__ = [
    "AddressError",
    "AnalysisError",
    "AnycastStudy",
    "CampaignConfig",
    "CampaignRunner",
    "CampaignStats",
    "ConfigurationError",
    "GeoError",
    "HistoryBasedPredictor",
    "HybridConfig",
    "HybridRedirector",
    "MeasurementError",
    "ParallelCampaignRunner",
    "Prediction",
    "PredictionError",
    "PredictorConfig",
    "ReproError",
    "run_campaign",
    "RoutingError",
    "RunContext",
    "Scenario",
    "ScenarioConfig",
    "StudyDataset",
    "Telemetry",
    "TelemetryError",
    "TelemetrySnapshot",
    "TopologyError",
    "configure_logging",
    "__version__",
]
