"""Process-memory instrumentation for campaigns and smoke gates.

Two complementary signals:

* :func:`peak_rss_bytes` — the OS-reported lifetime peak resident set
  (``getrusage.ru_maxrss``).  Cheap, always available, but *monotonic*
  for the process: it cannot compare two phases of one run.
* :class:`MemoryProbe` — a ``tracemalloc`` window around one phase,
  reporting that phase's peak *Python-allocated* bytes.  Restartable,
  so the memory smoke can compare two population sizes within one
  process; slower (2x-ish on allocation-heavy code), so only gates use
  it, never production campaign paths.
"""

from __future__ import annotations

import resource
import sys
import tracemalloc
from typing import Optional


def peak_rss_bytes() -> int:
    """Lifetime peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to bytes.  Monotonic: it never decreases, so it gauges a whole run,
    not a phase.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class MemoryProbe:
    """A restartable ``tracemalloc`` window around one phase.

    Usage::

        with MemoryProbe() as probe:
            run_phase()
        print(probe.peak_bytes)

    Entering resets the peak accounting (via
    ``tracemalloc.reset_peak`` when tracing is already on, else by
    starting tracing), so consecutive probes in one process measure
    their own phases independently.  If this probe started tracing, it
    stops it on exit to remove the overhead between phases.
    """

    def __init__(self) -> None:
        self.peak_bytes: Optional[int] = None
        self._started_tracing = False

    def __enter__(self) -> "MemoryProbe":
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            self._started_tracing = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = int(peak)
        if self._started_tracing:
            tracemalloc.stop()
