"""Geography substrate: coordinates, metros, regions, and geolocation.

The paper's analyses are fundamentally geographic — distances from clients
to front-ends (Figs 2, 4, 8), region splits (Fig 3), and a geolocation
database whose errors the paper acknowledges (footnote 1).  This package
provides those primitives.
"""

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    GeoPoint,
    destination_point,
    haversine_km,
    initial_bearing_deg,
)
from repro.geo.geolocation import GeolocationDatabase, GeolocationRecord
from repro.geo.metros import Metro, MetroDatabase, builtin_metros
from repro.geo.regions import Region, region_of_point

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "GeolocationDatabase",
    "GeolocationRecord",
    "Metro",
    "MetroDatabase",
    "Region",
    "builtin_metros",
    "destination_point",
    "haversine_km",
    "initial_bearing_deg",
    "region_of_point",
]
