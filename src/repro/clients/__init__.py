"""Client substrate: /24 prefixes, their placement, volume, and workload."""

from repro.clients.population import (
    ClientPopulationConfig,
    ClientPrefix,
    generate_population,
)
from repro.clients.workload import WorkloadConfig, WorkloadModel

__all__ = [
    "ClientPopulationConfig",
    "ClientPrefix",
    "WorkloadConfig",
    "WorkloadModel",
    "generate_population",
]
