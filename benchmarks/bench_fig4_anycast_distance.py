"""Fig 4 — distance from clients to the anycast front-end serving them,
and distance *past* the closest front-end, over one production day.

Paper: ~55% of clients land on the nearest front-end; ~75% are within
~400 km of their closest; 82% of clients / 87% of query volume are within
2000 km of their serving front-end (weighted looks better than
unweighted).
"""

from conftest import write_figure


def test_fig4_anycast_distance(benchmark, paper_study):
    result = benchmark(paper_study.fig4_anycast_distance, 0)
    write_figure(
        "fig4_anycast_distance", result.format(), result.series,
        title="Fig 4 - client-to-anycast-front-end distance (CDF)",
        x_label="km", log_x=True,
    )

    # Most clients land on or near their closest front-end...
    assert 0.40 <= result.fraction_at_nearest <= 0.85
    # ...and the bulk of traffic is served within 2000 km.
    assert result.fraction_within_2000km >= 0.70
    assert result.fraction_within_2000km_weighted >= 0.70
    # 75% of clients are within a few hundred km past their closest.
    assert result.past_closest_p75_km <= 800
    # There is a tail of genuinely distant redirection (the paper's
    # 10-15% of /24s directed to distant front-ends).
    assert result.past_closest_p90_km > result.past_closest_p75_km
