#!/usr/bin/env python3
"""§4's CDN deployment-size survey plus front-end proximity.

Prints the 21-CDN location-count comparison the paper uses to place the
measured deployment in context, then the Fig 2 distance distribution for
the simulated population.

Run:
    python examples/cdn_size_survey.py
"""

from repro import AnycastStudy, ScenarioConfig
from repro.cdn.catalog import anycast_cdns, catalog
from repro.clients.population import ClientPopulationConfig
from repro.simulation.clock import SimulationCalendar


def main() -> None:
    config = ScenarioConfig(
        seed=2015,
        population=ClientPopulationConfig(prefix_count=400),
        calendar=SimulationCalendar(num_days=1),
    )
    study = AnycastStudy(config)
    deployment_size = len(study.scenario.network.frontends)

    print("CDN deployment sizes (from public data cited in §4):")
    for entry in catalog(include_bing=True, bing_locations=deployment_size):
        marker = " *" if entry.is_outlier else ""
        anycast = " [anycast]" if entry.is_anycast else ""
        print(f"  {entry.name:24s} {entry.locations:5d}{marker}{anycast}")
    print("  (* = extreme outlier per the paper)")

    names = ", ".join(
        e.name for e in anycast_cdns(include_bing=False)
    )
    print(f"\nKnown anycast CDNs in the survey: {names}.")

    fig2 = study.fig2_client_distance()
    print("\nHow close are clients to this deployment's front-ends?")
    for n, median in enumerate(fig2.medians_km, start=1):
        print(f"  median distance to {n}-closest front-end: {median:6.0f} km")


if __name__ == "__main__":
    main()
