"""Distribution utilities shared by all figure analyses.

The paper presents nearly everything as CDFs/CCDFs, frequently weighting
client /24s by query volume (§3.2.2).  :class:`WeightedDistribution` is
the common carrier: values with weights, supporting quantiles, fractions
below thresholds, and evaluation on an x-grid for plotting-style output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class CdfSeries:
    """A CDF (or CCDF) evaluated on an x-grid, ready to print/plot."""

    label: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise AnalysisError("xs and ys must have equal length")

    def format_rows(self) -> str:
        """Two-column textual rendering."""
        lines = [f"# {self.label}"]
        for x, y in zip(self.xs, self.ys):
            lines.append(f"{x:10.2f}  {y:8.4f}")
        return "\n".join(lines)


class WeightedDistribution:
    """Values with non-negative weights; empirical distribution queries."""

    def __init__(
        self,
        values: Iterable[float],
        weights: Optional[Iterable[float]] = None,
    ) -> None:
        values_arr = np.asarray(list(values), dtype=np.float64)
        if values_arr.size == 0:
            raise AnalysisError("distribution needs at least one value")
        if weights is None:
            weights_arr = np.ones_like(values_arr)
        else:
            weights_arr = np.asarray(list(weights), dtype=np.float64)
            if weights_arr.shape != values_arr.shape:
                raise AnalysisError("values and weights must align")
            if np.any(weights_arr < 0):
                raise AnalysisError("weights must be non-negative")
            if not np.any(weights_arr > 0):
                raise AnalysisError("at least one weight must be positive")
        order = np.argsort(values_arr, kind="stable")
        self._values = values_arr[order]
        self._weights = weights_arr[order]
        self._cum = np.cumsum(self._weights)
        self._total = float(self._cum[-1])

    def __len__(self) -> int:
        return int(self._values.size)

    @property
    def total_weight(self) -> float:
        """Sum of all weights."""
        return self._total

    def fraction_at_or_below(self, x: float) -> float:
        """Weighted CDF value at ``x``."""
        index = np.searchsorted(self._values, x, side="right")
        if index == 0:
            return 0.0
        return float(self._cum[index - 1] / self._total)

    def fraction_above(self, x: float) -> float:
        """Weighted CCDF value at ``x`` (strictly above)."""
        return 1.0 - self.fraction_at_or_below(x)

    def quantile(self, q: float) -> float:
        """Weighted quantile, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must be in [0, 1], got {q}")
        target = q * self._total
        index = int(np.searchsorted(self._cum, target, side="left"))
        index = min(index, self._values.size - 1)
        return float(self._values[index])

    def median(self) -> float:
        """Weighted median."""
        return self.quantile(0.5)

    def cdf_series(self, label: str, xs: Sequence[float]) -> CdfSeries:
        """CDF evaluated at a grid of x values."""
        return CdfSeries(
            label=label,
            xs=tuple(float(x) for x in xs),
            ys=tuple(self.fraction_at_or_below(x) for x in xs),
        )

    def ccdf_series(self, label: str, xs: Sequence[float]) -> CdfSeries:
        """CCDF evaluated at a grid of x values."""
        return CdfSeries(
            label=label,
            xs=tuple(float(x) for x in xs),
            ys=tuple(self.fraction_above(x) for x in xs),
        )


def log2_grid(start: float, stop: float) -> Tuple[float, ...]:
    """Powers of two from ``start`` to ``stop`` inclusive — the paper's
    log-scale distance axes (64..8192 km)."""
    if start <= 0 or stop < start:
        raise AnalysisError("need 0 < start <= stop")
    grid: List[float] = []
    x = start
    while x <= stop * 1.0000001:
        grid.append(float(x))
        x *= 2.0
    return tuple(grid)


def linear_grid(start: float, stop: float, step: float) -> Tuple[float, ...]:
    """Inclusive linear grid — the paper's 0..100 ms latency axes."""
    if step <= 0 or stop < start:
        raise AnalysisError("need positive step and stop >= start")
    count = int(round((stop - start) / step))
    return tuple(start + i * step for i in range(count + 1))
