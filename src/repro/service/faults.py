"""Fault-plan kill points inside the ingestion loop.

The service reuses the campaign's :class:`~repro.faults.plan.FaultPlan`
vocabulary, restricted to the kinds that make sense for a single
long-running loop: ``crash`` (the process dies mid-stream — the chaos
tests' kill point) and ``exception`` (a transient error surfaces and
the supervisor restarts the loop).  Faults compile exactly like a
1-shard campaign: the plan's n-th service fault fires on the n-th
*attempt* (restart), and each firing point pins to a seed-derived event
ordinal, so a chaos run kills at the same record on every execution —
which is what makes "killed, resumed, bit-identical" a deterministic
assertion instead of a race.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.faults.inject import InjectedCrashError, InjectedTransientError
from repro.faults.plan import CompiledFaultPlan, FaultKind, FaultPlan
from repro.rand import derive_seed

#: Fault kinds a service plan may schedule at the loop's kill points.
#: (``record-*`` kinds are also accepted by the *replay* layer, which
#: dirties events before they reach the gate — see
#: :func:`repro.service.replay.dirty_events`.)
SERVICE_KINDS = frozenset({FaultKind.CRASH, FaultKind.EXCEPTION})


def compile_service_plan(
    plan: Optional[FaultPlan], seed: int
) -> Optional[CompiledFaultPlan]:
    """Compile a plan's worker faults for the single service "shard".

    Raises:
        ConfigurationError: when the plan schedules worker-fault kinds
            the service loop has no site for (hang/corrupt/merge).
    """
    if plan is None:
        return None
    unsupported = sorted(
        spec.kind.value
        for spec in plan.worker_specs
        if spec.kind not in SERVICE_KINDS
    )
    if unsupported:
        raise ConfigurationError(
            "service fault plans support kinds "
            f"{sorted(k.value for k in SERVICE_KINDS)} plus record-* "
            f"dirty-data kinds; got {unsupported}"
        )
    if not plan.worker_specs:
        return None
    return plan.compile(seed, shards=1)


class ServiceFaultInjector:
    """Fires one service attempt's scheduled fault at its event ordinal.

    Args:
        kind: The fault scheduled for this attempt (restart), or
            ``None`` for a clean attempt.
        seed: Scenario seed; derives the firing ordinal.
        attempt: The restart count (0 = first run).
        horizon: Expected stream length in events; the firing ordinal
            is derived modulo this, landing the kill point mid-stream.
    """

    def __init__(
        self,
        kind: Optional[FaultKind],
        seed: int,
        attempt: int,
        horizon: int,
    ) -> None:
        self.kind = kind
        self.seed = seed
        self.attempt = attempt
        self.horizon = max(1, horizon)
        self.fired = False
        self.fire_at = derive_seed(
            seed, "service-fault", attempt
        ) % self.horizon

    def on_event(self, cursor: int) -> None:
        """Kill point: called once per event with its stream ordinal.

        Fires when the cursor reaches the derived ordinal.  A resumed
        run whose restored cursor already passed a later attempt's
        ordinal fires at the first event it processes — the fault is
        late, never lost.
        """
        if self.kind is None or self.fired or cursor < self.fire_at:
            return
        self.fired = True
        if self.kind is FaultKind.CRASH:
            raise InjectedCrashError(
                f"injected service crash at event {cursor} "
                f"(attempt {self.attempt})"
            )
        raise InjectedTransientError(
            f"injected transient service failure at event {cursor} "
            f"(attempt {self.attempt})"
        )
