"""CDN substrate: front-ends, deployment, backbone, data plane, catalog."""

from repro.cdn.backbone import BackboneRoute, CdnBackbone
from repro.cdn.catalog import (
    CdnCatalogEntry,
    anycast_cdns,
    catalog,
    non_outliers,
)
from repro.cdn.fastroute import (
    AnycastLayer,
    FastRouteBalancer,
    FastRouteResult,
    LayeredAnycastNetwork,
    ShedDecision,
    default_layers,
)
from repro.cdn.failover import (
    CascadeResult,
    CascadeStep,
    WithdrawalSimulator,
    frontend_loads,
)
from repro.cdn.deployment import (
    DEFAULT_ANYCAST_PREFIX,
    DEFAULT_FRONTEND_METROS,
    DEFAULT_UNICAST_POOL,
    CdnDeployment,
    DeploymentConfig,
    attach_cdn,
)
from repro.cdn.frontend import FrontEnd, nearest_frontends
from repro.cdn.network import CdnNetwork, ServedPath

__all__ = [
    "AnycastLayer",
    "BackboneRoute",
    "CascadeResult",
    "CascadeStep",
    "CdnBackbone",
    "FastRouteBalancer",
    "FastRouteResult",
    "LayeredAnycastNetwork",
    "ShedDecision",
    "WithdrawalSimulator",
    "default_layers",
    "frontend_loads",
    "CdnCatalogEntry",
    "CdnDeployment",
    "CdnNetwork",
    "DEFAULT_ANYCAST_PREFIX",
    "DEFAULT_FRONTEND_METROS",
    "DEFAULT_UNICAST_POOL",
    "DeploymentConfig",
    "FrontEnd",
    "ServedPath",
    "anycast_cdns",
    "attach_cdn",
    "catalog",
    "nearest_frontends",
    "non_outliers",
]
