"""CI performance smoke test for the measurement engines.

Runs one small campaign through both engines on the same host and fails
(exit code 1) if the vectorized engine's serial beacon throughput is not
at least ``--min-speedup`` times the reference engine's.  The threshold
is deliberately lower than the benchmark's recorded headline number
(``benchmarks/out/pipeline_performance.txt``) so shared CI runners don't
flake, while still catching any change that de-vectorizes the hot path.

Also asserts the vectorized engine's correctness contract: a serial run
and a 2-worker sharded run produce bit-identical datasets (same
``StudyDataset.digest()``).

Usage::

    PYTHONPATH=src python tools/perf_smoke.py [--min-speedup 3.0]
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.clients.population import ClientPopulationConfig
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig


def _timed_serial(scenario: Scenario, engine: str):
    """Run one serial campaign; timings come from its telemetry snapshot."""
    runner = CampaignRunner(scenario, CampaignConfig(engine=engine))
    dataset = runner.run()
    snapshot = runner.telemetry.snapshot()
    seconds = snapshot.gauges["campaign.wall_seconds"]["value"]
    rate = snapshot.counters["campaign.beacons_total"] / seconds
    return dataset, rate, seconds, snapshot


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--prefixes", type=int, default=200)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required vectorized/reference beacons-per-second ratio",
    )
    args = parser.parse_args(argv)

    scenario = Scenario.build(
        ScenarioConfig(
            seed=args.seed,
            population=ClientPopulationConfig(prefix_count=args.prefixes),
            calendar=SimulationCalendar(num_days=args.days),
        )
    )

    _, ref_rate, ref_seconds, ref_snapshot = _timed_serial(
        scenario, "reference"
    )
    vec_dataset, vec_rate, vec_seconds, vec_snapshot = _timed_serial(
        scenario, "vectorized"
    )
    speedup = vec_rate / ref_rate

    sharded_runner = ParallelCampaignRunner(
        scenario, CampaignConfig(engine="vectorized"), workers=2
    )
    sharded = sharded_runner.run()
    if sharded.digest() != vec_dataset.digest():
        print("FAIL: vectorized serial and 2-worker digests diverged")
        return 1
    sharded_counters = sharded_runner.telemetry.snapshot().counters
    for name in ("campaign.beacons_total", "campaign.measurements_total"):
        if sharded_counters[name] != vec_snapshot.counters[name]:
            print(
                f"FAIL: merged 2-worker {name} "
                f"({sharded_counters[name]:,.0f}) != serial "
                f"({vec_snapshot.counters[name]:,.0f})"
            )
            return 1

    print(
        f"perf smoke ({args.prefixes} /24s x {args.days} days, "
        f"seed {args.seed}):"
    )
    print(f"  reference:  {ref_seconds:6.2f}s  ({ref_rate:9,.0f} beacons/s)")
    print(f"  vectorized: {vec_seconds:6.2f}s  ({vec_rate:9,.0f} beacons/s)")
    for label, snapshot in (
        ("reference", ref_snapshot), ("vectorized", vec_snapshot)
    ):
        phases = ", ".join(
            f"{path.rsplit('/', 1)[-1]}={record.seconds:.2f}s"
            for path, record in snapshot.span_children("campaign/day")
        )
        print(f"  {label} day phases: {phases}")
    print(f"  speedup: {speedup:.2f}x (required >= {args.min_speedup:.1f}x)")
    print("  vectorized serial == 2-worker digest: ok")
    print("  vectorized serial == 2-worker merged telemetry counters: ok")

    if speedup < args.min_speedup:
        print(
            f"FAIL: vectorized engine only {speedup:.2f}x over reference "
            f"(required >= {args.min_speedup:.1f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
