"""The study dataset: everything a month of measurement produced.

Analyses (and the predictor) consume this container rather than raw logs,
mirroring how the paper's backend storage fed its analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.clients.population import ClientPrefix
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.logs import PassiveLog
from repro.simulation.clock import SimulationCalendar


@dataclass
class StudyDataset:
    """Aggregated outputs of a measurement campaign.

    Attributes:
        calendar: The days the campaign covered.
        clients: The client population measured.
        ecs_aggregates: day → (client /24, target) → latency digest.
        ldns_aggregates: day → (LDNS id, target) → latency digest.
        request_diffs: Per-beacon anycast − best-unicast rows (Fig 3).
        passive: Production-traffic front-end counts (Figs 4, 7, 8).
        beacon_count: Total beacon executions.
        measurement_count: Total joined measurements.
    """

    calendar: SimulationCalendar
    clients: Tuple[ClientPrefix, ...]
    ecs_aggregates: GroupedDailyAggregates
    ldns_aggregates: GroupedDailyAggregates
    request_diffs: RequestDiffLog
    passive: PassiveLog
    beacon_count: int = 0
    measurement_count: int = 0
    _index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {
                client.key: i for i, client in enumerate(self.clients)
            }

    def client_by_key(self, client_key: str) -> ClientPrefix:
        """Client record for a /24 key."""
        return self.clients[self._index[client_key]]

    def client_by_index(self, index: int) -> ClientPrefix:
        """Client record by packed index (as used in request_diffs)."""
        return self.clients[index]

    def volume_weight(self, client_key: str) -> float:
        """Query-volume weight of a /24 (its mean daily queries)."""
        return self.client_by_key(client_key).daily_queries
