#!/usr/bin/env python3
"""Hybrid anycast + DNS redirection (§6's closing proposal).

Compares three operating points on the same campaign data:

* pure anycast (the production default),
* always-predict (redirect every group the predictor maps off anycast),
* hybrid (redirect only groups with a predicted gain >= 10 ms, capped).

For each, reports the query-weighted fraction of clients improved/worsened
on the evaluation day and the size of the DNS mapping that must be
operated — the trade-off the hybrid is designed around.

Run:
    python examples/hybrid_deployment.py
"""

from repro import AnycastStudy, ScenarioConfig
from repro.clients.population import ClientPopulationConfig
from repro.core.hybrid import HybridConfig, HybridRedirector
from repro.core.predictor import HistoryBasedPredictor
from repro.dns.authoritative import ANYCAST_TARGET
from repro.simulation.clock import SimulationCalendar


def evaluate_mapping(dataset, mapping, eval_day, min_samples=5):
    """Weighted improved/worse fractions of a group->target mapping."""
    improved = worse = unchanged = 0.0
    for client in dataset.clients:
        weight = client.daily_queries
        target = mapping.get(client.key, ANYCAST_TARGET)
        if target == ANYCAST_TARGET:
            unchanged += weight
            continue
        anycast = dataset.ecs_aggregates.digest(
            eval_day, client.key, ANYCAST_TARGET
        )
        chosen = dataset.ecs_aggregates.digest(eval_day, client.key, target)
        if (
            anycast is None or chosen is None
            or anycast.count < min_samples or chosen.count < min_samples
        ):
            unchanged += weight
            continue
        delta = anycast.median() - chosen.median()
        if delta >= 1.0:
            improved += weight
        elif delta <= -1.0:
            worse += weight
        else:
            unchanged += weight
    total = improved + worse + unchanged
    return improved / total, worse / total


def main() -> None:
    config = ScenarioConfig(
        seed=2015,
        population=ClientPopulationConfig(prefix_count=400),
        calendar=SimulationCalendar(num_days=6),
    )
    study = AnycastStudy(config)
    dataset = study.dataset
    train_day = dataset.calendar.num_days - 2
    eval_day = train_day + 1
    aggregates = dataset.ecs_aggregates

    predictor = HistoryBasedPredictor()
    always_mapping = predictor.mapping_for_day(aggregates, train_day)

    hybrid = HybridRedirector(HybridConfig(min_predicted_gain_ms=10.0))
    hybrid_mapping = {
        group: p.target_id
        for group, p in hybrid.select_redirections(aggregates, train_day).items()
    }

    schemes = [
        ("pure anycast", {}),
        ("always-predict", always_mapping),
        ("hybrid (>=10ms)", hybrid_mapping),
    ]
    print(
        f"{'scheme':16s} {'mappings':>9s} {'improved':>10s} {'worse':>8s}"
    )
    for name, mapping in schemes:
        improved, worse = evaluate_mapping(dataset, mapping, eval_day)
        print(
            f"{name:16s} {len(mapping):9d} {improved:9.1%} {worse:7.1%}"
        )

    print(
        "\nThe hybrid keeps most of the win at a fraction of the DNS "
        "mappings — the scalability argument the paper closes §6 with."
    )


if __name__ == "__main__":
    main()
