"""A RIPE-Atlas-like probe network for routing case studies.

§5 of the paper: "we used the RIPE Atlas [2] testbed, a network of over
8000 probes predominantly hosted in home networks.  We issued traceroutes
from Atlas probes hosted within the same ISP-metro area pairs where we
have observed clients with poor performance."

This module provides the same capability over the simulator: a probe
population hosted inside access ISPs, addressable by (ISP, metro) or by
metro, issuing traceroutes toward the CDN's anycast or unicast prefixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, MeasurementError
from repro.cdn.network import CdnNetwork
from repro.net.topology import AsRole, Topology
from repro.net.traceroute import Traceroute, trace_route


@dataclass(frozen=True)
class Probe:
    """One vantage point: a host inside an access ISP at a metro."""

    probe_id: str
    asn: int
    metro_code: str


class ProbeNetwork:
    """Vantage points scattered across the access ISPs of a topology.

    Args:
        coverage: Probability that a given (access ISP, metro) pair hosts
            a probe — Atlas covers many but not all eyeball networks.
        seed: Placement randomness.
    """

    def __init__(
        self,
        topology: Topology,
        coverage: float = 0.7,
        seed: int = 0,
    ) -> None:
        if not 0.0 < coverage <= 1.0:
            raise ConfigurationError("coverage must be in (0, 1]")
        self._topology = topology
        rng = random.Random(seed)
        self._probes: Dict[str, Probe] = {}
        self._by_pair: Dict[Tuple[int, str], str] = {}
        self._by_metro: Dict[str, List[str]] = {}
        counter = 0
        for access in sorted(
            topology.ases_with_role(AsRole.ACCESS), key=lambda a: a.asn
        ):
            for metro_code in sorted(access.pop_metros):
                if rng.random() >= coverage:
                    continue
                probe = Probe(
                    probe_id=f"probe-{counter:05d}",
                    asn=access.asn,
                    metro_code=metro_code,
                )
                counter += 1
                self._probes[probe.probe_id] = probe
                self._by_pair[(access.asn, metro_code)] = probe.probe_id
                self._by_metro.setdefault(metro_code, []).append(
                    probe.probe_id
                )

    def __len__(self) -> int:
        return len(self._probes)

    def __iter__(self) -> Iterator[Probe]:
        return iter(self._probes.values())

    def get(self, probe_id: str) -> Probe:
        """Probe by id."""
        try:
            return self._probes[probe_id]
        except KeyError:
            raise MeasurementError(f"unknown probe {probe_id!r}") from None

    def probe_for(self, asn: int, metro_code: str) -> Optional[Probe]:
        """The probe hosted at an (ISP, metro) pair, if any — the lookup
        the §5 workflow starts from."""
        probe_id = self._by_pair.get((asn, metro_code))
        return self._probes[probe_id] if probe_id else None

    def probes_in(self, metro_code: str) -> Tuple[Probe, ...]:
        """All probes in a metro, across ISPs."""
        return tuple(
            self._probes[pid] for pid in self._by_metro.get(metro_code, ())
        )

    def traceroute_anycast(
        self, probe: Probe, network: CdnNetwork
    ) -> Traceroute:
        """Traceroute from a probe toward the CDN's anycast prefix."""
        return trace_route(
            self._topology, network.anycast_rib, probe.asn, probe.metro_code
        )

    def traceroute_unicast(
        self, probe: Probe, network: CdnNetwork, frontend_id: str
    ) -> Traceroute:
        """Traceroute from a probe toward one front-end's unicast prefix."""
        return trace_route(
            self._topology,
            network.unicast_rib(frontend_id),
            probe.asn,
            probe.metro_code,
        )

    def investigate(
        self, network: CdnNetwork, asn: int, metro_code: str
    ) -> Optional[Tuple[Traceroute, Traceroute]]:
        """§5's two-traceroute diagnosis for one (ISP, metro) complaint.

        Returns the anycast traceroute and the traceroute to the probe's
        nearest live front-end, or ``None`` when no probe covers the pair.
        """
        probe = self.probe_for(asn, metro_code)
        if probe is None:
            return None
        anycast = self.traceroute_anycast(probe, network)
        location = self._topology.metro_db.get(metro_code).location
        nearest = network.nearest_frontends(location, 1)[0]
        unicast = self.traceroute_unicast(probe, network, nearest.frontend_id)
        return anycast, unicast
