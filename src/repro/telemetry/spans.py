"""Lightweight span timers: where a run's wall-clock actually goes.

A *span* is a named, timed region entered with ``with tracker.span(
"campaign.day", index=day):``.  Spans nest: the tracker keeps a stack,
and a span's *path* is its ancestors' names joined with ``/`` (e.g.
``campaign/day/beacons``), so the accumulated records form a phase tree
without any explicit parent bookkeeping at the call sites.

Records are aggregates, not traces: per path, the tracker keeps entry
count and total seconds (plus optional per-``index`` second totals, used
for per-day breakdowns).  That makes them cheap — two ``perf_counter``
calls and a dict update per span — and *mergeable*: two shards' records
combine by adding counts and seconds per path, order-insensitively.
Merged trees therefore read as CPU-seconds, exactly like the summed
per-day times :class:`repro.simulation.campaign.CampaignStats` reports.

Spans are exception-safe: the timer stops and the stack pops in a
``finally`` block, so a span that raises still records its elapsed time
and never corrupts the nesting of its ancestors.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Separator between nested span names in a record path.
PATH_SEPARATOR = "/"


@dataclass
class SpanRecord:
    """Accumulated time for one span path.

    Attributes:
        count: Times the span was entered.
        seconds: Total seconds spent inside (including nested spans).
        indexed: Optional per-index second totals (e.g. per day), keyed
            by the stringified ``index`` for JSON friendliness.
    """

    count: int = 0
    seconds: float = 0.0
    indexed: Dict[str, float] = field(default_factory=dict)

    def add(self, seconds: float, index: Optional[object] = None) -> None:
        """Record one completed span entry."""
        self.count += 1
        self.seconds += seconds
        if index is not None:
            key = str(index)
            self.indexed[key] = self.indexed.get(key, 0.0) + seconds

    def absorb(self, other: "SpanRecord") -> None:
        """Fold another record for the same path into this one."""
        self.count += other.count
        self.seconds += other.seconds
        for key, seconds in other.indexed.items():
            self.indexed[key] = self.indexed.get(key, 0.0) + seconds


class SpanTracker:
    """Accumulates nested span timings into path-keyed records.

    When :attr:`trace` is set (the owning :class:`~repro.telemetry.core
    .Telemetry` installs its :class:`~repro.telemetry.trace.TraceLog`),
    every completed span additionally emits a ``cat="phase"`` complete
    slice onto the trace timeline — the aggregate records and the
    timeline stay two views of the same ``perf_counter`` measurements.
    """

    def __init__(self) -> None:
        self._records: Dict[str, SpanRecord] = {}
        # The nesting stack lives in a ContextVar, so concurrent asyncio
        # tasks (the live service's producer/consumer pair) and threads
        # each see their own stack: a span entered by one task can never
        # splice itself into another task's path or pop another task's
        # frame.  Records still accumulate into the shared dict — the
        # isolation is only of the *nesting*, which is exactly the part
        # a shared list corrupts under interleaving.
        self._stack: contextvars.ContextVar[Tuple[str, ...]] = (
            contextvars.ContextVar("span_stack", default=())
        )
        self.trace = None  # Optional[repro.telemetry.trace.TraceLog]

    @property
    def records(self) -> Dict[str, SpanRecord]:
        """The accumulated records, keyed by span path."""
        return self._records

    @property
    def depth(self) -> int:
        """Current nesting depth (0 outside any span in this context)."""
        return len(self._stack.get())

    @contextmanager
    def span(
        self, name: str, index: Optional[object] = None
    ) -> Iterator[None]:
        """Time a region under ``name``, nested below the current span."""
        stack = self._stack.get() + (name,)
        token = self._stack.set(stack)
        path = PATH_SEPARATOR.join(stack)
        trace_start = None if self.trace is None else self.trace.now_us()
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._stack.reset(token)
            record = self._records.get(path)
            if record is None:
                record = self._records[path] = SpanRecord()
            record.add(elapsed, index)
            if trace_start is not None:
                args = {} if index is None else {"index": index}
                self.trace.complete(
                    path,
                    "phase",
                    ts_us=trace_start,
                    dur_us=round(elapsed * 1e6),
                    **args,
                )

    def record_seconds(
        self, path: str, seconds: float, index: Optional[object] = None
    ) -> None:
        """Record an externally-timed region directly (no nesting)."""
        record = self._records.get(path)
        if record is None:
            record = self._records[path] = SpanRecord()
        record.add(seconds, index)
        if self.trace is not None:
            args = {} if index is None else {"index": index}
            dur_us = max(0, round(seconds * 1e6))
            self.trace.complete(
                path,
                "phase",
                ts_us=max(0, self.trace.now_us() - dur_us),
                dur_us=dur_us,
                **args,
            )

    def absorb(self, records: Dict[str, SpanRecord]) -> None:
        """Merge another tracker's (or snapshot's) records into this one."""
        for path, other in records.items():
            record = self._records.get(path)
            if record is None:
                record = self._records[path] = SpanRecord()
            record.absorb(other)

    # ------------------------------------------------------------------

    def children_of(self, path: str) -> List[Tuple[str, SpanRecord]]:
        """Direct children of a span path, insertion-ordered."""
        prefix = path + PATH_SEPARATOR
        return [
            (candidate, record)
            for candidate, record in self._records.items()
            if candidate.startswith(prefix)
            and PATH_SEPARATOR not in candidate[len(prefix):]
        ]

    def roots(self) -> List[Tuple[str, SpanRecord]]:
        """Top-level span paths, insertion-ordered."""
        return [
            (path, record)
            for path, record in self._records.items()
            if PATH_SEPARATOR not in path
        ]

    def coverage(self, path: str) -> float:
        """Fraction of a span's time accounted for by its children.

        1.0 means the phase tree fully explains where the span's time
        went; a low value flags untimed gaps.  Returns 1.0 for a span
        with no time (nothing to explain) and 0.0 for an unknown path.
        """
        record = self._records.get(path)
        if record is None:
            return 0.0
        if record.seconds <= 0.0:
            return 1.0
        child_seconds = sum(
            child.seconds for _, child in self.children_of(path)
        )
        return min(child_seconds / record.seconds, 1.0)
