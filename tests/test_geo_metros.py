"""Tests for the metro database (repro.geo.metros)."""

import pytest

from repro.errors import GeoError
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.metros import Metro, MetroDatabase, builtin_metros
from repro.geo.regions import Region


class TestBuiltinTable:
    def test_has_many_metros(self):
        assert len(builtin_metros()) >= 100

    def test_codes_unique(self):
        codes = [m.code for m in builtin_metros()]
        assert len(codes) == len(set(codes))

    def test_every_region_represented(self):
        regions = {m.region for m in builtin_metros()}
        assert regions == set(Region)

    def test_populations_positive(self):
        assert all(m.population_m > 0 for m in builtin_metros())

    @pytest.mark.parametrize(
        "code,country", [("nyc", "US"), ("lon", "GB"), ("tyo", "JP"), ("sao", "BR")]
    )
    def test_known_entries(self, code, country):
        db = MetroDatabase()
        assert db.get(code).country == country

    def test_metro_distance_method(self):
        db = MetroDatabase()
        nyc, lon = db.get("nyc"), db.get("lon")
        assert nyc.distance_km(lon) == pytest.approx(5570, abs=30)


class TestMetroDatabase:
    def test_default_uses_builtin(self):
        assert len(MetroDatabase()) == len(builtin_metros())

    def test_empty_rejected(self):
        with pytest.raises(GeoError):
            MetroDatabase([])

    def test_duplicate_code_rejected(self):
        metro = builtin_metros()[0]
        with pytest.raises(GeoError, match="duplicate"):
            MetroDatabase([metro, metro])

    def test_get_unknown(self):
        with pytest.raises(GeoError, match="unknown metro"):
            MetroDatabase().get("zzz")

    def test_contains(self):
        db = MetroDatabase()
        assert "nyc" in db
        assert "zzz" not in db

    def test_codes_order_matches_iteration(self):
        db = MetroDatabase()
        assert list(db.codes) == [m.code for m in db]

    def test_in_region(self):
        db = MetroDatabase()
        europe = db.in_region(Region.EUROPE)
        assert all(m.region == Region.EUROPE for m in europe)
        assert any(m.code == "lon" for m in europe)

    def test_nearest_single(self):
        db = MetroDatabase()
        # A point in Manhattan should resolve to NYC.
        assert db.nearest_metro(GeoPoint(40.78, -73.97)).code == "nyc"

    def test_nearest_ordering(self):
        db = MetroDatabase()
        point = db.get("lon").location
        nearest = db.nearest(point, count=5)
        distances = [haversine_km(m.location, point) for m in nearest]
        assert distances == sorted(distances)
        assert nearest[0].code == "lon"

    def test_nearest_count_validation(self):
        with pytest.raises(GeoError):
            MetroDatabase().nearest(GeoPoint(0, 0), count=0)

    def test_within_km(self):
        db = MetroDatabase()
        point = db.get("nyc").location
        nearby = db.within_km(point, 160.0)
        codes = {m.code for m in nearby}
        assert "nyc" in codes
        assert "phl" in codes  # Philadelphia ~130 km from NYC
        assert "lax" not in codes

    def test_within_km_negative_radius(self):
        with pytest.raises(GeoError):
            MetroDatabase().within_km(GeoPoint(0, 0), -1.0)

    def test_total_population(self):
        db = MetroDatabase()
        assert db.total_population_m() == pytest.approx(
            sum(m.population_m for m in db)
        )
