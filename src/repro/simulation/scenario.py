"""Scenario: everything wired together, deterministically, from one seed.

A :class:`Scenario` is the simulated counterpart of the paper's
measurement setting: a synthetic Internet, the CDN attached to it, a
client population with resolvers and geolocation, the latency model, and
the dynamic processes (churn, episodes) over a calendar.  Campaigns
(:mod:`repro.simulation.campaign`) run on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.cdn.deployment import CdnDeployment, DeploymentConfig, attach_cdn
from repro.cdn.network import CdnNetwork
from repro.clients.population import (
    ClientPopulationConfig,
    ClientPrefix,
    generate_population,
)
from repro.clients.workload import WorkloadConfig, WorkloadModel
from repro.dns.ldns import LdnsConfig, LdnsDirectory
from repro.geo.geolocation import GeolocationDatabase
from repro.geo.metros import MetroDatabase
from repro.latency.model import LatencyConfig, LatencyModel
from repro.net.topology import TopologyBuilder, TopologyConfig, populate_base_internet
from repro.rand import derive_seed
from repro.simulation.churn import ChurnConfig, RouteChurnModel
from repro.simulation.clock import SimulationCalendar
from repro.simulation.episodes import EpisodeConfig, PoorPathEpisodeModel


@dataclass(frozen=True)
class ScenarioConfig:
    """Every knob of a full study, with paper-calibrated defaults.

    The ``seed`` derives independent per-subsystem seeds, so changing one
    subsystem's randomness never perturbs the others.
    """

    seed: int = 2015
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    deployment: DeploymentConfig = field(default_factory=DeploymentConfig)
    ldns: LdnsConfig = field(default_factory=LdnsConfig)
    population: ClientPopulationConfig = field(
        default_factory=ClientPopulationConfig
    )
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    episodes: EpisodeConfig = field(default_factory=EpisodeConfig)
    calendar: SimulationCalendar = field(default_factory=SimulationCalendar)
    geolocation_error_fraction: float = 0.02
    #: Default worker-process count for campaigns over this scenario.
    #: Results are bit-identical for any value; >1 shards the client
    #: population across processes (see repro.simulation.parallel).
    workers: int = 1
    #: Default measurement engine for campaigns over this scenario:
    #: ``"reference"`` (scalar, one draw per sample — the oracle),
    #: ``"vectorized"`` (numpy-batched per (client, day) block, several
    #: times faster), or ``"matrix"`` (whole-day cross-client batches,
    #: fastest).  All are deterministic per seed and bit-identical
    #: across worker counts; ``"vectorized"`` and ``"matrix"`` share
    #: counter-based draw streams and produce bit-identical datasets to
    #: each other, while ``"reference"`` consumes randomness differently
    #: and matches only within itself.
    engine: str = "reference"

    def __post_init__(self) -> None:
        if not 0.0 <= self.geolocation_error_fraction <= 1.0:
            raise ConfigurationError(
                "geolocation_error_fraction must be in [0, 1]"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.engine not in ("reference", "vectorized", "matrix"):
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected 'reference', "
                "'vectorized', or 'matrix'"
            )

    @classmethod
    def paper_scale(cls, seed: int = 2015) -> "ScenarioConfig":
        """The scale the benchmarks reproduce the paper at:
        1500 client /24s over the 28 days of April 2015."""
        return cls(
            seed=seed,
            population=ClientPopulationConfig(prefix_count=1500),
            calendar=SimulationCalendar(num_days=28),
        )

    @classmethod
    def laptop_scale(cls, seed: int = 2015) -> "ScenarioConfig":
        """A sub-minute configuration for exploration and examples:
        400 client /24s over one simulated week."""
        return cls(
            seed=seed,
            population=ClientPopulationConfig(prefix_count=400),
            calendar=SimulationCalendar(num_days=7),
        )

    @classmethod
    def smoke_scale(cls, seed: int = 2015) -> "ScenarioConfig":
        """A seconds-long configuration for tests and CI smoke runs."""
        return cls(
            seed=seed,
            population=ClientPopulationConfig(prefix_count=100),
            calendar=SimulationCalendar(num_days=3),
        )


class Scenario:
    """A fully built study environment.

    Use :meth:`build`; the constructor takes prebuilt parts (for tests
    that want to substitute one).
    """

    def __init__(
        self,
        config: ScenarioConfig,
        network: CdnNetwork,
        deployment: CdnDeployment,
        clients: Tuple[ClientPrefix, ...],
        ldns_directory: LdnsDirectory,
        geolocation: GeolocationDatabase,
        latency_model: LatencyModel,
        workload_model: WorkloadModel,
    ) -> None:
        if not clients:
            raise ConfigurationError("a scenario needs at least one client")
        self.config = config
        self.network = network
        self.deployment = deployment
        self.clients = clients
        self.ldns_directory = ldns_directory
        self.geolocation = geolocation
        self.latency_model = latency_model
        self.workload_model = workload_model
        self.calendar = config.calendar
        self._client_index = {
            client.key: index for index, client in enumerate(clients)
        }

    @classmethod
    def build(cls, config: Optional[ScenarioConfig] = None) -> "Scenario":
        """Construct the whole environment from a configuration.

        Build order matters: base Internet, then the CDN attaches (so its
        peering sees all ISPs), then resolvers, then clients (who need
        resolvers assigned and geolocation registered).
        """
        cfg = config or ScenarioConfig()
        metro_db = MetroDatabase()
        builder = TopologyBuilder(metro_db)
        populate_base_internet(
            builder, cfg.topology, seed=derive_seed(cfg.seed, "topology")
        )
        deployment = attach_cdn(
            builder, cfg.deployment, seed=derive_seed(cfg.seed, "cdn")
        )
        topology = builder.build()
        network = CdnNetwork(topology, deployment)

        geolocation = GeolocationDatabase(
            error_fraction=cfg.geolocation_error_fraction,
            seed=derive_seed(cfg.seed, "geolocation"),
        )
        ldns_directory = LdnsDirectory(
            topology, cfg.ldns, seed=derive_seed(cfg.seed, "ldns")
        )
        for server in ldns_directory:
            geolocation.register(server.ldns_id, server.location)

        clients = generate_population(
            topology,
            ldns_directory,
            geolocation,
            cfg.population,
            seed=derive_seed(cfg.seed, "population"),
        )
        return cls(
            config=cfg,
            network=network,
            deployment=deployment,
            clients=clients,
            ldns_directory=ldns_directory,
            geolocation=geolocation,
            latency_model=LatencyModel(cfg.latency),
            workload_model=WorkloadModel(cfg.workload),
        )

    # ------------------------------------------------------------------

    @property
    def topology(self):
        """The frozen topology (via the CDN network)."""
        return self.network.topology

    @property
    def metro_db(self) -> MetroDatabase:
        """The metro database."""
        return self.network.topology.metro_db

    def client_index(self, client_key: str) -> int:
        """Stable integer index of a client /24 (for packed logs)."""
        try:
            return self._client_index[client_key]
        except KeyError:
            raise ConfigurationError(f"unknown client {client_key!r}") from None

    def client_by_key(self, client_key: str) -> ClientPrefix:
        """Client record by /24 key."""
        return self.clients[self.client_index(client_key)]

    def new_churn_model(self) -> RouteChurnModel:
        """A fresh churn process (deterministic for the scenario seed)."""
        return RouteChurnModel(
            self.clients,
            self.network,
            self.calendar,
            self.config.churn,
            seed=derive_seed(self.config.seed, "churn"),
        )

    def new_episode_model(self) -> PoorPathEpisodeModel:
        """A fresh poor-path episode process."""
        return PoorPathEpisodeModel(
            self.clients,
            self.calendar,
            self.config.episodes,
            seed=derive_seed(self.config.seed, "episodes"),
        )
