"""RTT model: geography plus noise.

The paper's beacon measures HTTP fetch latency between a client and a
front-end.  We synthesize that latency from the simulated path:

``rtt = propagation(path) + per-hop processing + last-mile access delay
+ jitter (+ any episode inflation the campaign layer adds)``

* Propagation is round-trip great-circle distance over the walked metro
  path at fiber speed, times a circuitousness factor (fiber does not follow
  geodesics).
* The backbone leg gets its own stretch factor (private backbones are
  engineered closer to geodesic than the public Internet).
* Jitter is lognormal — deliberately heavy-tailed, because §6 of the paper
  leans on the empirical fact that the 25th percentile and median of a
  latency distribution are stable while the 75th+ percentiles are noisy.
  :func:`repro.latency.sampling.percentile_stability_profile` verifies the
  model reproduces exactly that.

Each stochastic term has a scalar sampler (``random.Random``, the
reference engine's oracle path) and, where the campaign hot loop needs
it, a batched sampler drawing whole numpy arrays from a
``numpy.random.Generator`` (the vectorized engine).  The batched forms
sample the *same distributions*; they do not reproduce the scalar
streams draw-for-draw.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LatencyConfig:
    """Parameters of the RTT model.

    Attributes:
        fiber_km_per_ms: One-way signal speed in fiber (~200 km/ms).
        path_stretch: Circuitousness of interdomain fiber paths relative to
            great-circle distance.
        backbone_stretch: Circuitousness of the CDN's private backbone.
        per_hop_ms: Round-trip processing delay added per AS-level hop.
        jitter_median_ms: Median of the lognormal jitter term.
        jitter_sigma: Shape of the jitter lognormal; larger values make the
            high percentiles noisier (the §6 property).
        spike_probability: Chance a single measurement hits a latency
            spike (loss/retransmission, scheduling stalls) — web
            measurements have a heavy per-request tail even on good paths,
            which is what puts requests in Fig 3's far tail without moving
            the per-/24 medians of Fig 5.
        spike_median_ms: Median size of a spike.
        spike_sigma: Lognormal shape of spike sizes.
        daily_variation_probability: Chance a given (client, unicast path)
            pair is running elevated on a given day — congestion varies
            day to day, so a path's whole latency distribution shifts.
            This is what makes yesterday's prediction occasionally wrong
            today (Fig 9's left tail) and creates one-day poor paths
            (Fig 6).
        anycast_daily_variation_probability: Same, for the anycast path.
            Lower than the unicast test paths': production anycast rides
            the CDN's engineered peering, while the per-front-end test
            prefixes take whatever single-point announcement BGP gives
            them.
        daily_variation_median_ms: Median elevation when it occurs.
        daily_variation_sigma: Lognormal shape of the elevation.
        static_offset_probability: Chance a (client, unicast path) pair
            carries a *persistent* quality offset for the whole study —
            congested peering, circuitous fiber, under-provisioned
            segments.  Distance alone does not determine latency; this is
            why the geographically closest front-end is not always the
            fastest (the spread between Fig 1's candidate-set lines).
        anycast_static_offset_probability: Same, for the anycast path —
            persistent, *predictable* anycast badness is precisely what
            §6's history-based scheme exploits.
        static_offset_median_ms: Median persistent offset when present.
        static_offset_sigma: Lognormal shape of the persistent offset.
        min_rtt_ms: Floor on any produced RTT.
        queue_delay_scale_ms: Scale of the convex queueing-delay term a
            finite-capacity front-end adds as its utilization approaches
            1 (see :meth:`LatencyModel.queueing_delay_ms`).  Zero keeps
            the classic infinite-capacity model.
        queue_delay_cap_ms: Ceiling on the queueing term — a saturated
            front-end degrades to this plateau (timeouts and admission
            control bound real queues) instead of diverging.
    """

    fiber_km_per_ms: float = 200.0
    path_stretch: float = 1.3
    backbone_stretch: float = 1.15
    per_hop_ms: float = 0.4
    jitter_median_ms: float = 1.5
    jitter_sigma: float = 0.5
    spike_probability: float = 0.16
    spike_median_ms: float = 90.0
    spike_sigma: float = 1.0
    daily_variation_probability: float = 0.35
    anycast_daily_variation_probability: float = 0.09
    daily_variation_median_ms: float = 12.0
    daily_variation_sigma: float = 1.0
    static_offset_probability: float = 0.30
    anycast_static_offset_probability: float = 0.10
    static_offset_median_ms: float = 8.0
    static_offset_sigma: float = 1.0
    min_rtt_ms: float = 1.0
    queue_delay_scale_ms: float = 6.0
    queue_delay_cap_ms: float = 400.0

    def __post_init__(self) -> None:
        if self.fiber_km_per_ms <= 0:
            raise ConfigurationError("fiber_km_per_ms must be positive")
        for name in ("path_stretch", "backbone_stretch"):
            if getattr(self, name) < 1.0:
                raise ConfigurationError(f"{name} must be >= 1.0")
        for name in ("per_hop_ms", "jitter_median_ms", "min_rtt_ms",
                     "spike_median_ms"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        for name in ("jitter_sigma", "spike_sigma", "daily_variation_sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if not 0.0 <= self.spike_probability < 1.0:
            raise ConfigurationError("spike_probability must be in [0, 1)")
        for name in (
            "daily_variation_probability",
            "anycast_daily_variation_probability",
            "static_offset_probability",
            "anycast_static_offset_probability",
        ):
            if not 0.0 <= getattr(self, name) < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1)")
        for name in ("daily_variation_median_ms", "static_offset_median_ms"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.static_offset_sigma < 0:
            raise ConfigurationError(
                "static_offset_sigma must be non-negative"
            )
        for name in ("queue_delay_scale_ms", "queue_delay_cap_ms"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


class LatencyModel:
    """Turns a service path into sampled RTT measurements."""

    def __init__(self, config: LatencyConfig = LatencyConfig()) -> None:
        self._config = config

    @property
    def config(self) -> LatencyConfig:
        """The model parameters."""
        return self._config

    def baseline_rtt_ms(
        self, path_km: float, backbone_km: float, as_hops: int,
        access_delay_ms: float,
    ) -> float:
        """Deterministic RTT floor for a path: everything but jitter.

        Args:
            path_km: Interdomain great-circle path length (one way).
            backbone_km: CDN-internal leg length (one way).
            as_hops: AS-level hops traversed.
            access_delay_ms: The client's fixed last-mile delay.
        """
        if path_km < 0 or backbone_km < 0:
            raise ConfigurationError("path distances must be non-negative")
        if as_hops < 1:
            raise ConfigurationError("a path has at least one AS hop")
        if access_delay_ms < 0:
            raise ConfigurationError("access_delay_ms must be non-negative")
        cfg = self._config
        one_way_km = path_km * cfg.path_stretch + backbone_km * cfg.backbone_stretch
        propagation = 2.0 * one_way_km / cfg.fiber_km_per_ms
        processing = cfg.per_hop_ms * as_hops
        return max(
            cfg.min_rtt_ms, propagation + processing + access_delay_ms
        )

    def queueing_delay_ms(self, utilization: float) -> float:
        """Deterministic queueing delay at a given front-end utilization.

        A convex M/M/1-flavored curve, ``scale * u^2 / (1 - u)``, capped
        at ``queue_delay_cap_ms``: negligible below ~70% utilization,
        steep as ``u -> 1``, and a bounded plateau at or beyond
        saturation (``u >= 1`` returns the cap).  Purely a function of
        utilization — the campaign layer computes one value per
        (front-end, day) and folds it into the affected baselines, so
        all engines stay bit-identical.
        """
        if utilization < 0:
            raise ConfigurationError("utilization must be non-negative")
        cfg = self._config
        if cfg.queue_delay_scale_ms == 0.0 or utilization == 0.0:
            return 0.0
        if utilization >= 1.0:
            return cfg.queue_delay_cap_ms
        delay = (
            cfg.queue_delay_scale_ms
            * utilization
            * utilization
            / (1.0 - utilization)
        )
        return min(delay, cfg.queue_delay_cap_ms)

    def sample_jitter_ms(self, rng: random.Random) -> float:
        """One jitter draw: lognormal body plus an occasional heavy spike."""
        cfg = self._config
        jitter = 0.0
        if cfg.jitter_median_ms > 0.0:
            jitter = rng.lognormvariate(
                math.log(cfg.jitter_median_ms), cfg.jitter_sigma
            )
        if cfg.spike_probability > 0.0 and rng.random() < cfg.spike_probability:
            jitter += rng.lognormvariate(
                math.log(cfg.spike_median_ms), cfg.spike_sigma
            )
        return jitter

    def sample_jitter_batch_ms(
        self,
        gen: np.random.Generator,
        shape: Union[int, Tuple[int, ...]],
    ) -> np.ndarray:
        """A batch of jitter draws — the vectorized form of
        :meth:`sample_jitter_ms`.

        Same distribution (lognormal body plus a Bernoulli-gated heavy
        spike), drawn as whole-array operations from a
        :class:`numpy.random.Generator`.  Spike magnitudes are drawn for
        every cell and zeroed where the spike mask is off, which is
        distributionally identical to the scalar path's draw-on-demand
        (the magnitude draw is independent of the gate) at a fraction of
        the per-sample cost.
        """
        cfg = self._config
        if cfg.jitter_median_ms > 0.0:
            jitter = gen.lognormal(
                math.log(cfg.jitter_median_ms), cfg.jitter_sigma, shape
            )
        else:
            jitter = np.zeros(shape)
        if cfg.spike_probability > 0.0:
            spiked = gen.random(shape) < cfg.spike_probability
            spikes = gen.lognormal(
                math.log(cfg.spike_median_ms), cfg.spike_sigma, shape
            )
            jitter = jitter + np.where(spiked, spikes, 0.0)
        return jitter

    def sample_daily_variation_batch_ms(
        self, gen: np.random.Generator, count: int, anycast: bool = False
    ) -> np.ndarray:
        """``count`` daily-variation draws — the vectorized form of
        :meth:`sample_daily_variation_ms`.

        One draw per (client, path) pair for the day: zero unless the
        Bernoulli elevation gate fires, else a lognormal elevation.  The
        vectorized engine draws one batch per (client, day) covering
        every path the day's beacons touch.
        """
        cfg = self._config
        probability = (
            cfg.anycast_daily_variation_probability
            if anycast
            else cfg.daily_variation_probability
        )
        if (
            count == 0
            or probability <= 0.0
            or cfg.daily_variation_median_ms == 0.0
        ):
            return np.zeros(count)
        elevated = gen.random(count) < probability
        magnitudes = gen.lognormal(
            math.log(cfg.daily_variation_median_ms),
            cfg.daily_variation_sigma,
            count,
        )
        return np.where(elevated, magnitudes, 0.0)

    def sample_daily_variation_ms(
        self, rng: random.Random, anycast: bool = False
    ) -> float:
        """The day's congestion elevation for one (client, path) pair.

        Zero most days; occasionally a lognormal elevation.  The campaign
        draws this once per (client, path, day) from a derived RNG so it
        is constant within the day and independent across days.

        Args:
            anycast: Use the anycast path's (lower) elevation probability.
        """
        cfg = self._config
        probability = (
            cfg.anycast_daily_variation_probability
            if anycast
            else cfg.daily_variation_probability
        )
        if (
            probability <= 0.0
            or rng.random() >= probability
            or cfg.daily_variation_median_ms == 0.0
        ):
            return 0.0
        return rng.lognormvariate(
            math.log(cfg.daily_variation_median_ms), cfg.daily_variation_sigma
        )

    def sample_static_offset_ms(
        self, rng: random.Random, anycast: bool = False
    ) -> float:
        """The persistent quality offset for one (client, path) pair.

        Drawn once per pair from a derived RNG by the campaign layer and
        folded into the path's baseline, so it shapes every measurement
        for the whole study — the predictable component §6 feeds on.

        Args:
            anycast: Use the anycast path's (lower) offset probability.
        """
        cfg = self._config
        probability = (
            cfg.anycast_static_offset_probability
            if anycast
            else cfg.static_offset_probability
        )
        if (
            probability <= 0.0
            or rng.random() >= probability
            or cfg.static_offset_median_ms == 0.0
        ):
            return 0.0
        return rng.lognormvariate(
            math.log(cfg.static_offset_median_ms), cfg.static_offset_sigma
        )

    def static_offset_from_seed(
        self, seed_value: int, anycast: bool = False
    ) -> float:
        """The persistent quality offset keyed by a derived seed.

        Equivalent in distribution to :meth:`sample_static_offset_ms`
        over ``random.Random(seed_value)``, but the occurrence test —
        the outcome for most (client, path) pairs — costs one splitmix64
        finalizer round on the seed instead of initializing a Mersenne
        Twister; the magnitude RNG is only built for the minority of
        paths that do carry an offset.  Campaign engines resolve every
        (client, path) baseline through this, so it sits on the
        path-cache warm-up critical path.
        """
        cfg = self._config
        probability = (
            cfg.anycast_static_offset_probability
            if anycast
            else cfg.static_offset_probability
        )
        if probability <= 0.0 or cfg.static_offset_median_ms == 0.0:
            return 0.0
        mask = 0xFFFFFFFFFFFFFFFF
        h = seed_value & mask
        h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & mask
        h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & mask
        h ^= h >> 31
        if (h >> 11) * 2.0**-53 >= probability:
            return 0.0
        return random.Random(seed_value).lognormvariate(
            math.log(cfg.static_offset_median_ms), cfg.static_offset_sigma
        )

    def sample_rtt_ms(
        self,
        path_km: float,
        backbone_km: float,
        as_hops: int,
        access_delay_ms: float,
        rng: random.Random,
        inflation_ms: float = 0.0,
    ) -> float:
        """One measured RTT: baseline + jitter + optional episode inflation.

        ``inflation_ms`` is how the campaign layer injects congestion or
        poor-path episodes without the model knowing about calendars.
        """
        if inflation_ms < 0:
            raise ConfigurationError("inflation_ms must be non-negative")
        baseline = self.baseline_rtt_ms(
            path_km, backbone_km, as_hops, access_delay_ms
        )
        return baseline + self.sample_jitter_ms(rng) + inflation_ms
