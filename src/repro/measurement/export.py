"""Persisting campaign datasets to disk and loading them back.

A paper-scale campaign takes minutes to run; analyses and ablations over
it take milliseconds.  These helpers serialize a
:class:`repro.simulation.dataset.StudyDataset` to a single JSON document
(latency samples packed as base64 arrays to keep the file compact) so a
campaign can be run once and analyzed many times — the same split the
paper's backend storage provided.
"""

from __future__ import annotations

import base64
import json
from array import array
from typing import Any, Dict, IO, List, Union

from repro.errors import MeasurementError
from repro.clients.population import ClientPrefix
from repro.geo.coords import GeoPoint
from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
)
from repro.measurement.logs import PassiveLog
from repro.telemetry import get_logger
from repro.net.ip import IPv4Prefix
from repro.simulation.clock import SimulationCalendar
from repro.simulation.dataset import StudyDataset

#: Format marker written into every export.
FORMAT_VERSION = 1

_log = get_logger("export")


def _pack_doubles(values) -> str:
    return base64.b64encode(array("d", values).tobytes()).decode("ascii")


def _unpack_doubles(text: str) -> array:
    packed = array("d")
    packed.frombytes(base64.b64decode(text.encode("ascii")))
    return packed


def _aggregates_to_obj(aggregates: GroupedDailyAggregates) -> Dict[str, Any]:
    days: Dict[str, Any] = {}
    for day in aggregates.days:
        rows: List[Any] = []
        for group, target_id, digest in aggregates.iter_day(day):
            rows.append([group, target_id, _pack_doubles(digest.values())])
        days[str(day)] = rows
    return {"grouping": aggregates.grouping, "days": days}


def _aggregates_from_obj(obj: Dict[str, Any]) -> GroupedDailyAggregates:
    aggregates = GroupedDailyAggregates(obj["grouping"])
    for day_text, rows in obj["days"].items():
        day = int(day_text)
        for group, target_id, packed in rows:
            digest = aggregates._days.setdefault(day, {}).setdefault(
                group, {}
            )
            digest[target_id] = LatencyDigest(_unpack_doubles(packed))
    return aggregates


def _passive_to_obj(passive: PassiveLog) -> Dict[str, Any]:
    return {
        str(day): {
            client_key: counts for client_key, counts in passive.iter_day(day)
        }
        for day in passive.days
    }


def _passive_from_obj(obj: Dict[str, Any]) -> PassiveLog:
    passive = PassiveLog()
    for day_text, clients in obj.items():
        day = int(day_text)
        for client_key, counts in clients.items():
            for frontend_id, count in counts.items():
                passive.record(day, client_key, frontend_id, int(count))
    return passive


def _diffs_to_obj(diffs: RequestDiffLog) -> Dict[str, Any]:
    return {
        "region_names": list(diffs.region_names),
        "day": _pack_doubles(float(x) for x in diffs._day),
        "client_index": _pack_doubles(float(x) for x in diffs._client_index),
        "region_code": _pack_doubles(float(x) for x in diffs._region_code),
        "anycast": _pack_doubles(diffs._anycast),
        "best_unicast": _pack_doubles(diffs._best_unicast),
    }


def _diffs_from_obj(obj: Dict[str, Any]) -> RequestDiffLog:
    diffs = RequestDiffLog()
    for name in obj["region_names"]:
        diffs.region_code(name)
    days = _unpack_doubles(obj["day"])
    clients = _unpack_doubles(obj["client_index"])
    regions = _unpack_doubles(obj["region_code"])
    anycast = _unpack_doubles(obj["anycast"])
    best = _unpack_doubles(obj["best_unicast"])
    names = obj["region_names"]
    for day, client, region, a, b in zip(days, clients, regions, anycast, best):
        diffs.observe(int(day), int(client), names[int(region)], a, b)
    return diffs


def _client_to_obj(client: ClientPrefix) -> Dict[str, Any]:
    return {
        "prefix": str(client.prefix),
        "asn": client.asn,
        "home_metro": client.home_metro,
        "lat": client.location.lat,
        "lon": client.location.lon,
        "access_delay_ms": client.access_delay_ms,
        "daily_queries": client.daily_queries,
        "ldns_id": client.ldns_id,
    }


def _client_from_obj(obj: Dict[str, Any]) -> ClientPrefix:
    return ClientPrefix(
        prefix=IPv4Prefix.parse(obj["prefix"]),
        asn=int(obj["asn"]),
        home_metro=obj["home_metro"],
        location=GeoPoint(obj["lat"], obj["lon"]),
        access_delay_ms=float(obj["access_delay_ms"]),
        daily_queries=float(obj["daily_queries"]),
        ldns_id=obj["ldns_id"],
    )


def dataset_to_json(dataset: StudyDataset) -> Dict[str, Any]:
    """Serialize a dataset to a JSON-compatible document."""
    return {
        "format_version": FORMAT_VERSION,
        "calendar": {
            "start": dataset.calendar.start.isoformat(),
            "num_days": dataset.calendar.num_days,
        },
        "clients": [_client_to_obj(c) for c in dataset.clients],
        "ecs_aggregates": _aggregates_to_obj(dataset.ecs_aggregates),
        "ldns_aggregates": _aggregates_to_obj(dataset.ldns_aggregates),
        "request_diffs": _diffs_to_obj(dataset.request_diffs),
        "passive": _passive_to_obj(dataset.passive),
        "beacon_count": dataset.beacon_count,
        "measurement_count": dataset.measurement_count,
        "covered_ranges": [
            [start, stop] for start, stop in (dataset.covered_ranges or ())
        ],
    }


def dataset_from_json(document: Dict[str, Any]) -> StudyDataset:
    """Rebuild a dataset from :func:`dataset_to_json`'s output.

    Raises:
        MeasurementError: on an unknown format version.
    """
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise MeasurementError(
            f"unsupported dataset format version {version!r}"
        )
    import datetime

    calendar = SimulationCalendar(
        start=datetime.date.fromisoformat(document["calendar"]["start"]),
        num_days=int(document["calendar"]["num_days"]),
    )
    # Files written before coverage tracking carry no key; those read as
    # full coverage (None), while an explicit list — even an empty one —
    # is preserved so partial datasets survive the round trip.
    if "covered_ranges" in document:
        covered = tuple(
            (int(start), int(stop))
            for start, stop in document["covered_ranges"]
        )
    else:
        covered = None
    return StudyDataset(
        calendar=calendar,
        clients=tuple(
            _client_from_obj(obj) for obj in document["clients"]
        ),
        ecs_aggregates=_aggregates_from_obj(document["ecs_aggregates"]),
        ldns_aggregates=_aggregates_from_obj(document["ldns_aggregates"]),
        request_diffs=_diffs_from_obj(document["request_diffs"]),
        passive=_passive_from_obj(document["passive"]),
        beacon_count=int(document["beacon_count"]),
        measurement_count=int(document["measurement_count"]),
        covered_ranges=covered,
    )


def save_dataset(dataset: StudyDataset, path_or_file: Union[str, IO[str]]) -> None:
    """Write a dataset to a JSON file."""
    document = dataset_to_json(dataset)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        _log.info(
            "dataset saved",
            extra={
                "path": path_or_file,
                "measurements": dataset.measurement_count,
            },
        )
    else:
        json.dump(document, path_or_file)


def load_dataset(path_or_file: Union[str, IO[str]]) -> StudyDataset:
    """Read a dataset from a JSON file."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        _log.info("dataset loaded", extra={"path": path_or_file})
    else:
        document = json.load(path_or_file)
    return dataset_from_json(document)
