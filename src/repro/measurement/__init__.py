"""Measurement substrate: beacon, logs, aggregation, backend join."""

from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
    RequestDiffRow,
)
from repro.measurement.backend import BeaconBackend, join_raw_log
from repro.measurement.beacon import (
    BeaconConfig,
    BeaconFetch,
    BeaconRunner,
    BeaconTargetSelector,
)
from repro.measurement.probes import Probe, ProbeNetwork
from repro.measurement.logs import (
    HttpLogEntry,
    JoinedMeasurement,
    PassiveLog,
    RawMeasurementLog,
    ServerLogEntry,
)

__all__ = [
    "BeaconBackend",
    "BeaconConfig",
    "BeaconFetch",
    "BeaconRunner",
    "BeaconTargetSelector",
    "GroupedDailyAggregates",
    "HttpLogEntry",
    "JoinedMeasurement",
    "LatencyDigest",
    "PassiveLog",
    "Probe",
    "ProbeNetwork",
    "RawMeasurementLog",
    "RequestDiffLog",
    "RequestDiffRow",
    "ServerLogEntry",
    "join_raw_log",
]
