"""Figs 5–6: prevalence and persistence of poor anycast paths.

Per /24 per day, the paper computes the median latency to anycast and to
each measured unicast front-end; a day is "poor" when some unicast
front-end improves on anycast by at least a threshold.  Fig 5 plots the
daily fraction of /24s poor at each threshold (all / >10 / >25 / >50 /
>100 ms); Fig 6 plots, over a month, the CDF of how many days (and how
many *consecutive* days) each ever-poor /24 stayed poor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.analysis.stats import CdfSeries, WeightedDistribution, linear_grid
from repro.dns.authoritative import ANYCAST_TARGET
from repro.simulation.dataset import StudyDataset


@dataclass(frozen=True)
class DailyImprovement:
    """Best available unicast improvement for one /24-day."""

    day: int
    client_key: str
    anycast_median_ms: float
    best_unicast_median_ms: float

    @property
    def improvement_ms(self) -> float:
        """How much faster the best measured unicast front-end was."""
        return self.anycast_median_ms - self.best_unicast_median_ms


def daily_improvements(
    dataset: StudyDataset, min_samples: int = 10
) -> Dict[int, Dict[str, DailyImprovement]]:
    """Per day, per /24: anycast vs best-unicast medians.

    A /24-day appears only when anycast and at least one unicast
    front-end each have ``min_samples`` measurements, mirroring the
    paper's use of per-day medians over collected client measurements.
    """
    if min_samples < 1:
        raise AnalysisError("min_samples must be >= 1")
    result: Dict[int, Dict[str, DailyImprovement]] = {}
    aggregates = dataset.ecs_aggregates
    for day in aggregates.days:
        anycast_median: Dict[str, float] = {}
        best_unicast: Dict[str, float] = {}
        for group, target_id, digest in aggregates.iter_day(day):
            if digest.count < min_samples:
                continue
            median = digest.median()
            if target_id == ANYCAST_TARGET:
                anycast_median[group] = median
            else:
                current = best_unicast.get(group)
                if current is None or median < current:
                    best_unicast[group] = median
        per_day: Dict[str, DailyImprovement] = {}
        for group, anycast in anycast_median.items():
            unicast = best_unicast.get(group)
            if unicast is None:
                continue
            per_day[group] = DailyImprovement(
                day=day,
                client_key=group,
                anycast_median_ms=anycast,
                best_unicast_median_ms=unicast,
            )
        result[day] = per_day
    return result


@dataclass(frozen=True)
class PoorPathPrevalence:
    """Fig 5 result: per-day poor fractions at each threshold."""

    thresholds: Tuple[float, ...]
    #: day -> threshold -> fraction of measurable /24s that are poor
    daily_fractions: Dict[int, Dict[float, float]]

    def mean_fraction(self, threshold: float) -> float:
        """Average over days of the poor fraction at one threshold."""
        values = [
            fractions[threshold] for fractions in self.daily_fractions.values()
        ]
        if not values:
            raise AnalysisError("no days analyzed")
        return sum(values) / len(values)

    def format(self) -> str:
        """Paper-style summary plus per-day rows."""
        lines = ["Fig 5 — daily poor-path prevalence (fraction of /24s)"]
        for threshold in self.thresholds:
            label = "any" if threshold <= 1.0 else f">{threshold:.0f}ms"
            lines.append(
                f"  mean fraction improved {label:>7s}: "
                f"{self.mean_fraction(threshold):6.1%}"
            )
        header = "  day  " + "  ".join(
            f">{threshold:>4.0f}ms" for threshold in self.thresholds
        )
        lines.append(header)
        for day in sorted(self.daily_fractions):
            row = self.daily_fractions[day]
            lines.append(
                f"  {day:3d}  "
                + "  ".join(
                    f"{row[threshold]:7.3f}" for threshold in self.thresholds
                )
            )
        return "\n".join(lines)


def poor_path_prevalence(
    dataset: StudyDataset,
    thresholds: Sequence[float] = (1.0, 10.0, 25.0, 50.0, 100.0),
    min_samples: int = 10,
) -> PoorPathPrevalence:
    """Compute Fig 5.  Threshold 1.0 ms is the "all" line — with integer-
    millisecond timing, "any improvement" means at least 1 ms."""
    if not thresholds:
        raise AnalysisError("need at least one threshold")
    improvements = daily_improvements(dataset, min_samples)
    daily_fractions: Dict[int, Dict[float, float]] = {}
    for day, per_day in improvements.items():
        if not per_day:
            continue
        count = len(per_day)
        fractions = {}
        for threshold in thresholds:
            poor = sum(
                1
                for improvement in per_day.values()
                if improvement.improvement_ms >= threshold
            )
            fractions[float(threshold)] = poor / count
        daily_fractions[day] = fractions
    if not daily_fractions:
        raise AnalysisError("no /24-day had enough measurements")
    return PoorPathPrevalence(
        thresholds=tuple(float(t) for t in thresholds),
        daily_fractions=daily_fractions,
    )


@dataclass(frozen=True)
class PoorPathDuration:
    """Fig 6 result: persistence of poor paths across the month."""

    days_poor: CdfSeries
    max_consecutive: CdfSeries
    fraction_single_day: float
    fraction_five_plus_days: float
    fraction_five_plus_consecutive: float
    ever_poor_count: int

    def format(self) -> str:
        """Paper-style summary plus CDF rows."""
        lines = [
            "Fig 6 — poor-path duration over the month (ever-poor /24s)",
            f"  poor on exactly one day:       {self.fraction_single_day:6.1%}",
            f"  poor on >= 5 days:             "
            f"{self.fraction_five_plus_days:6.1%}",
            f"  poor on >= 5 consecutive days: "
            f"{self.fraction_five_plus_consecutive:6.1%}",
            self.days_poor.format_rows(),
            self.max_consecutive.format_rows(),
        ]
        return "\n".join(lines)


def _max_run(days: Sequence[int]) -> int:
    """Longest run of consecutive integers in a sorted day list."""
    best = 0
    run = 0
    previous: Optional[int] = None
    for day in days:
        run = run + 1 if previous is not None and day == previous + 1 else 1
        best = max(best, run)
        previous = day
    return best


def poor_path_duration(
    dataset: StudyDataset,
    threshold_ms: float = 1.0,
    min_samples: int = 10,
) -> PoorPathDuration:
    """Compute Fig 6 at one poor-path threshold (default: any = 1 ms)."""
    improvements = daily_improvements(dataset, min_samples)
    poor_days: Dict[str, List[int]] = {}
    for day, per_day in improvements.items():
        for client_key, improvement in per_day.items():
            if improvement.improvement_ms >= threshold_ms:
                poor_days.setdefault(client_key, []).append(day)
    if not poor_days:
        raise AnalysisError("no /24 was ever poor at this threshold")

    day_counts = []
    max_runs = []
    for days in poor_days.values():
        days.sort()
        day_counts.append(float(len(days)))
        max_runs.append(float(_max_run(days)))

    grid = linear_grid(1.0, float(dataset.calendar.num_days), 1.0)
    days_dist = WeightedDistribution(day_counts)
    runs_dist = WeightedDistribution(max_runs)
    return PoorPathDuration(
        days_poor=days_dist.cdf_series("# days", grid),
        max_consecutive=runs_dist.cdf_series("max # of consecutive days", grid),
        fraction_single_day=days_dist.fraction_at_or_below(1.0),
        fraction_five_plus_days=1.0 - days_dist.fraction_at_or_below(4.999),
        fraction_five_plus_consecutive=1.0
        - runs_dist.fraction_at_or_below(4.999),
        ever_poor_count=len(poor_days),
    )
