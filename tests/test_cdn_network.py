"""Tests for the CDN control/data plane (repro.cdn.network, backbone,
frontend helpers)."""

import pytest

from repro.errors import ConfigurationError
from repro.cdn.backbone import CdnBackbone
from repro.cdn.frontend import nearest_frontends
from repro.geo.coords import haversine_km
from repro.net.topology import AsRole


class TestBackbone:
    def test_frontend_metro_serves_itself(self, cdn_world):
        topology, deployment, _ = cdn_world
        backbone = CdnBackbone(deployment, topology.metro_db)
        for fe in deployment.frontends:
            route = backbone.route(fe.metro_code)
            assert route.frontend.frontend_id == fe.frontend_id
            assert route.backbone_km == 0.0

    def test_peering_only_goes_to_nearest_frontend(self, cdn_world):
        topology, deployment, _ = cdn_world
        backbone = CdnBackbone(deployment, topology.metro_db)
        db = topology.metro_db
        for code in deployment.peering_only_metros:
            route = backbone.route(code)
            location = db.get(code).location
            best = min(
                haversine_km(location, fe.location)
                for fe in deployment.frontends
            )
            assert route.backbone_km == pytest.approx(best)

    def test_non_pop_metro_rejected(self, cdn_world):
        topology, deployment, _ = cdn_world
        backbone = CdnBackbone(deployment, topology.metro_db)
        outside = next(
            m.code for m in topology.metro_db
            if m.code not in deployment.pop_metros
        )
        with pytest.raises(ConfigurationError, match="not a CDN peering"):
            backbone.route(outside)

    def test_ingress_metros_sorted(self, cdn_world):
        topology, deployment, _ = cdn_world
        backbone = CdnBackbone(deployment, topology.metro_db)
        metros = backbone.ingress_metros()
        assert list(metros) == sorted(metros)
        assert set(metros) == set(deployment.pop_metros)


class TestNearestFrontends:
    def test_ordering_and_count(self, cdn_world):
        topology, deployment, network = cdn_world
        point = topology.metro_db.get("lon").location
        nearest = network.nearest_frontends(point, 5)
        assert len(nearest) == 5
        distances = [fe.distance_km(point) for fe in nearest]
        assert distances == sorted(distances)
        assert nearest[0].metro_code == "lon"

    def test_deterministic_tie_break(self, cdn_world):
        _, deployment, _ = cdn_world
        point = deployment.frontends[0].location
        a = nearest_frontends(deployment.frontends, point, 10)
        b = nearest_frontends(deployment.frontends, point, 10)
        assert [fe.frontend_id for fe in a] == [fe.frontend_id for fe in b]


class TestDataPlane:
    def test_every_access_as_has_anycast_route(self, cdn_world):
        topology, _, network = cdn_world
        for access in topology.ases_with_role(AsRole.ACCESS):
            assert network.has_anycast_route(access.asn)

    def test_anycast_path_ends_at_a_frontend(self, cdn_world):
        topology, deployment, network = cdn_world
        frontend_ids = {fe.frontend_id for fe in deployment.frontends}
        for access in topology.ases_with_role(AsRole.ACCESS)[:25]:
            metro = sorted(access.pop_metros)[0]
            path = network.anycast_path(access.asn, metro)
            assert path.frontend.frontend_id in frontend_ids
            assert path.ingress_metro in deployment.pop_metros
            assert path.as_hops == len(path.route.hops)

    def test_unicast_ingress_is_frontend_metro(self, cdn_world):
        topology, deployment, network = cdn_world
        fe = deployment.frontends[0]
        access = topology.ases_with_role(AsRole.ACCESS)[0]
        metro = sorted(access.pop_metros)[0]
        path = network.unicast_path(fe.frontend_id, access.asn, metro)
        assert path.ingress_metro == fe.metro_code
        assert path.backbone_km == 0.0
        assert path.frontend.frontend_id == fe.frontend_id

    def test_unknown_frontend_rejected(self, cdn_world):
        topology, _, network = cdn_world
        access = topology.ases_with_role(AsRole.ACCESS)[0]
        with pytest.raises(ConfigurationError, match="unknown front-end"):
            network.unicast_path("fe-nope", access.asn, sorted(access.pop_metros)[0])

    def test_client_location_extends_path(self, cdn_world):
        topology, _, network = cdn_world
        access = topology.ases_with_role(AsRole.ACCESS)[0]
        metro = sorted(access.pop_metros)[0]
        metro_loc = topology.metro_db.get(metro).location
        without = network.anycast_path(access.asn, metro)
        with_loc = network.anycast_path(access.asn, metro, metro_loc)
        # Starting exactly at the metro center adds (approximately) nothing.
        assert with_loc.path_km == pytest.approx(without.path_km, abs=1e-6)

    def test_variant_ranks_yield_distinct_frontends(self, cdn_world):
        topology, _, network = cdn_world
        found_multi = False
        for access in topology.ases_with_role(AsRole.ACCESS):
            for metro in sorted(access.pop_metros):
                ranks = network.anycast_variant_ranks(access.asn, metro)
                assert ranks[0] == 0
                frontends = [
                    network.anycast_path(access.asn, metro, egress_rank=r)
                    .frontend.frontend_id
                    for r in ranks
                ]
                assert len(set(frontends)) == len(frontends)
                if len(ranks) > 1:
                    found_multi = True
        assert found_multi  # some clients must have alternates

    def test_variant_ingresses_align_with_ranks(self, cdn_world):
        topology, _, network = cdn_world
        access = topology.ases_with_role(AsRole.ACCESS)[0]
        metro = sorted(access.pop_metros)[0]
        ranks = network.anycast_variant_ranks(access.asn, metro)
        ingresses = network.anycast_variant_ingresses(access.asn, metro)
        assert len(ranks) == len(ingresses)

    def test_anycast_rib_accessible(self, cdn_world):
        _, deployment, network = cdn_world
        assert network.anycast_rib.prefix == deployment.anycast_prefix
        fe = deployment.frontends[0]
        assert network.unicast_rib(fe.frontend_id).prefix == fe.unicast_prefix
        with pytest.raises(ConfigurationError):
            network.unicast_rib("fe-nope")

    def test_unicast_universally_reachable(self, cdn_world):
        """§3.1's single-point announcements must still reach every access
        AS (via the backstop transit)."""
        topology, deployment, network = cdn_world
        fe = deployment.frontends[0]
        rib = network.unicast_rib(fe.frontend_id)
        for access in topology.ases_with_role(AsRole.ACCESS):
            assert rib.has_route(access.asn)
