"""CI memory smoke: bounded campaigns must have flat peak memory.

The constant-memory contract of sketch mode is that peak memory is a
function of the *shape* of a campaign (prefixes x days x targets), not
of how many client queries flow through it.  This gate holds the shape
fixed and scales the simulated client load (daily query volume) across
two sizes — by default 100k vs 300k aggregate clients — then fails
(exit code 1) unless the larger run's peak traced memory stays within
``--slack`` of the smaller run's.  An exact-mode campaign retains every
sample, so its memory grows linearly with the same knob; pass
``--with-exact`` to record that contrast in the manifest (it is
reported, not gated, to keep the gate's runtime bounded).

Memory is measured two ways, both recorded in the ``--manifest-out``
manifest:

* ``tracemalloc`` peak per campaign (the gated signal — restartable,
  so both sizes are measured in one process), and
* ``resource.getrusage`` peak RSS (the OS view — monotonic per
  process, so it is recorded as context, not gated).

Usage::

    PYTHONPATH=src python tools/memory_smoke.py \\
        [--clients 100000,300000] [--slack 0.15] \\
        [--manifest-out memory-manifest.json]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.clients.population import ClientPopulationConfig
from repro.clients.workload import WorkloadConfig
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import MemoryProbe, peak_rss_bytes, write_run_manifest


def _scenario(clients: int, prefixes: int, days: int, seed: int) -> Scenario:
    """A campaign whose per-/24 query volume scales with ``clients``.

    The prefix count (and so the digest count) is held fixed; only the
    simulated client load behind each /24 grows.  The per-day beacon cap
    is lifted far above the scaled volume so the load knob actually
    reaches the measurement path.
    """
    volume = max(1.0, clients / prefixes)
    return Scenario.build(
        ScenarioConfig(
            seed=seed,
            population=ClientPopulationConfig(
                prefix_count=prefixes,
                volume_median_queries=volume,
            ),
            workload=WorkloadConfig(max_beacons_per_day=1_000_000),
            calendar=SimulationCalendar(num_days=days),
        )
    )


def _probed_run(scenario: Scenario, config: CampaignConfig):
    """Run one campaign under a tracemalloc window."""
    runner = CampaignRunner(scenario, config)
    with MemoryProbe() as probe:
        dataset = runner.run()
    return dataset, probe.peak_bytes, runner.telemetry.snapshot()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", default="100000,300000", metavar="A,B",
        help="two aggregate client-load sizes to compare",
    )
    parser.add_argument(
        "--prefixes", type=int, default=150,
        help="client /24 count, held fixed across both sizes",
    )
    parser.add_argument("--days", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--sketch-threshold", type=int, default=32, metavar="N",
        help="per-digest exact-sample budget for the bounded campaigns",
    )
    parser.add_argument(
        "--sketch-max-buckets", type=int, default=32, metavar="N",
        help=(
            "per-sketch bucket cap for the bounded campaigns; kept low "
            "here (vs the library default 512) so the cap actually "
            "binds and the flat-memory contract is exercised"
        ),
    )
    parser.add_argument(
        "--slack", type=float, default=0.15, metavar="FRAC",
        help=(
            "allowed growth of the larger run's peak over the smaller "
            "run's (0.15 = within 15%%)"
        ),
    )
    parser.add_argument(
        "--with-exact", action="store_true",
        help=(
            "also run exact-mode campaigns at both sizes and record "
            "their (linearly growing) peaks in the manifest"
        ),
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH",
        help="write the memory accounting manifest here",
    )
    args = parser.parse_args(argv)

    try:
        small, large = (int(part) for part in args.clients.split(","))
    except ValueError:
        print(
            "FAIL: --clients must be two comma-separated integers, got "
            f"{args.clients!r}"
        )
        return 1
    if not 0 < small < large:
        print(f"FAIL: --clients must be increasing, got {args.clients!r}")
        return 1

    sketch_config = CampaignConfig(
        engine="vectorized",
        sketch_threshold=args.sketch_threshold,
        sketch_max_buckets=args.sketch_max_buckets,
    )
    results = {}
    last_snapshot = None
    last_dataset = None
    for clients in (small, large):
        scenario = _scenario(clients, args.prefixes, args.days, args.seed)
        dataset, peak, snapshot = _probed_run(scenario, sketch_config)
        results[clients] = {
            "peak_traced_bytes": peak,
            "measurements": dataset.measurement_count,
        }
        last_snapshot, last_dataset = snapshot, dataset
        print(
            f"  sketch @ {clients:>9,} clients: "
            f"{dataset.measurement_count:>10,} measurements, "
            f"peak traced {peak / 1e6:7.1f} MB"
        )

    # The load knob must have actually scaled the workload, or the gate
    # would pass vacuously.
    growth = (
        results[large]["measurements"] / results[small]["measurements"]
    )
    if growth < 1.5:
        print(
            f"FAIL: large run only produced {growth:.2f}x the "
            "measurements of the small run; the client-load knob is not "
            "reaching the measurement path"
        )
        return 1

    exact_results = None
    if args.with_exact:
        exact_results = {}
        exact_config = CampaignConfig(engine="vectorized")
        for clients in (small, large):
            scenario = _scenario(
                clients, args.prefixes, args.days, args.seed
            )
            dataset, peak, _ = _probed_run(scenario, exact_config)
            exact_results[clients] = {
                "peak_traced_bytes": peak,
                "measurements": dataset.measurement_count,
            }
            print(
                f"  exact  @ {clients:>9,} clients: "
                f"{dataset.measurement_count:>10,} measurements, "
                f"peak traced {peak / 1e6:7.1f} MB"
            )

    peak_ratio = (
        results[large]["peak_traced_bytes"]
        / results[small]["peak_traced_bytes"]
    )
    limit = 1.0 + args.slack
    verdict = {
        "clients": [small, large],
        "prefixes": args.prefixes,
        "days": args.days,
        "sketch_threshold": args.sketch_threshold,
        "sketch_max_buckets": args.sketch_max_buckets,
        "measurement_growth": growth,
        "peak_ratio": peak_ratio,
        "limit": limit,
        "sketch": {str(k): v for k, v in results.items()},
        "exact": (
            {str(k): v for k, v in exact_results.items()}
            if exact_results
            else None
        ),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if args.manifest_out:
        write_run_manifest(
            args.manifest_out,
            last_snapshot,
            dataset=last_dataset,
            extra={"memory_smoke": verdict},
        )
        print(f"  wrote memory manifest to {args.manifest_out}")

    if peak_ratio > limit:
        print(
            f"FAIL: sketch-mode peak memory grew {peak_ratio:.3f}x from "
            f"{small:,} to {large:,} clients ({growth:.1f}x the "
            f"measurements); flat-memory limit is {limit:.2f}x"
        )
        return 1
    print(
        f"memory smoke: peak {peak_ratio:.3f}x across a {growth:.1f}x "
        f"load increase (limit {limit:.2f}x): ok"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
