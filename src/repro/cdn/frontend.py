"""Front-end servers: the CDN's edge presence.

A front-end terminates client TCP connections at a metro and relays
requests to a backend data center (§1 of the paper).  Each front-end
location carries both the shared anycast address and its own unicast /24
(§3.1), so beacon measurements can target a specific location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.coords import GeoPoint
from repro.geo.metros import Metro
from repro.geo.regions import Region
from repro.net.ip import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class FrontEnd:
    """One front-end location.

    Attributes:
        frontend_id: Stable identifier, e.g. ``"fe-lon"``.
        metro: The metro the front-end is deployed in (front-ends sit at
            peering points, per §3.1).
        unicast_prefix: The /24 announced only at this location's peering
            point, used for head-to-head unicast measurements.
    """

    frontend_id: str
    metro: Metro
    unicast_prefix: IPv4Prefix

    @property
    def metro_code(self) -> str:
        """Code of the hosting metro."""
        return self.metro.code

    @property
    def location(self) -> GeoPoint:
        """Coordinates of the front-end (its metro center)."""
        return self.metro.location

    @property
    def region(self) -> Region:
        """Continental region of the front-end."""
        return self.metro.region

    @property
    def unicast_address(self) -> IPv4Address:
        """A representative test address inside the unicast /24."""
        return self.unicast_prefix.address_at(1)

    def distance_km(self, point: GeoPoint) -> float:
        """Great-circle distance from ``point`` to this front-end."""
        return self.location.distance_km(point)


def nearest_frontends(
    frontends: Tuple[FrontEnd, ...], point: GeoPoint, count: int
) -> Tuple[FrontEnd, ...]:
    """The ``count`` front-ends nearest to ``point``, closest first.

    Ties break on frontend_id so the ordering is deterministic.
    """
    ranked = sorted(
        frontends, key=lambda fe: (fe.distance_km(point), fe.frontend_id)
    )
    return tuple(ranked[:count])
