"""Tests for the error hierarchy and deterministic RNG derivation."""

import pytest

from repro.errors import (
    AddressError,
    AnalysisError,
    ConfigurationError,
    GeoError,
    MeasurementError,
    PredictionError,
    ReproError,
    RoutingError,
    TopologyError,
)
from repro.rand import derive_rng, derive_seed


@pytest.mark.parametrize(
    "exc",
    [
        AddressError,
        AnalysisError,
        ConfigurationError,
        GeoError,
        MeasurementError,
        PredictionError,
        RoutingError,
        TopologyError,
    ],
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_derive_seed_deterministic():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derive_seed_sensitive_to_every_part():
    base = derive_seed(1, "a", 2)
    assert derive_seed(2, "a", 2) != base
    assert derive_seed(1, "b", 2) != base
    assert derive_seed(1, "a", 3) != base


def test_derive_seed_tag_boundaries_matter():
    assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


def test_derive_rng_streams_independent():
    a = derive_rng(5, "x")
    b = derive_rng(5, "y")
    assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]


def test_derive_rng_reproducible():
    assert derive_rng(5, "x").random() == derive_rng(5, "x").random()
