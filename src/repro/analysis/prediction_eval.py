"""Fig 9: does yesterday's prediction help today?

For each consecutive day pair, build the §6 prediction from day *d* and
score it against day *d+1*'s measurements: per client /24, the improvement
is (anycast percentile − predicted-target percentile) on the evaluation
day, at the 50th and 75th percentiles (the Bing team's internal benchmark
uses the 75th).  Clients whose prediction is anycast score exactly zero.
The distribution is weighted by query volume, pooled over all day pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.analysis.stats import CdfSeries, WeightedDistribution, linear_grid
from repro.core.predictor import HistoryBasedPredictor, Prediction
from repro.dns.authoritative import ANYCAST_TARGET
from repro.simulation.dataset import StudyDataset

#: Grouping labels.
ECS = "ecs"
LDNS = "ldns"


@dataclass(frozen=True)
class ImprovementSummary:
    """Headline fractions for one (grouping, percentile) line of Fig 9."""

    grouping: str
    percentile: float
    fraction_improved: float
    fraction_worse: float
    fraction_unchanged: float
    evaluated_weight: float

    def format(self) -> str:
        """One summary row."""
        return (
            f"  {self.grouping.upper():5s} p{self.percentile:<4.0f} "
            f"improved {self.fraction_improved:6.1%}  "
            f"worse {self.fraction_worse:6.1%}  "
            f"unchanged {self.fraction_unchanged:6.1%}"
        )


@dataclass(frozen=True)
class PredictionEvaluation:
    """Fig 9 result: improvement CDFs and summaries per line."""

    series: Tuple[CdfSeries, ...]
    summaries: Tuple[ImprovementSummary, ...]

    def format(self) -> str:
        """Paper-style summary plus CDF rows."""
        lines = [
            "Fig 9 — improvement over anycast from prediction-driven "
            "DNS redirection (weighted /24s)"
        ]
        lines.extend(summary.format() for summary in self.summaries)
        lines.extend(series.format_rows() for series in self.series)
        return "\n".join(lines)

    def summary(self, grouping: str, percentile: float) -> ImprovementSummary:
        """Look up one line's summary."""
        for candidate in self.summaries:
            if (
                candidate.grouping == grouping
                and candidate.percentile == percentile
            ):
                return candidate
        raise AnalysisError(f"no summary for {grouping} p{percentile}")


def evaluate_prediction(
    dataset: StudyDataset,
    predictor: Optional[HistoryBasedPredictor] = None,
    groupings: Sequence[str] = (ECS, LDNS),
    eval_percentiles: Sequence[float] = (50.0, 75.0),
    min_eval_samples: int = 8,
    significance_ms: float = 1.0,
) -> PredictionEvaluation:
    """Compute Fig 9.

    Args:
        predictor: The §6 scheme (default configuration if omitted).
        groupings: Which grouping lines to produce ('ecs', 'ldns').
        eval_percentiles: Evaluation percentiles (paper: 50th and 75th).
        min_eval_samples: Minimum next-day samples per digest to score a
            client (below this the comparison is meaningless noise).
        significance_ms: |improvement| below this counts as unchanged.
    """
    predictor = predictor or HistoryBasedPredictor()
    for grouping in groupings:
        if grouping not in (ECS, LDNS):
            raise AnalysisError(f"unknown grouping {grouping!r}")

    days = dataset.ecs_aggregates.days
    if len(days) < 2:
        raise AnalysisError("prediction evaluation needs >= 2 days")

    # Percentile -> parallel improvement lists, per grouping.
    per_percentile: Dict[Tuple[str, float], List[Tuple[float, float]]] = {
        (grouping, percentile): []
        for grouping in groupings
        for percentile in eval_percentiles
    }

    ldns_of = {client.key: client.ldns_id for client in dataset.clients}

    for prediction_day, evaluation_day in zip(days, days[1:]):
        if evaluation_day != prediction_day + 1:
            continue  # only consecutive calendar days form a valid pair
        predictions_by_grouping: Dict[str, Dict[str, Prediction]] = {}
        if ECS in groupings:
            predictions_by_grouping[ECS] = predictor.predict_day(
                dataset.ecs_aggregates, prediction_day
            )
        if LDNS in groupings:
            predictions_by_grouping[LDNS] = predictor.predict_day(
                dataset.ldns_aggregates, prediction_day
            )

        for client in dataset.clients:
            weight = client.daily_queries
            anycast_digest = dataset.ecs_aggregates.digest(
                evaluation_day, client.key, ANYCAST_TARGET
            )
            if anycast_digest is None or anycast_digest.count < min_eval_samples:
                continue
            for grouping in groupings:
                group = client.key if grouping == ECS else ldns_of[client.key]
                prediction = predictions_by_grouping[grouping].get(group)
                target = (
                    prediction.target_id if prediction else ANYCAST_TARGET
                )
                for percentile in eval_percentiles:
                    if target == ANYCAST_TARGET:
                        improvement = 0.0
                    else:
                        target_digest = dataset.ecs_aggregates.digest(
                            evaluation_day, client.key, target
                        )
                        if (
                            target_digest is None
                            or target_digest.count < min_eval_samples
                        ):
                            continue
                        improvement = anycast_digest.percentile(
                            percentile
                        ) - target_digest.percentile(percentile)
                    per_percentile[(grouping, percentile)].append(
                        (improvement, weight)
                    )

    series: List[CdfSeries] = []
    summaries: List[ImprovementSummary] = []
    grid = linear_grid(-400.0, 400.0, 20.0)
    for grouping in groupings:
        label_prefix = "EDNS-0" if grouping == ECS else "LDNS"
        for percentile in eval_percentiles:
            entries = per_percentile[(grouping, percentile)]
            if not entries:
                raise AnalysisError(
                    f"no client could be evaluated for {grouping} "
                    f"p{percentile}"
                )
            values = [improvement for improvement, _ in entries]
            weights = [weight for _, weight in entries]
            dist = WeightedDistribution(values, weights)
            name = "Median" if percentile == 50.0 else f"{percentile:.0f}th"
            series.append(
                dist.cdf_series(f"{label_prefix} {name}", grid)
            )
            summaries.append(
                ImprovementSummary(
                    grouping=grouping,
                    percentile=float(percentile),
                    fraction_improved=dist.fraction_above(significance_ms),
                    fraction_worse=dist.fraction_at_or_below(-significance_ms),
                    fraction_unchanged=(
                        dist.fraction_at_or_below(significance_ms)
                        - dist.fraction_at_or_below(-significance_ms)
                    ),
                    evaluated_weight=dist.total_weight,
                )
            )
    return PredictionEvaluation(
        series=tuple(series), summaries=tuple(summaries)
    )
