"""Front-end withdrawal and cascading-overload analysis.

§2 of the paper notes that anycast makes gradual drain-off hard: "Simply
withdrawing the route to take that front-end offline can lead to
cascading overloading of nearby front-ends."  (FastRoute [23] exists
because of this.)  This module simulates exactly that scenario over the
reproduced CDN: withdraw a front-end's anycast announcement, let BGP
re-converge, measure where its query load lands, and iterate withdrawals
when a survivor exceeds its capacity — producing the cascade the paper
warns about.

Load is the query-volume-weighted client mass anycast steers to each
front-end; capacity defaults to the steady-state load times a headroom
factor, matching how real deployments are provisioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cdn.deployment import CdnDeployment
from repro.cdn.network import CdnNetwork
from repro.clients.population import ClientPrefix
from repro.net.topology import Topology


def frontend_loads(
    network: CdnNetwork, clients: Sequence[ClientPrefix]
) -> Dict[str, float]:
    """Query-weighted load per live front-end under a network's routing.

    Every live front-end appears in the result, including those anycast
    currently steers no one to.
    """
    loads: Dict[str, float] = {
        fe.frontend_id: 0.0 for fe in network.frontends
    }
    for client in clients:
        path = network.anycast_path(client.asn, client.home_metro)
        loads[path.frontend.frontend_id] += client.daily_queries
    return loads


@dataclass(frozen=True)
class CascadeStep:
    """One round of a withdrawal cascade."""

    withdrawn: Tuple[str, ...]
    overloaded: Tuple[str, ...]
    loads: Dict[str, float]


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of a cascading-withdrawal simulation.

    Attributes:
        steps: Per-round snapshots (withdrawn set, who overloaded next).
        final_withdrawn: Everything offline when the cascade stopped.
        stable: True when the cascade converged with capacity to spare,
            False when it was cut off by ``max_rounds``.
    """

    steps: Tuple[CascadeStep, ...]
    final_withdrawn: FrozenSet[str]
    stable: bool

    @property
    def cascade_length(self) -> int:
        """Rounds beyond the initial withdrawal that overloaded someone."""
        return sum(1 for step in self.steps if step.overloaded)

    def format(self) -> str:
        """Human-readable cascade trace."""
        lines = ["Withdrawal cascade:"]
        for index, step in enumerate(self.steps):
            lines.append(
                f"  round {index}: withdrawn={sorted(step.withdrawn)} "
                f"-> overloaded={sorted(step.overloaded) or 'none'}"
            )
        status = "stable" if self.stable else "cut off (max rounds)"
        lines.append(
            f"  final: {len(self.final_withdrawn)} offline ({status})"
        )
        return "\n".join(lines)


class WithdrawalSimulator:
    """Replays front-end withdrawals over a fixed topology and population.

    Capacities are derived from the steady state: each front-end can carry
    ``headroom`` times its normal load (front-ends with no steady-state
    load get the median front-end's capacity, so empty edges are not
    trivially overloaded).
    """

    def __init__(
        self,
        topology: Topology,
        deployment: CdnDeployment,
        clients: Sequence[ClientPrefix],
        headroom: float = 1.5,
        capacities: Optional[Dict[str, float]] = None,
    ) -> None:
        if headroom <= 1.0:
            raise ConfigurationError("headroom must exceed 1.0")
        self._topology = topology
        self._deployment = deployment
        self._clients = tuple(clients)
        if not self._clients:
            raise ConfigurationError("simulator needs at least one client")

        self._baseline_network = CdnNetwork(topology, deployment)
        self._baseline_loads = frontend_loads(
            self._baseline_network, self._clients
        )
        if capacities is not None:
            self._capacities = dict(capacities)
            missing = set(self._baseline_loads) - set(self._capacities)
            if missing:
                raise ConfigurationError(
                    f"capacities missing for {sorted(missing)}"
                )
        else:
            positive = sorted(
                load for load in self._baseline_loads.values() if load > 0
            )
            median_load = positive[len(positive) // 2] if positive else 1.0
            self._capacities = {
                frontend_id: headroom * (load if load > 0 else median_load)
                for frontend_id, load in self._baseline_loads.items()
            }

    @property
    def baseline_loads(self) -> Dict[str, float]:
        """Steady-state load per front-end."""
        return dict(self._baseline_loads)

    @property
    def capacities(self) -> Dict[str, float]:
        """Provisioned capacity per front-end."""
        return dict(self._capacities)

    def loads_after_withdrawal(
        self, withdrawn: Iterable[str]
    ) -> Dict[str, float]:
        """Per-survivor load once the given front-ends are withdrawn."""
        network = CdnNetwork(
            self._topology, self._deployment, frozenset(withdrawn)
        )
        return frontend_loads(network, self._clients)

    def overloaded_after(self, withdrawn: Iterable[str]) -> Tuple[str, ...]:
        """Survivors pushed past capacity by a withdrawal set."""
        loads = self.loads_after_withdrawal(withdrawn)
        return tuple(
            sorted(
                frontend_id
                for frontend_id, load in loads.items()
                if load > self._capacities[frontend_id]
            )
        )

    def cascade(
        self, initial_withdrawn: Iterable[str], max_rounds: int = 10
    ) -> CascadeResult:
        """Iteratively withdraw overloaded survivors until stable.

        Each round withdraws every front-end pushed past capacity by the
        previous round — the §2 cascade.  Stops when no survivor
        overloads, when survivors run out, or after ``max_rounds``.
        """
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        withdrawn = set(initial_withdrawn)
        if not withdrawn:
            raise ConfigurationError("cascade needs an initial withdrawal")
        steps: List[CascadeStep] = []
        stable = False
        total = len(self._baseline_loads)
        for _ in range(max_rounds):
            if len(withdrawn) >= total:
                break
            loads = self.loads_after_withdrawal(withdrawn)
            overloaded = tuple(
                sorted(
                    frontend_id
                    for frontend_id, load in loads.items()
                    if load > self._capacities[frontend_id]
                )
            )
            steps.append(
                CascadeStep(
                    withdrawn=tuple(sorted(withdrawn)),
                    overloaded=overloaded,
                    loads=loads,
                )
            )
            if not overloaded:
                stable = True
                break
            withdrawn.update(overloaded)
        return CascadeResult(
            steps=tuple(steps),
            final_withdrawn=frozenset(withdrawn),
            stable=stable,
        )
