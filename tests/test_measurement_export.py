"""Round-trip tests for dataset persistence."""

import io

import pytest

from repro.errors import MeasurementError
from repro.analysis.poor_paths import poor_path_prevalence
from repro.analysis.prediction_eval import evaluate_prediction
from repro.measurement.export import (
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    save_dataset,
)


@pytest.fixture(scope="module")
def round_tripped(small_dataset):
    return dataset_from_json(dataset_to_json(small_dataset))


def test_counts_preserved(small_dataset, round_tripped):
    assert round_tripped.beacon_count == small_dataset.beacon_count
    assert round_tripped.measurement_count == small_dataset.measurement_count
    assert len(round_tripped.clients) == len(small_dataset.clients)
    assert round_tripped.calendar.num_days == small_dataset.calendar.num_days
    assert round_tripped.calendar.start == small_dataset.calendar.start


def test_clients_preserved(small_dataset, round_tripped):
    for before, after in zip(small_dataset.clients, round_tripped.clients):
        assert before.key == after.key
        assert before.asn == after.asn
        assert before.ldns_id == after.ldns_id
        assert before.daily_queries == pytest.approx(after.daily_queries)
        assert before.location.lat == pytest.approx(after.location.lat)


def test_aggregates_preserved_exactly(small_dataset, round_tripped):
    day = 0
    for group, target_id, digest in small_dataset.ecs_aggregates.iter_day(day):
        restored = round_tripped.ecs_aggregates.digest(day, group, target_id)
        assert restored is not None
        assert restored.values() == digest.values()


def test_passive_preserved(small_dataset, round_tripped):
    day = 0
    assert dict(round_tripped.passive.iter_day(day)) == dict(
        small_dataset.passive.iter_day(day)
    )


def test_diffs_preserved(small_dataset, round_tripped):
    assert round_tripped.request_diffs.diffs() == pytest.approx(
        small_dataset.request_diffs.diffs()
    )
    assert (
        round_tripped.request_diffs.region_names
        == small_dataset.request_diffs.region_names
    )


def test_analyses_agree(small_dataset, round_tripped):
    """An analysis on the restored dataset gives identical results."""
    before = poor_path_prevalence(small_dataset)
    after = poor_path_prevalence(round_tripped)
    assert before.daily_fractions == after.daily_fractions

    eval_before = evaluate_prediction(small_dataset, groupings=("ecs",))
    eval_after = evaluate_prediction(round_tripped, groupings=("ecs",))
    assert eval_before.summary("ecs", 50.0) == eval_after.summary("ecs", 50.0)


def test_file_round_trip(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)
    restored = load_dataset(path)
    assert restored.measurement_count == small_dataset.measurement_count


def test_stream_round_trip(small_dataset):
    buffer = io.StringIO()
    save_dataset(small_dataset, buffer)
    buffer.seek(0)
    restored = load_dataset(buffer)
    assert restored.beacon_count == small_dataset.beacon_count


def test_unknown_version_rejected(small_dataset):
    document = dataset_to_json(small_dataset)
    document["format_version"] = 99
    with pytest.raises(MeasurementError, match="format version"):
        dataset_from_json(document)


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.aggregate import GroupedDailyAggregates
from repro.measurement.export import _aggregates_from_obj, _aggregates_to_obj


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),          # day
            st.sampled_from(["g1", "g2", "g3"]),           # group
            st.sampled_from(["anycast", "fe-a", "fe-b"]),  # target
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        ),
        max_size=60,
    )
)
@settings(max_examples=40)
def test_aggregate_serialization_round_trip_property(samples):
    before = GroupedDailyAggregates("ecs")
    for day, group, target, rtt in samples:
        before.observe(day, group, target, rtt)
    after = _aggregates_from_obj(_aggregates_to_obj(before))
    assert after.days == before.days
    for day in before.days:
        before_rows = sorted(
            (g, t, d.values()) for g, t, d in before.iter_day(day)
        )
        after_rows = sorted(
            (g, t, d.values()) for g, t, d in after.iter_day(day)
        )
        assert before_rows == after_rows
