"""The study dataset: everything a month of measurement produced.

Analyses (and the predictor) consume this container rather than raw logs,
mirroring how the paper's backend storage fed its analyses.

Datasets over the same calendar and client population are *mergeable*
(:meth:`StudyDataset.merge`, or the ``+`` operator): a sharded parallel
campaign produces one partial dataset per client shard and folds them
into the full dataset.  :meth:`StudyDataset.digest` gives a canonical,
order-insensitive fingerprint, so serial, parallel, and re-ordered runs
of the same scenario can be checked for bit-identical results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import MeasurementError
from repro.clients.population import ClientPrefix
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.logs import PassiveLog
from repro.simulation.clock import SimulationCalendar


@dataclass
class StudyDataset:
    """Aggregated outputs of a measurement campaign.

    Attributes:
        calendar: The days the campaign covered.
        clients: The client population measured.
        ecs_aggregates: day → (client /24, target) → latency digest.
        ldns_aggregates: day → (LDNS id, target) → latency digest.
        request_diffs: Per-beacon anycast − best-unicast rows (Fig 3).
        passive: Production-traffic front-end counts (Figs 4, 7, 8).
        beacon_count: Total beacon executions.
        measurement_count: Total joined measurements.
    """

    calendar: SimulationCalendar
    clients: Tuple[ClientPrefix, ...]
    ecs_aggregates: GroupedDailyAggregates
    ldns_aggregates: GroupedDailyAggregates
    request_diffs: RequestDiffLog
    passive: PassiveLog
    beacon_count: int = 0
    measurement_count: int = 0
    _index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {
                client.key: i for i, client in enumerate(self.clients)
            }

    def client_by_key(self, client_key: str) -> ClientPrefix:
        """Client record for a /24 key."""
        return self.clients[self._index[client_key]]

    def client_by_index(self, index: int) -> ClientPrefix:
        """Client record by packed index (as used in request_diffs)."""
        return self.clients[index]

    def volume_weight(self, client_key: str) -> float:
        """Query-volume weight of a /24 (its mean daily queries)."""
        return self.client_by_key(client_key).daily_queries

    # ------------------------------------------------------------------
    # Merging and fingerprinting
    # ------------------------------------------------------------------

    def merge(self, other: "StudyDataset") -> "StudyDataset":
        """Fold another dataset's measurements into this one (in place).

        Both datasets must cover the same calendar and client population
        (shards of one campaign do); only the *measurements* may differ.

        Raises:
            MeasurementError: on mismatched calendars or populations.
        """
        if (
            self.calendar.start != other.calendar.start
            or self.calendar.num_days != other.calendar.num_days
        ):
            raise MeasurementError(
                "cannot merge datasets over different calendars"
            )
        if len(self.clients) != len(other.clients) or any(
            a.key != b.key for a, b in zip(self.clients, other.clients)
        ):
            raise MeasurementError(
                "cannot merge datasets over different client populations"
            )
        self.ecs_aggregates.merge(other.ecs_aggregates)
        self.ldns_aggregates.merge(other.ldns_aggregates)
        self.request_diffs.merge(other.request_diffs)
        self.passive.merge(other.passive)
        self.beacon_count += other.beacon_count
        self.measurement_count += other.measurement_count
        return self

    def __add__(self, other: "StudyDataset") -> "StudyDataset":
        """A new dataset holding both operands' measurements."""
        result = StudyDataset(
            calendar=self.calendar,
            clients=self.clients,
            ecs_aggregates=GroupedDailyAggregates(
                self.ecs_aggregates.grouping
            ),
            ldns_aggregates=GroupedDailyAggregates(
                self.ldns_aggregates.grouping
            ),
            request_diffs=RequestDiffLog(),
            passive=PassiveLog(),
        )
        result.merge(self)
        result.merge(other)
        return result

    def digest(self) -> str:
        """Canonical SHA-256 fingerprint of the dataset's contents.

        The traversal is fully sorted and the within-digest sample order
        is canonicalized, so two datasets holding the same *multiset* of
        measurements — e.g. a serial run and a merged sharded run, whose
        shared-LDNS digests interleave samples differently — produce the
        same hex digest.  Floats hash by exact ``repr``; no tolerance.
        """
        h = hashlib.sha256()

        def put(*parts: object) -> None:
            for part in parts:
                h.update(str(part).encode("utf-8"))
                h.update(b"\x1f")

        put("calendar", self.calendar.start.isoformat(), self.calendar.num_days)
        put("clients", len(self.clients))
        for client in self.clients:
            put(client.key)
        for aggregates in (self.ecs_aggregates, self.ldns_aggregates):
            put("aggregates", aggregates.grouping)
            for day in aggregates.days:
                for group in aggregates.groups_on(day):
                    for target_id, digest in sorted(
                        aggregates.targets_for(day, group).items()
                    ):
                        put(day, group, target_id)
                        for value in sorted(digest.values()):
                            put(repr(value))
        put("request_diffs", len(self.request_diffs))
        names = self.request_diffs.region_names
        for row in sorted(
            self.request_diffs.rows(),
            key=lambda r: (
                r.day,
                r.client_index,
                r.anycast_rtt_ms,
                r.best_unicast_rtt_ms,
            ),
        ):
            put(
                row.day,
                row.client_index,
                names[row.region_code],
                repr(row.anycast_rtt_ms),
                repr(row.best_unicast_rtt_ms),
            )
        put("passive")
        for day in self.passive.days:
            for client_key in sorted(self.passive.clients_on(day)):
                for frontend_id, count in sorted(
                    self.passive.frontends_for(day, client_key).items()
                ):
                    put(day, client_key, frontend_id, count)
        put("counts", self.beacon_count, self.measurement_count)
        return h.hexdigest()
