"""§2's TCP-disruption claim, quantified.

"Third, anycast routing changes can cause ongoing TCP sessions to
terminate and need to be restarted.  In the context of the Web, which is
dominated by short flows, this does not appear to be an issue in practice
[31, 23]."

A route change breaks exactly the connections in flight when it happens.
Given the observed front-end switch events (passive logs) and a flow-
duration model, this analysis computes the expected fraction of
connections broken per day — making the paper's "non-issue" claim a
number instead of an assertion, and showing how it would stop holding for
long-lived flows (video, websockets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import AnalysisError
from repro.simulation.clock import SECONDS_PER_DAY
from repro.simulation.dataset import StudyDataset


@dataclass(frozen=True)
class TcpDisruptionResult:
    """Expected connection breakage from anycast route changes.

    Attributes:
        flow_duration_s: The flow length assumed.
        switching_client_fraction: Fraction of client-days with a
            front-end change.
        broken_flow_fraction: Expected fraction of *all* flows broken by
            route changes (a flow breaks if a switch lands inside it).
        broken_per_million: Same, per million flows.
    """

    flow_duration_s: float
    switching_client_fraction: float
    broken_flow_fraction: float

    @property
    def broken_per_million(self) -> float:
        """Broken flows per million."""
        return self.broken_flow_fraction * 1e6

    def format(self) -> str:
        """§2-style summary line."""
        return (
            f"flows of {self.flow_duration_s:g}s: "
            f"{self.broken_per_million:,.0f} per million broken "
            f"({self.switching_client_fraction:.1%} of client-days saw a "
            f"route change)"
        )


def tcp_disruption(
    dataset: StudyDataset,
    flow_durations_s: Sequence[float] = (0.5, 5.0, 60.0, 1800.0),
) -> Tuple[TcpDisruptionResult, ...]:
    """Expected broken-flow fractions for a range of flow lengths.

    Switch events come from the passive logs (a client-day served by more
    than one front-end had one route change at a uniformly random time);
    flows start uniformly through the day.  A flow of duration ``d``
    starting within ``d`` seconds before the switch breaks, so for a
    switching client the per-flow break probability is ``d / seconds_per
    day`` (capped at 1).
    """
    if not flow_durations_s:
        raise AnalysisError("need at least one flow duration")
    if any(duration <= 0 for duration in flow_durations_s):
        raise AnalysisError("flow durations must be positive")

    client_days = 0
    switch_days = 0
    for day in dataset.passive.days:
        for _, counts in dataset.passive.iter_day(day):
            client_days += 1
            if len(counts) > 1:
                switch_days += 1
    if client_days == 0:
        raise AnalysisError("no passive traffic recorded")
    switching_fraction = switch_days / client_days

    results: List[TcpDisruptionResult] = []
    for duration in flow_durations_s:
        per_flow_break = min(1.0, duration / SECONDS_PER_DAY)
        results.append(
            TcpDisruptionResult(
                flow_duration_s=float(duration),
                switching_client_fraction=switching_fraction,
                broken_flow_fraction=switching_fraction * per_flow_break,
            )
        )
    return tuple(results)


def format_disruption_table(
    results: Sequence[TcpDisruptionResult],
) -> str:
    """Render the §2 claim as a table over flow lengths."""
    lines = [
        "§2 — TCP sessions broken by anycast route changes",
        f"  (client-days with a route change: "
        f"{results[0].switching_client_fraction:.1%})" if results else "",
        "  flow length    broken flows per million",
    ]
    for result in results:
        lines.append(
            f"  {result.flow_duration_s:9g} s   {result.broken_per_million:12,.1f}"
        )
    lines.append(
        "  -> short web flows are effectively untouched; long-lived flows"
        " would not be (the §2 caveat)."
    )
    return "\n".join(lines)
