"""Dirty-data chaos tests: record faults, quarantine identity, resume.

The tentpole invariant: under the ``lenient`` policy, a campaign run
against a ``record-*`` fault plan produces exactly the clean dataset
minus the quarantined records — and the dirty digest plus the
quarantine accounting are bit-identical across serial, sharded,
reference, and vectorized runs (within each engine's digest family).
"""

import json
import math
import os

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.clients.population import ClientPopulationConfig
from repro.faults import (
    CLOCK_SKEW_STEP_MS,
    RECORD_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RecordFaultInjector,
)
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig

pytestmark = pytest.mark.chaos

DIRTY_SPEC = "record-corrupt:4,record-clock-skew:3,record-truncate:2"


@pytest.fixture(scope="module")
def dirty_scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            seed=47,
            population=ClientPopulationConfig(prefix_count=40),
            calendar=SimulationCalendar(num_days=2),
        )
    )


@pytest.fixture(scope="module")
def clean_run(dirty_scenario):
    runner = CampaignRunner(
        dirty_scenario, CampaignConfig(engine="vectorized")
    )
    dataset = runner.run()
    assert runner.quarantine.total == 0  # clean data never quarantines
    return dataset


@pytest.fixture(scope="module")
def dirty_run(dirty_scenario):
    runner = CampaignRunner(
        dirty_scenario,
        CampaignConfig(
            engine="vectorized",
            fault_plan=FaultPlan.from_spec(DIRTY_SPEC),
            validation="lenient",
        ),
    )
    dataset = runner.run()
    return runner, dataset


class TestPlanGrammar:
    def test_record_kinds_parse(self):
        plan = FaultPlan.from_spec(DIRTY_SPEC)
        assert [spec.kind for spec in plan.specs] == [
            FaultKind.RECORD_CORRUPT,
            FaultKind.RECORD_CLOCK_SKEW,
            FaultKind.RECORD_TRUNCATE,
        ]
        assert plan.spec_string() == DIRTY_SPEC

    def test_record_faults_cannot_pin_shards(self):
        with pytest.raises(ConfigurationError, match="pinned to a shard"):
            FaultSpec(FaultKind.RECORD_CORRUPT, count=1, shard=0)
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec("record-corrupt:1@2")

    def test_record_only_split(self):
        mixed = FaultPlan.from_spec("crash:1," + DIRTY_SPEC)
        record_part = mixed.record_only()
        assert record_part is not None
        assert record_part.spec_string() == DIRTY_SPEC
        assert FaultPlan.from_spec("crash:1").record_only() is None

    def test_kind_invariant_schedule(self):
        """Same-shape plans of different kinds dirty identical cells."""
        corrupt = FaultPlan.from_spec("record-corrupt:5").compile_records(
            seed=99, num_days=3, population=50
        )
        truncate = FaultPlan.from_spec("record-truncate:5").compile_records(
            seed=99, num_days=3, population=50
        )
        assert set(corrupt.points) == set(truncate.points)
        assert corrupt.planted_counts() == {"record-corrupt": 5}
        assert truncate.planted_counts() == {"record-truncate": 5}

    def test_dirty_values(self):
        assert math.isnan(
            RecordFaultInjector.dirty_value(FaultKind.RECORD_CORRUPT, 50.0)
        )
        assert (
            RecordFaultInjector.dirty_value(
                FaultKind.RECORD_CLOCK_SKEW, 50.0
            )
            == 50.0 - CLOCK_SKEW_STEP_MS
        )
        assert RecordFaultInjector.dirty_value(
            FaultKind.RECORD_TRUNCATE, 50.0
        ) == float("-inf")
        assert FaultKind.RECORD_CORRUPT in RECORD_KINDS


class TestQuarantineIdentity:
    def test_lenient_dirty_equals_clean_minus_quarantined(
        self, clean_run, dirty_run
    ):
        runner, dataset = dirty_run
        quarantine = runner.quarantine
        assert quarantine.total > 0
        assert quarantine.repaired == 0  # lenient never repairs
        assert (
            clean_run.measurement_count
            == dataset.measurement_count + quarantine.dropped
        )
        assert dataset.beacon_count == clean_run.beacon_count
        assert dataset.digest() != clean_run.digest()

    def test_sharded_dirty_run_is_bit_identical(
        self, dirty_scenario, dirty_run
    ):
        serial_runner, serial_dataset = dirty_run
        sharded = ParallelCampaignRunner(
            dirty_scenario,
            CampaignConfig(
                engine="vectorized",
                fault_plan=FaultPlan.from_spec(DIRTY_SPEC),
                validation="lenient",
            ),
            workers=2,
        )
        dataset = sharded.run()
        assert dataset.digest() == serial_dataset.digest()
        assert sharded.quarantine.digest() == serial_runner.quarantine.digest()
        assert sharded.quarantine.counts == serial_runner.quarantine.counts

    def test_engines_quarantine_the_same_records(
        self, dirty_scenario, dirty_run
    ):
        vec_runner, _ = dirty_run
        ref_runner = CampaignRunner(
            dirty_scenario,
            CampaignConfig(
                engine="reference",
                fault_plan=FaultPlan.from_spec(DIRTY_SPEC),
                validation="lenient",
            ),
        )
        ref_runner.run()
        # The engines draw different RTT values, so the quarantined
        # *values* differ — but the schedule, coordinates, and reasons
        # are engine-invariant.
        assert ref_runner.quarantine.counts == vec_runner.quarantine.counts
        assert [
            (s.day, s.client_key, s.record_index, s.reason)
            for s in ref_runner.quarantine.samples
        ] == [
            (s.day, s.client_key, s.record_index, s.reason)
            for s in vec_runner.quarantine.samples
        ]

    def test_telemetry_counters_published(self, dirty_run):
        runner, _ = dirty_run
        counters = runner.telemetry.snapshot().counters
        assert counters["validate.quarantined_total"] == (
            runner.quarantine.dropped
        )
        assert counters["faults.records_planted_total"] > 0
        by_reason = sum(
            value
            for name, value in counters.items()
            if name.startswith("validate.quarantined.")
        )
        assert by_reason == counters["validate.quarantined_total"]


class TestPolicies:
    def test_strict_raises_on_first_dirty_record(self, dirty_scenario):
        runner = CampaignRunner(
            dirty_scenario,
            CampaignConfig(
                engine="vectorized",
                fault_plan=FaultPlan.from_spec("record-corrupt:2"),
                validation="strict",
            ),
        )
        with pytest.raises(ValidationError):
            runner.run()

    def test_strict_failure_is_not_retried_in_parallel(self, dirty_scenario):
        runner = ParallelCampaignRunner(
            dirty_scenario,
            CampaignConfig(
                engine="vectorized",
                fault_plan=FaultPlan.from_spec("record-corrupt:2"),
                validation="strict",
                max_retries=3,
                retry_backoff_seconds=0.0,
            ),
            workers=2,
        )
        with pytest.raises(ValidationError):
            runner.run()
        counters = runner.telemetry.snapshot().counters
        assert counters.get("shard.retries_total", 0) == 0

    def test_repair_keeps_clock_skewed_records(self, dirty_scenario):
        runner = CampaignRunner(
            dirty_scenario,
            CampaignConfig(
                engine="vectorized",
                fault_plan=FaultPlan.from_spec("record-clock-skew:3"),
                validation="repair",
            ),
        )
        dataset = runner.run()
        quarantine = runner.quarantine
        # Clock skew drives RTTs negative: repairable (clamped to 0).
        assert quarantine.repaired > 0
        assert quarantine.dropped == 0
        clean = CampaignRunner(
            dirty_scenario, CampaignConfig(engine="vectorized")
        ).run()
        assert dataset.measurement_count == clean.measurement_count

    def test_bad_policy_rejected_at_config(self):
        with pytest.raises(ConfigurationError, match="validation"):
            CampaignConfig(validation="fix-it-for-me")


class TestCheckpointQuarantineResume:
    def test_resume_restores_quarantine_accounting(
        self, dirty_scenario, dirty_run, tmp_path
    ):
        serial_runner, serial_dataset = dirty_run
        checkpoint_dir = str(tmp_path / "ckpt")
        dirty_config = CampaignConfig(
            engine="vectorized",
            fault_plan=FaultPlan.from_spec(DIRTY_SPEC),
            validation="lenient",
            checkpoint_dir=checkpoint_dir,
        )
        first = ParallelCampaignRunner(
            dirty_scenario, dirty_config, workers=2
        )
        first.run()

        manifest_path = os.path.join(
            checkpoint_dir, "shard-0000.manifest.json"
        )
        manifest = json.load(open(manifest_path))
        if first.quarantine.total:
            assert "quarantine" in manifest or json.load(
                open(
                    os.path.join(
                        checkpoint_dir, "shard-0001.manifest.json"
                    )
                )
            ).get("quarantine")

        resumed = ParallelCampaignRunner(
            dirty_scenario,
            CampaignConfig(
                engine="vectorized",
                fault_plan=FaultPlan.from_spec(DIRTY_SPEC),
                validation="lenient",
                checkpoint_dir=checkpoint_dir,
                resume=True,
            ),
            workers=2,
        )
        dataset = resumed.run()
        counters = resumed.telemetry.snapshot().counters
        assert counters["checkpoint.loaded_total"] == 2  # no shard re-ran
        assert dataset.digest() == serial_dataset.digest()
        assert resumed.quarantine.digest() == serial_runner.quarantine.digest()

    def test_different_validation_policy_invalidates_checkpoints(
        self, dirty_scenario, tmp_path
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        base = dict(
            engine="vectorized",
            fault_plan=FaultPlan.from_spec("record-clock-skew:3"),
            checkpoint_dir=checkpoint_dir,
        )
        ParallelCampaignRunner(
            dirty_scenario,
            CampaignConfig(validation="lenient", **base),
            workers=2,
        ).run()
        resumed = ParallelCampaignRunner(
            dirty_scenario,
            CampaignConfig(validation="repair", resume=True, **base),
            workers=2,
        )
        resumed.run()
        counters = resumed.telemetry.snapshot().counters
        # A lenient checkpoint must not satisfy a repair-policy campaign.
        assert counters.get("checkpoint.loaded_total", 0) == 0


class TestCliValidationFlags:
    def test_flags_build_campaign_config(self):
        from repro.cli import _campaign_config, build_parser

        args = build_parser().parse_args(
            [
                "run", "out.json",
                "--fault-plan", "record-corrupt:4",
                "--validation-policy", "repair",
            ]
        )
        config = _campaign_config(args)
        assert config.validation == "repair"
        assert config.fault_plan.spec_string() == "record-corrupt:4"

    def test_default_policy_is_lenient(self):
        from repro.cli import _campaign_config, build_parser

        args = build_parser().parse_args(["run", "out.json"])
        assert _campaign_config(args).validation == "lenient"

    def test_quarantine_out_writes_mergeable_log(self, tmp_path):
        from repro.cli import main
        from repro.measurement.validate import QuarantineLog

        quarantine_path = str(tmp_path / "quarantine.json")
        dataset_path = str(tmp_path / "dataset.json")
        exit_code = main(
            [
                "run", dataset_path,
                "--prefixes", "20", "--days", "1", "--seed", "47",
                "--engine", "vectorized",
                "--fault-plan", "record-corrupt:2",
                "--quarantine-out", quarantine_path,
            ]
        )
        assert exit_code == 0
        restored = QuarantineLog.from_obj(
            json.load(open(quarantine_path))
        )
        assert restored.total > 0
        manifest = json.load(
            open(str(tmp_path / "dataset.manifest.json"))
        )
        assert (
            manifest["validation"]["quarantined_total"] == restored.dropped
        )
