"""Integration tests: scenario build and campaign execution."""

import pytest

from repro.errors import ConfigurationError
from repro.clients.population import ClientPopulationConfig
from repro.dns.authoritative import ANYCAST_TARGET
from repro.rand import derive_rng
from repro.simulation.campaign import (
    CampaignRunner,
    largest_remainder_apportion,
)
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import Scenario, ScenarioConfig


class TestScenarioBuild:
    def test_components_wired(self, small_scenario):
        scenario = small_scenario
        assert len(scenario.clients) > 0
        assert scenario.network.frontends
        assert len(scenario.ldns_directory) > 0
        # Every client's resolver and /24 are geolocatable.
        for client in scenario.clients[:20]:
            scenario.geolocation.lookup(client.key)
            scenario.geolocation.lookup(client.ldns_id)

    def test_client_index(self, small_scenario):
        client = small_scenario.clients[3]
        assert small_scenario.client_index(client.key) == 3
        assert small_scenario.client_by_key(client.key) is client
        with pytest.raises(ConfigurationError):
            small_scenario.client_index("0.0.0.0/24")

    def test_build_deterministic(self, small_scenario_config):
        a = Scenario.build(small_scenario_config)
        b = Scenario.build(small_scenario_config)
        assert [c.key for c in a.clients] == [c.key for c in b.clients]
        assert [c.ldns_id for c in a.clients] == [c.ldns_id for c in b.clients]

    def test_seed_changes_world(self, small_scenario_config):
        import dataclasses

        other = dataclasses.replace(small_scenario_config, seed=43)
        a = Scenario.build(small_scenario_config)
        b = Scenario.build(other)
        assert [c.daily_queries for c in a.clients] != [
            c.daily_queries for c in b.clients
        ]

    def test_geo_error_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(geolocation_error_fraction=2.0)


class TestCampaign:
    def test_measurements_are_four_per_beacon(self, small_dataset):
        assert small_dataset.measurement_count == 4 * small_dataset.beacon_count

    def test_every_day_has_data(self, small_dataset):
        days = tuple(range(small_dataset.calendar.num_days))
        assert small_dataset.ecs_aggregates.days == days
        assert small_dataset.passive.days == days

    def test_anycast_measured_for_active_clients(self, small_dataset):
        day = 0
        groups = small_dataset.ecs_aggregates.groups_on(day)
        assert groups
        with_anycast = [
            g
            for g in groups
            if small_dataset.ecs_aggregates.digest(day, g, ANYCAST_TARGET)
        ]
        assert len(with_anycast) == len(groups)

    def test_diff_log_matches_beacons(self, small_dataset):
        assert len(small_dataset.request_diffs) == small_dataset.beacon_count

    def test_passive_volume_plausible(self, small_dataset, small_scenario):
        total_mean = sum(c.daily_queries for c in small_scenario.clients)
        day_total = small_dataset.passive.total_queries(0)
        assert 0.5 * total_mean <= day_total <= 1.5 * total_mean

    def test_ldns_aggregates_group_by_resolver(self, small_dataset, small_scenario):
        ldns_ids = {c.ldns_id for c in small_scenario.clients}
        for group in small_dataset.ldns_aggregates.groups_on(0):
            assert group in ldns_ids

    def test_rtts_are_integral(self, small_dataset):
        for _, _, digest in small_dataset.ecs_aggregates.iter_day(0):
            for value in digest.values()[:5]:
                assert value == round(value)

    def test_campaign_deterministic(self, small_scenario_config):
        a = CampaignRunner(Scenario.build(small_scenario_config)).run()
        b = CampaignRunner(Scenario.build(small_scenario_config)).run()
        assert a.beacon_count == b.beacon_count
        assert a.measurement_count == b.measurement_count
        assert a.request_diffs.diffs()[:100] == b.request_diffs.diffs()[:100]

    def test_same_seed_same_digest(self, small_scenario_config, small_dataset):
        rerun = CampaignRunner(Scenario.build(small_scenario_config)).run()
        assert rerun.digest() == small_dataset.digest()

    def test_different_seed_different_digest(self, small_scenario_config,
                                             small_dataset):
        import dataclasses

        other = dataclasses.replace(small_scenario_config, seed=43)
        rerun = CampaignRunner(Scenario.build(other)).run()
        assert rerun.digest() != small_dataset.digest()

    def test_passive_counts_sum_to_query_volume(self, small_dataset,
                                                small_scenario):
        """Largest-remainder apportionment: the passive log's per-day
        counts for a client sum exactly to that day's drawn query volume
        (independent rounding could drift by a query per route)."""
        scenario = small_scenario
        seed = scenario.config.seed
        workload = scenario.workload_model
        for day in range(scenario.calendar.num_days):
            is_weekend = scenario.calendar.is_weekend(day)
            for client in scenario.clients[:40]:
                rng = derive_rng(seed, "campaign", day, client.key)
                queries = workload.daily_queries(client, is_weekend, rng)
                recorded = sum(
                    small_dataset.passive.frontends_for(
                        day, client.key
                    ).values()
                )
                assert recorded == max(queries, 0)

    def test_dataset_lookups(self, small_dataset):
        client = small_dataset.clients[0]
        assert small_dataset.client_by_key(client.key) is client
        assert small_dataset.client_by_index(0) is client
        assert small_dataset.volume_weight(client.key) == client.daily_queries

    def test_progress_callback_invoked(self):
        from repro.simulation.campaign import CampaignConfig

        config = ScenarioConfig(
            seed=7,
            population=ClientPopulationConfig(prefix_count=30),
            calendar=SimulationCalendar(num_days=2),
        )
        seen = []
        runner = CampaignRunner(
            Scenario.build(config),
            CampaignConfig(progress_callback=lambda d, n: seen.append((d, n))),
        )
        runner.run()
        assert seen == [(0, 2), (1, 2)]


class TestLargestRemainderApportion:
    def test_sums_exactly(self):
        for total in (0, 1, 5, 17, 1000):
            for fractions in ((1.0,), (0.5, 0.5), (0.2, 0.3, 0.5),
                              (1 / 3, 1 / 3, 1 / 3)):
                counts = largest_remainder_apportion(total, fractions)
                assert sum(counts) == total
                assert all(count >= 0 for count in counts)

    def test_largest_remainder_wins(self):
        assert largest_remainder_apportion(10, (1 / 3, 2 / 3)) == [3, 7]

    def test_independent_rounding_would_drift(self):
        # round(2.5) == 2 under banker's rounding, so the old per-rank
        # int(round(...)) recorded 4 of these 5 queries.
        assert sum(largest_remainder_apportion(5, (0.5, 0.5))) == 5

    def test_ties_break_to_earliest_index(self):
        assert largest_remainder_apportion(5, (0.5, 0.5)) == [3, 2]

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            largest_remainder_apportion(-1, (1.0,))
        with pytest.raises(ConfigurationError):
            largest_remainder_apportion(3, ())
