"""Query workload: how many queries and beacons each /24 produces per day.

Two rates matter to the reproduction:

* *Query volume* drives the passive logs and all volume weighting; it has
  a weekly shape (weekends are quieter) on top of each prefix's mean.
* *Beacon executions* are a sampled fraction of result pages (§3.2.2: "we
  inject a JavaScript beacon into a small fraction of Bing Search
  results"), so beacon counts scale with query volume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.clients.population import ClientPrefix


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload knobs.

    Attributes:
        beacon_fraction: Fraction of queries that carry the beacon.
        weekend_volume_factor: Multiplier on query volume for weekend days.
        max_beacons_per_day: Cap on beacon executions per /24-day, the
            engineering sampling limit §6 alludes to ("our sampling rate
            was limited due to engineering issues").
        min_beacons_per_day: Floor for prefixes with any traffic at all, so
            low-volume prefixes still appear in daily analyses.
    """

    beacon_fraction: float = 0.5
    weekend_volume_factor: float = 0.75
    max_beacons_per_day: int = 250
    min_beacons_per_day: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.beacon_fraction <= 1.0:
            raise ConfigurationError("beacon_fraction must be in (0, 1]")
        if not 0.0 < self.weekend_volume_factor <= 1.0:
            raise ConfigurationError(
                "weekend_volume_factor must be in (0, 1]"
            )
        if self.max_beacons_per_day < 1:
            raise ConfigurationError("max_beacons_per_day must be >= 1")
        if not 0 <= self.min_beacons_per_day <= self.max_beacons_per_day:
            raise ConfigurationError(
                "min_beacons_per_day must be in [0, max_beacons_per_day]"
            )


class WorkloadModel:
    """Per-day query and beacon counts for a client prefix."""

    def __init__(self, config: WorkloadConfig = WorkloadConfig()) -> None:
        self._config = config

    @property
    def config(self) -> WorkloadConfig:
        """The workload parameters."""
        return self._config

    def daily_queries(
        self, client: ClientPrefix, is_weekend: bool, rng: random.Random
    ) -> int:
        """Query count for one /24-day (Poisson-ish around its mean)."""
        mean = client.daily_queries
        if is_weekend:
            mean *= self._config.weekend_volume_factor
        # Gaussian approximation to Poisson keeps this cheap at scale and
        # indistinguishable for the means involved (>= ~10).
        if mean < 20.0:
            count = _poisson(mean, rng)
        else:
            count = int(round(rng.gauss(mean, mean ** 0.5)))
        return max(0, count)

    def daily_beacons(self, queries: int, rng: random.Random) -> int:
        """Beacon executions among ``queries`` result pages."""
        cfg = self._config
        if queries <= 0:
            return 0
        mean = queries * cfg.beacon_fraction
        if mean < 20.0:
            count = _poisson(mean, rng)
        else:
            count = int(round(rng.gauss(mean, mean ** 0.5)))
        count = max(count, cfg.min_beacons_per_day)
        return min(count, cfg.max_beacons_per_day, queries)


def _poisson(mean: float, rng: random.Random) -> int:
    """Knuth's Poisson sampler (adequate for small means)."""
    if mean <= 0.0:
        return 0
    limit = 2.718281828459045 ** (-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
