"""Memory-mapped columnar sidecars for framed dataset exports.

The framed v2/v3 export (:mod:`repro.measurement.export`) optimizes for
durability: every frame is independently CRC-verified JSON, so damage is
localized and salvageable.  That durability has a read cost — loading a
paper-scale export re-parses every base64-packed sample array through the
JSON decoder, which dominates analysis start-up once campaigns outgrow
smoke scale.

This module adds a *derived read cache* next to the export: a binary
sidecar (``<export>.cols``) holding the same dataset in the columnar
layout shard transport already uses (:mod:`repro.simulation.transport`).
Reads memory-map the sidecar and rebuild the dataset from zero-copy
buffer views — no JSON, no base64, no per-sample Python.  The framed
file stays the source of truth:

* the sidecar records a **fingerprint** (byte length + SHA-256) of the
  framed export it was derived from; a reader whose fingerprint check
  fails falls back to the framed parse and rewrites the sidecar;
* sidecar writes are atomic (temp + ``os.replace``) and best-effort — a
  full disk or read-only directory degrades to framed-speed loads, never
  to an error or a stale read;
* salvage (:func:`repro.measurement.export.recover_dataset`) never
  consults sidecars: damage recovery always works from the frames.

Layout: ``MAGIC | u64 header length | header pickle | transport bytes``.
The header carries the fingerprint and the client tuple (transport
payloads deliberately omit clients — shards rebuild them from the
scenario, but an analysis process loading a file has no scenario).
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import MeasurementError
from repro.simulation.dataset import StudyDataset
from repro.telemetry import get_logger
from repro.telemetry.trace import active_trace

_log = get_logger("columnar")


@dataclass
class SidecarStats:
    """Process-wide sidecar traffic counters.

    The loader runs in analysis processes with no campaign telemetry,
    so the counts live here and :func:`repro.telemetry.report
    .build_run_manifest` reads them when assembling a manifest.

    Attributes:
        hits: Loads served from a sidecar (zero-copy path).
        rebuilds: Sidecars rewritten after a framed re-parse (stale,
            torn, or absent sidecar behind an existing export).
        fallbacks: Loads that fell back to the framed parse.
    """

    hits: int = 0
    rebuilds: int = 0
    fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters keyed as they appear in run manifests."""
        return {
            "sidecar_hits": self.hits,
            "sidecar_rebuilds": self.rebuilds,
            "sidecar_fallbacks": self.fallbacks,
        }

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.rebuilds = 0
        self.fallbacks = 0


#: The process-wide counters behind ``columnar.sidecar_*`` manifests.
SIDECAR_STATS = SidecarStats()


def sidecar_stats() -> Dict[str, int]:
    """A copy of the current process-wide sidecar counters."""
    return SIDECAR_STATS.as_dict()


def reset_sidecar_stats() -> None:
    """Zero the process-wide sidecar counters (tests, benchmarks)."""
    SIDECAR_STATS.reset()


def _trace_sidecar(event: str, export_path: str, **args: Any) -> None:
    """Emit a sidecar instant onto the active trace, if one exists."""
    trace = active_trace()
    if trace is not None:
        trace.instant(
            f"sidecar.{event}", "sidecar", path=export_path, **args
        )

#: Leading bytes of every columnar sidecar file.
MAGIC = b"RPRO-COLS1\x00"

#: Suffix appended to the framed export's path.
SIDECAR_SUFFIX = ".cols"

_LEN = struct.Struct("<Q")

#: Framed files smaller than this hash in one read; larger ones stream.
_HASH_CHUNK = 1 << 20


def sidecar_path(export_path: str) -> str:
    """The sidecar path for a framed export path."""
    return export_path + SIDECAR_SUFFIX


def file_fingerprint(path: str) -> Tuple[int, str]:
    """``(size, sha256-hex)`` of a file's bytes.

    The pair pins a sidecar to the exact framed export it was derived
    from: any rewrite of the export — even one preserving length —
    changes the digest and invalidates the sidecar.
    """
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            size += len(chunk)
            digest.update(chunk)
    return size, digest.hexdigest()


def write_sidecar(
    export_path: str,
    dataset: StudyDataset,
    fingerprint: Optional[Tuple[int, str]] = None,
) -> bool:
    """Write (or refresh) the columnar sidecar for a framed export.

    Best-effort: encoding or I/O failures log a warning and return
    ``False`` — the framed export is already durable, so a missing
    sidecar only costs the next load's speed.  The write is atomic, so
    readers never observe a torn sidecar.
    """
    from repro.simulation.transport import encode_shard_payload

    # A caller-supplied fingerprint marks the load-path rewrite site: a
    # framed re-parse refreshing a missing/stale sidecar.  The save
    # path (fingerprint=None) writes a brand-new sidecar instead.
    rebuild = fingerprint is not None
    try:
        if fingerprint is None:
            fingerprint = file_fingerprint(export_path)
        payload = encode_shard_payload(dataset, None, None, None)
        header = pickle.dumps(
            {"fingerprint": fingerprint, "clients": dataset.clients},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        path = sidecar_path(export_path)
        tmp_path = f"{path}.tmp-{os.getpid()}"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(MAGIC)
                handle.write(_LEN.pack(len(header)))
                handle.write(header)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
    except (OSError, MeasurementError, pickle.PicklingError) as error:
        _log.warning(
            "columnar sidecar write failed; loads fall back to frames",
            extra={"path": export_path, "error": str(error)},
        )
        return False
    if rebuild:
        SIDECAR_STATS.rebuilds += 1
        _trace_sidecar("rebuild", export_path)
    return True


def _read_header(
    view: memoryview, source: str
) -> Tuple[Dict[str, Any], int]:
    """Decode the sidecar header; returns (header, payload offset)."""
    if bytes(view[: len(MAGIC)]) != MAGIC:
        raise MeasurementError(f"{source}: not a columnar sidecar")
    length_end = len(MAGIC) + _LEN.size
    if len(view) < length_end:
        raise MeasurementError(
            f"{source}: sidecar truncated inside its length header"
        )
    (header_len,) = _LEN.unpack(view[len(MAGIC) : length_end])
    header_end = length_end + header_len
    if header_end > len(view):
        raise MeasurementError(
            f"{source}: sidecar truncated inside its header"
        )
    header = pickle.loads(view[length_end:header_end])
    if (
        not isinstance(header, dict)
        or "fingerprint" not in header
        or "clients" not in header
    ):
        raise MeasurementError(
            f"{source}: sidecar header is missing required fields"
        )
    return header, header_end


def load_sidecar(
    export_path: str, fingerprint: Optional[Tuple[int, str]] = None
) -> Optional[StudyDataset]:
    """Load a dataset through its columnar sidecar, or ``None``.

    Returns ``None`` — never raises — when the sidecar is absent, torn,
    structurally invalid, or derived from different export bytes than
    the file currently at ``export_path``; the caller then parses the
    frames.  On success the sample columns are decoded through zero-copy
    numpy views over the memory-mapped sidecar (numpy keeps the mapping
    alive while any view references it), so rebuilding the dataset costs
    straight buffer copies into its sinks — no JSON, no base64, no
    per-sample Python.
    """
    from repro.simulation.transport import decode_shard_payload

    path = sidecar_path(export_path)
    try:
        handle = open(path, "rb")
    except OSError:
        SIDECAR_STATS.fallbacks += 1
        _trace_sidecar("miss", export_path, reason="absent")
        return None
    try:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty or unmappable file: treat as absent.
            SIDECAR_STATS.fallbacks += 1
            _trace_sidecar("miss", export_path, reason="empty")
            return None
    finally:
        handle.close()
    try:
        view = memoryview(mapped)
        header, payload_start = _read_header(view, path)
        if fingerprint is None:
            fingerprint = file_fingerprint(export_path)
        if tuple(header["fingerprint"]) != tuple(fingerprint):
            _log.info(
                "columnar sidecar is stale; re-parsing frames",
                extra={"path": export_path},
            )
            SIDECAR_STATS.fallbacks += 1
            _trace_sidecar("miss", export_path, reason="stale")
            return None
        dataset, _, _, _ = decode_shard_payload(
            view[payload_start:], tuple(header["clients"])
        )
        SIDECAR_STATS.hits += 1
        _trace_sidecar("hit", export_path)
        return dataset
    except (
        MeasurementError,
        OSError,
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
        struct.error,
    ) as error:
        _log.warning(
            "columnar sidecar unreadable; re-parsing frames",
            extra={"path": export_path, "error": str(error)},
        )
        SIDECAR_STATS.fallbacks += 1
        _trace_sidecar("miss", export_path, reason="unreadable")
        return None
