"""Hybrid anycast + DNS redirection (§6's closing proposal).

"The key idea is to use DNS-based redirection for a small subset of poor
performing clients, while leaving others to anycast."  The hybrid scheme
wraps the history-based predictor and redirects a group only when the
predicted gain over anycast clears a threshold, bounding both the blast
radius of bad predictions and the operational footprint of the DNS layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import PredictionError
from repro.core.predictor import (
    HistoryBasedPredictor,
    Prediction,
    PredictorConfig,
)
from repro.dns.authoritative import ANYCAST_TARGET, StaticMappingPolicy
from repro.measurement.aggregate import GroupedDailyAggregates


@dataclass(frozen=True)
class HybridConfig:
    """Hybrid-scheme parameters.

    Attributes:
        predictor: The underlying §6 predictor configuration.
        min_predicted_gain_ms: Redirect a group only when the predicted
            improvement over anycast is at least this much.
        max_redirected_fraction: Upper bound on the fraction of groups
            redirected (largest predicted gains win), keeping the DNS
            control plane small — the scalability argument of §6.
    """

    predictor: PredictorConfig = PredictorConfig()
    min_predicted_gain_ms: float = 10.0
    max_redirected_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.min_predicted_gain_ms < 0:
            raise PredictionError("min_predicted_gain_ms must be >= 0")
        if not 0.0 < self.max_redirected_fraction <= 1.0:
            raise PredictionError(
                "max_redirected_fraction must be in (0, 1]"
            )


class HybridRedirector:
    """Selective DNS redirection on top of anycast."""

    def __init__(self, config: Optional[HybridConfig] = None) -> None:
        self._config = config or HybridConfig()
        self._predictor = HistoryBasedPredictor(self._config.predictor)

    @property
    def config(self) -> HybridConfig:
        """The hybrid parameters."""
        return self._config

    @property
    def predictor(self) -> HistoryBasedPredictor:
        """The wrapped history-based predictor."""
        return self._predictor

    def select_redirections(
        self, aggregates: GroupedDailyAggregates, day: int
    ) -> Dict[str, Prediction]:
        """Groups worth redirecting, per the gain threshold and cap.

        Groups whose prediction is anycast, whose anycast baseline was not
        measurable, or whose predicted gain is below the threshold stay on
        anycast and are omitted.
        """
        cfg = self._config
        candidates = [
            prediction
            for prediction in self._predictor.predict_day(aggregates, day).values()
            if prediction.target_id != ANYCAST_TARGET
            and prediction.anycast_metric_ms is not None
            and prediction.predicted_gain_ms >= cfg.min_predicted_gain_ms
        ]
        total_groups = len(aggregates.groups_on(day))
        if total_groups == 0:
            return {}
        cap = max(1, int(cfg.max_redirected_fraction * total_groups))
        candidates.sort(
            key=lambda p: (-p.predicted_gain_ms, p.group)
        )
        return {p.group: p for p in candidates[:cap]}

    def build_policy(
        self,
        ecs_aggregates: Optional[GroupedDailyAggregates] = None,
        ldns_aggregates: Optional[GroupedDailyAggregates] = None,
        day: int = 0,
    ) -> StaticMappingPolicy:
        """A deployable policy redirecting only the selected groups."""
        if ecs_aggregates is None and ldns_aggregates is None:
            raise PredictionError("need ECS or LDNS aggregates (or both)")
        ecs_mapping: Dict[str, str] = {}
        ldns_mapping: Dict[str, str] = {}
        if ecs_aggregates is not None:
            ecs_mapping = {
                group: prediction.target_id
                for group, prediction in self.select_redirections(
                    ecs_aggregates, day
                ).items()
            }
        if ldns_aggregates is not None:
            ldns_mapping = {
                group: prediction.target_id
                for group, prediction in self.select_redirections(
                    ldns_aggregates, day
                ).items()
            }
        return StaticMappingPolicy(
            ecs_mapping=ecs_mapping, ldns_mapping=ldns_mapping
        )
