"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report`` — run a full study and print every figure's rows.
* ``catalog`` — print the §4 CDN deployment-size table.
* ``troubleshoot`` — the §5 workflow: worst anycast vantages + traceroutes.
* ``failover`` — withdraw a front-end and trace the §2 overload cascade.
* ``telemetry`` — pretty-print a saved telemetry snapshot as a run report.
* ``trace`` — render a trace timeline summary from a ``trace.json``.
* ``serve`` — run a campaign, then stream it through the live service
  (online §6 predictions at every day close).
* ``replay`` — stream a recorded dataset through the live service at a
  configurable speed-up, with checkpoint/resume and fault kill points.

Study-running commands also accept ``--telemetry-out`` (export the run's
merged telemetry snapshot as JSON, or Prometheus text for ``.prom``/
``.txt`` paths), ``--trace-out`` (export the run's merged trace timeline
as Chrome/Perfetto ``trace.json``), ``--progress`` (a live stderr
ticker fed by worker heartbeats), ``--history-out`` (append the run's
perf record to a ``BENCH_history.json`` ledger), and ``--log-level`` /
``--log-format`` (structured logging on stderr, quiet unless
requested).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.anycast_perf import anycast_penalty_ccdf
from repro.analysis.load import load_latency_tradeoff, shed_traffic_fractions
from repro.analysis.poor_paths import poor_path_duration, poor_path_prevalence
from repro.analysis.prediction_eval import evaluate_prediction
from repro.cdn.catalog import catalog
from repro.cdn.failover import WithdrawalSimulator
from repro.clients.population import ClientPopulationConfig
from repro.core.predictor import PredictorConfig
from repro.core.study import AnycastStudy
from repro.faults import FaultPlan
from repro.faults.inject import InjectedCrashError
from repro.geo.coords import haversine_km
from repro.errors import StorageError
from repro.measurement.export import load_dataset, recover_dataset, save_dataset
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ACCURACY,
)
from repro.measurement.storage import atomic_write_text
from repro.measurement.probes import ProbeNetwork
from repro.net.topology import AsRole
from repro.service.ingest import LiveService, ServiceConfig
from repro.service.predictor import predictions_to_obj
from repro.service.replay import dirty_events, events_from_dataset
from repro.simulation.campaign import CampaignConfig, CampaignProgress
from repro.simulation.clock import SimulationCalendar
from repro.simulation.dataset import StudyDataset
from repro.simulation.episodes import OverloadPlan
from repro.simulation.scenario import ScenarioConfig
from repro.telemetry import (
    BenchHistory,
    RunContext,
    Telemetry,
    TelemetrySnapshot,
    TraceLog,
    config_digest,
    configure_logging,
    format_run_report,
    format_trace_report,
    manifest_path_for,
    record_from_snapshot,
    write_run_manifest,
)

#: Process exit code of a service run killed by an injected crash — the
#: chaos tests' "process died mid-stream" signal, distinct from argparse
#: errors (2) and analysis failures.
EXIT_SERVICE_CRASHED = 3


def _study_config(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        seed=args.seed,
        population=ClientPopulationConfig(prefix_count=args.prefixes),
        calendar=SimulationCalendar(num_days=args.days),
        workers=getattr(args, "workers", 1),
        engine=getattr(args, "engine", "reference"),
    )


def _campaign_config(args: argparse.Namespace) -> CampaignConfig:
    """Campaign knobs from the CLI's resilience flags.

    ``--resume-from DIR`` both reads existing shard checkpoints from
    ``DIR`` and keeps spilling new ones there, so an interrupted campaign
    can be re-invoked with the same flag until it completes.
    """
    fault_plan = None
    spec = getattr(args, "fault_plan", None)
    if spec:
        fault_plan = FaultPlan.from_spec(spec)
    resume_from = getattr(args, "resume_from", None)
    checkpoint_dir = resume_from or getattr(args, "checkpoint_dir", None)
    listener = None
    if getattr(args, "progress", False):
        listener = _progress_ticker()
    return CampaignConfig(
        progress_listener=listener,
        fault_plan=fault_plan,
        max_retries=getattr(args, "max_retries", 2),
        shard_timeout=getattr(args, "shard_timeout", None),
        allow_partial=bool(getattr(args, "allow_partial", False)),
        checkpoint_dir=checkpoint_dir,
        resume=resume_from is not None,
        validation=getattr(args, "validation_policy", "lenient"),
        sketch_threshold=getattr(args, "sketch_threshold", None),
        sketch_accuracy=getattr(args, "sketch_accuracy", None)
        or DEFAULT_RELATIVE_ACCURACY,
        sketch_max_buckets=getattr(args, "sketch_max_buckets", None)
        or DEFAULT_MAX_BUCKETS,
        frontend_capacity=getattr(args, "frontend_capacity", None),
        overload_plan=(
            OverloadPlan.from_spec(getattr(args, "overload_plan"))
            if getattr(args, "overload_plan", None)
            else None
        ),
        load_policy=getattr(args, "load_policy", None) or "none",
    )


def _progress_ticker():
    """A ``progress_listener`` rendering a one-line stderr ticker."""

    def listener(progress: CampaignProgress) -> None:
        done = (
            progress.num_days > 0
            and progress.days_completed >= progress.num_days
        )
        end = "\n" if done else ""
        print(f"\r{progress.format()}", end=end, file=sys.stderr, flush=True)

    return listener


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prefixes", type=int, default=400,
        help="client /24 count (default 400)",
    )
    parser.add_argument(
        "--days", type=int, default=7,
        help="campaign length in days (default 7)",
    )
    parser.add_argument(
        "--seed", type=int, default=2015, help="scenario seed (default 2015)"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes for the campaign (default 1; results are "
            "bit-identical for any value)"
        ),
    )
    parser.add_argument(
        "--engine", choices=("reference", "vectorized", "matrix"),
        default="reference",
        help=(
            "measurement engine (default reference; vectorized is several "
            "times faster and matrix faster still — the two batched "
            "engines are bit-identical to each other and across worker "
            "counts, and statistically equivalent to reference)"
        ),
    )
    parser.add_argument(
        "--fault-plan", metavar="SPEC",
        help=(
            "inject deterministic faults: comma-joined kind[:count][@shard] "
            "specs, kinds crash/hang/exception/corrupt/merge "
            "(e.g. 'crash:1,exception:2@0'); surviving runs stay "
            "bit-identical to the fault-free run; record-level kinds "
            "record-corrupt/record-clock-skew/record-truncate dirty "
            "individual measurements before the validation gate"
        ),
    )
    parser.add_argument(
        "--validation-policy", choices=("strict", "lenient", "repair"),
        default="lenient",
        help=(
            "invalid-record handling at the ingest gate: strict raises, "
            "lenient quarantines and drops (default), repair clamps "
            "recoverable values and quarantines the rest"
        ),
    )
    parser.add_argument(
        "--quarantine-out", metavar="PATH",
        help="write the run's quarantine log (reasons, counts, samples) here",
    )
    parser.add_argument(
        "--sketch-threshold", type=int, metavar="N",
        help=(
            "promote latency digests to bounded sketches above N samples "
            "and switch the diff/passive logs to their bounded forms — "
            "campaign memory becomes independent of client count; "
            "percentiles then answer within --sketch-accuracy, and "
            "per-client passive figures (4/7/8) become unavailable "
            "(default: exact mode, no sketches)"
        ),
    )
    parser.add_argument(
        "--sketch-accuracy", type=float, metavar="ALPHA",
        help=(
            "relative quantile accuracy of the sketches used above "
            "--sketch-threshold (default 0.01 = 1%%)"
        ),
    )
    parser.add_argument(
        "--sketch-max-buckets", type=int, metavar="N",
        help=(
            "hard per-sketch bucket cap; a sketch over the cap halves "
            "its resolution (doubling its error bound) until it fits, "
            "making peak memory flat in client count (default 512)"
        ),
    )
    parser.add_argument(
        "--frontend-capacity", type=float, metavar="HEADROOM",
        help=(
            "give every front end a finite capacity provisioned as "
            "HEADROOM times its baseline expected load (must exceed 1.0, "
            "e.g. 1.5); turns on the convex queueing-delay latency term "
            "and per-front-end utilization/shed telemetry"
        ),
    )
    parser.add_argument(
        "--overload-plan", metavar="SPEC",
        help=(
            "inject deterministic overload episodes: comma-joined "
            "kind[:count][@day] specs, kinds flash-crowd/regional-event/"
            "drain/failure (e.g. 'flash-crowd:1@2,drain:1'); requires "
            "--frontend-capacity; same seed + spec compiles to the same "
            "episodes on every shard and engine"
        ),
    )
    parser.add_argument(
        "--load-policy", choices=("none", "withdraw", "fastroute"),
        default="none",
        help=(
            "load-management response to overload (requires "
            "--frontend-capacity): none serves everything through "
            "saturated front ends, withdraw hard-withdraws any front end "
            "that exceeds capacity (the §2 cascade baseline), fastroute "
            "sheds traffic down the anycast layer rings with per-front-"
            "end shed fractions evolved from local signals only"
        ),
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per shard after its first attempt (default 2)",
    )
    parser.add_argument(
        "--shard-timeout", type=float, metavar="SECONDS",
        help=(
            "declare a shard attempt hung after this many seconds and "
            "retry it (default: wait forever)"
        ),
    )
    parser.add_argument(
        "--allow-partial", action="store_true",
        help=(
            "finish with a partial dataset (manifest lists the missing "
            "client ranges) instead of failing when a shard exhausts its "
            "retries"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="spill each completed shard's partial dataset here",
    )
    parser.add_argument(
        "--resume-from", metavar="DIR",
        help=(
            "reuse intact shard checkpoints from DIR (and keep "
            "checkpointing there); implies --checkpoint-dir DIR"
        ),
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH",
        help=(
            "write the run's merged telemetry snapshot here (JSON; "
            "Prometheus text format for .prom/.txt paths)"
        ),
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help=(
            "write the run's merged trace timeline here as Chrome/"
            "Perfetto trace-event JSON (one lane per shard; open in "
            "ui.perfetto.dev or chrome://tracing, or summarize with "
            "'repro trace')"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help=(
            "render a live one-line progress ticker on stderr (days, "
            "beacons/s, shard completion, retries) fed by worker "
            "heartbeats"
        ),
    )
    parser.add_argument(
        "--history-out", metavar="PATH",
        help=(
            "append this run's perf record (engine, beacons/s, phase "
            "splits, peak RSS, dataset digest) to a BENCH_history.json "
            "ledger at PATH; check it with tools/bench_history.py"
        ),
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        help="enable structured logging on stderr at this level",
    )
    parser.add_argument(
        "--log-format", choices=("json", "text"),
        help="structured log line format (default text; implies --log-level info)",
    )


def _configure_telemetry(args: argparse.Namespace, config: ScenarioConfig) -> None:
    """Install the structured-log handler when either flag was given."""
    if args.log_level is None and args.log_format is None:
        return
    configure_logging(
        level=args.log_level or "info",
        fmt=args.log_format or "text",
        context=RunContext(
            seed=config.seed,
            engine=config.engine,
            workers=config.workers,
            config_hash=config_digest(config),
        ),
    )


def _export_telemetry(args: argparse.Namespace, study: AnycastStudy) -> None:
    """Write the study's telemetry snapshot if ``--telemetry-out`` was given."""
    if not args.telemetry_out:
        return
    snapshot = study.telemetry_snapshot()
    path = args.telemetry_out
    if path.endswith((".prom", ".txt")):
        content = snapshot.to_prometheus()
    else:
        content = snapshot.to_json()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
        if not content.endswith("\n"):
            handle.write("\n")
    print(f"wrote telemetry snapshot to {path}")


def _export_trace(args: argparse.Namespace, study: AnycastStudy) -> None:
    """Write the run's trace timeline if ``--trace-out`` was given."""
    if not getattr(args, "trace_out", None):
        return
    snapshot = study.telemetry_snapshot()
    trace = snapshot.trace
    if trace is None or not trace.events:
        print("no trace events recorded; skipping --trace-out", file=sys.stderr)
        return
    atomic_write_text(
        args.trace_out,
        json.dumps(trace.to_perfetto_obj(), indent=2, sort_keys=True) + "\n",
    )
    print(
        f"wrote trace timeline ({len(trace.events)} events) to "
        f"{args.trace_out}"
    )


def _append_history(
    args: argparse.Namespace, study: AnycastStudy, label: str
) -> None:
    """Append this run's perf record if ``--history-out`` was given."""
    if not getattr(args, "history_out", None):
        return
    record = record_from_snapshot(
        study.telemetry_snapshot(), label, dataset=study.dataset
    )
    history = BenchHistory.load(args.history_out)
    history.append(record)
    history.save(args.history_out)
    print(
        f"appended perf record ({record.engine}, "
        f"{record.beacons_per_second:,.0f} beacons/s) to {args.history_out}"
    )


def _export_quarantine(args: argparse.Namespace, study: AnycastStudy) -> None:
    """Write the run's quarantine log if ``--quarantine-out`` was given."""
    if not getattr(args, "quarantine_out", None):
        return
    quarantine = study.quarantine
    atomic_write_text(
        args.quarantine_out,
        json.dumps(quarantine.to_obj(), indent=2, sort_keys=True) + "\n",
    )
    print(
        f"wrote quarantine log ({quarantine.total} records) to "
        f"{args.quarantine_out}"
    )


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags of the live-service loop (``serve`` and ``replay``)."""
    parser.add_argument(
        "--window-days", type=int, default=1, metavar="N",
        help="sliding prediction window length in days (§6 default: 1)",
    )
    parser.add_argument(
        "--metric-percentile", type=float, default=25.0, metavar="P",
        help="latency percentile scoring each target (§6 default: 25)",
    )
    parser.add_argument(
        "--min-samples", type=int, default=20, metavar="N",
        help=(
            "measurements a (group, target) needs inside the window to "
            "be considered (§6 default: 20)"
        ),
    )
    parser.add_argument(
        "--speed", type=float, default=0.0, metavar="X",
        help=(
            "replay pacing in simulated seconds per wall-clock second "
            "(86400 streams one day per second; default 0 = unpaced)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help=(
            "also spill a service checkpoint every N processed events "
            "(default 0 = at day closes only)"
        ),
    )
    parser.add_argument(
        "--predictions-out", metavar="PATH",
        help="write every closed day's online predictions here (JSON)",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH",
        help=(
            "write the service run manifest (event counts, predictions/"
            "stream/quarantine digests) here (JSON)"
        ),
    )


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    """Service knobs from the CLI flags (shared by serve/replay)."""
    fault_plan = None
    spec = getattr(args, "fault_plan", None)
    if spec:
        fault_plan = FaultPlan.from_spec(spec)
    resume_from = getattr(args, "resume_from", None)
    checkpoint_dir = resume_from or getattr(args, "checkpoint_dir", None)
    return ServiceConfig(
        window_days=args.window_days,
        predictor=PredictorConfig(
            metric_percentile=args.metric_percentile,
            min_samples=args.min_samples,
        ),
        validation=getattr(args, "validation_policy", "lenient"),
        sketch_threshold=getattr(args, "sketch_threshold", None),
        sketch_accuracy=getattr(args, "sketch_accuracy", None)
        or DEFAULT_RELATIVE_ACCURACY,
        sketch_max_buckets=getattr(args, "sketch_max_buckets", None)
        or DEFAULT_MAX_BUCKETS,
        checkpoint_dir=checkpoint_dir,
        resume=resume_from is not None,
        checkpoint_every_events=args.checkpoint_every,
        seed=args.seed,
        fault_plan=fault_plan,
        speed=args.speed,
    )


def _run_service(
    args: argparse.Namespace, dataset: StudyDataset, label: str
) -> int:
    """Stream a dataset through the live service and write its outputs."""
    config = _service_config(args)
    telemetry = Telemetry(
        context={"seed": config.seed, "mode": label}
    )
    listener = (
        _progress_ticker() if getattr(args, "progress", False) else None
    )
    events = dirty_events(
        dataset, events_from_dataset(dataset), config.fault_plan, config.seed
    )
    service = LiveService(
        config,
        num_days=dataset.calendar.num_days,
        telemetry=telemetry,
        progress_listener=listener,
        source_fingerprint=dataset.digest(),
    )
    try:
        result = service.run_stream(events)
    except InjectedCrashError as error:
        print(f"service crashed mid-stream: {error}", file=sys.stderr)
        if config.checkpoint_dir:
            print(
                f"resume with --resume-from {config.checkpoint_dir}",
                file=sys.stderr,
            )
        return EXIT_SERVICE_CRASHED
    print(
        f"{label} complete: {result.events_total:,} events, "
        f"{result.beacons_admitted:,} beacons admitted, "
        f"{result.days_closed} days closed"
    )
    if result.resumed_from_cursor:
        print(
            f"resumed from checkpoint at event {result.resumed_from_cursor:,}"
        )
    if result.retries:
        print(f"absorbed {result.retries} transient fault(s) via restart")
    print(f"predictions digest: {result.predictions_digest}")
    print(f"stream digest:      {result.stream_digest}")
    print(f"quarantine digest:  {result.quarantine_digest}")
    if args.predictions_out:
        atomic_write_text(
            args.predictions_out,
            json.dumps(
                predictions_to_obj(result.predictions),
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )
        print(f"wrote online predictions to {args.predictions_out}")
    if args.manifest_out:
        atomic_write_text(
            args.manifest_out,
            json.dumps(result.manifest(), indent=2, sort_keys=True) + "\n",
        )
        print(f"wrote service manifest to {args.manifest_out}")
    if getattr(args, "quarantine_out", None):
        atomic_write_text(
            args.quarantine_out,
            json.dumps(
                service.gate.quarantine.to_obj(), indent=2, sort_keys=True
            )
            + "\n",
        )
        print(
            f"wrote quarantine log ({service.gate.quarantine.total} "
            f"records) to {args.quarantine_out}"
        )
    snapshot = telemetry.snapshot()
    if getattr(args, "telemetry_out", None):
        path = args.telemetry_out
        if path.endswith((".prom", ".txt")):
            content = snapshot.to_prometheus()
        else:
            content = snapshot.to_json()
        if not content.endswith("\n"):
            content += "\n"
        atomic_write_text(path, content)
        print(f"wrote telemetry snapshot to {path}")
    if getattr(args, "trace_out", None):
        trace = snapshot.trace
        if trace is None or not trace.events:
            print(
                "no trace events recorded; skipping --trace-out",
                file=sys.stderr,
            )
        else:
            atomic_write_text(
                args.trace_out,
                json.dumps(trace.to_perfetto_obj(), indent=2, sort_keys=True)
                + "\n",
            )
            print(
                f"wrote trace timeline ({len(trace.events)} events) to "
                f"{args.trace_out}"
            )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run a campaign, then stream its dataset through the live service.

    The campaign itself runs clean and exact-mode (its dataset is the
    stream source of record); ``--fault-plan``, ``--validation-policy``,
    ``--sketch-*``, and the checkpoint flags all apply to the *service*
    loop consuming the stream.
    """
    config = _study_config(args)
    _configure_telemetry(args, config)
    study = AnycastStudy(config)
    dataset = study.dataset
    print(
        f"campaign dataset ready: {dataset.measurement_count:,} "
        f"measurements over {dataset.calendar.num_days} days; streaming"
    )
    return _run_service(args, dataset, "serve")


def cmd_replay(args: argparse.Namespace) -> int:
    """Stream a recorded dataset export through the live service."""
    if args.log_level is not None or args.log_format is not None:
        configure_logging(
            level=args.log_level or "info",
            fmt=args.log_format or "text",
            context=RunContext(seed=args.seed, engine="service"),
        )
    try:
        dataset = load_dataset(args.dataset)
    except StorageError as error:
        print(f"damaged dataset: {error}", file=sys.stderr)
        return 2
    return _run_service(args, dataset, "replay")


def cmd_report(args: argparse.Namespace) -> int:
    """Run a study and print (or write) the full figure report."""
    config = _study_config(args)
    _configure_telemetry(args, config)
    study = AnycastStudy(config, campaign=_campaign_config(args))
    report = study.full_report()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        write_run_manifest(
            manifest_path_for(args.out),
            study.telemetry_snapshot(),
            dataset=study.dataset,
            extra={"artifact": args.out},
        )
        print(f"wrote report to {args.out}")
    else:
        print(report)
    _export_quarantine(args, study)
    _export_telemetry(args, study)
    _export_trace(args, study)
    _append_history(args, study, "repro-report")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a campaign and persist its dataset as JSON."""
    config = _study_config(args)
    _configure_telemetry(args, config)
    study = AnycastStudy(config, campaign=_campaign_config(args))
    dataset = study.dataset
    save_dataset(dataset, args.dataset)
    if dataset.is_partial:
        print(
            "warning: partial dataset — missing client ranges "
            f"{list(dataset.missing_ranges())} "
            f"(coverage {dataset.coverage_fraction:.1%})",
            file=sys.stderr,
        )
    manifest_path = manifest_path_for(args.dataset)
    write_run_manifest(
        manifest_path,
        study.telemetry_snapshot(),
        dataset=dataset,
        extra={"artifact": args.dataset},
    )
    print(
        f"campaign complete: {dataset.beacon_count:,} beacons, "
        f"{dataset.measurement_count:,} measurements -> {args.dataset}"
    )
    print(f"wrote run manifest to {manifest_path}")
    print(study.campaign_stats.format())
    _export_quarantine(args, study)
    _export_telemetry(args, study)
    _export_trace(args, study)
    _append_history(args, study, "repro-run")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Pretty-print a saved telemetry snapshot as a run report."""
    with open(args.snapshot, "r", encoding="utf-8") as handle:
        snapshot = TelemetrySnapshot.from_json(handle.read())
    if args.prometheus:
        print(snapshot.to_prometheus(), end="")
    else:
        print(format_run_report(snapshot, top=args.top))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render a timeline summary from a saved trace.

    Accepts both serializations: the Perfetto ``trace.json`` written by
    ``--trace-out`` (sniffed by its ``traceEvents`` key) and the
    compact event-list form embedded in telemetry snapshots.
    """
    with open(args.trace, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if "traceEvents" in document:
        trace = TraceLog.from_perfetto_obj(document)
    elif "events" in document:
        trace = TraceLog.from_obj(document)
    elif "trace" in document:
        # A telemetry snapshot with an embedded trace also works.
        trace = TraceLog.from_obj(document["trace"])
    else:
        print(
            f"{args.trace}: neither a Perfetto trace nor a repro trace "
            "export",
            file=sys.stderr,
        )
        return 2
    print(format_trace_report(trace), end="")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Replay dataset-only figures from a saved campaign."""
    try:
        dataset = load_dataset(args.dataset)
    except StorageError as error:
        if not args.recover:
            print(
                f"damaged dataset: {error}\n"
                "(re-run with --recover to salvage intact records)",
                file=sys.stderr,
            )
            return 2
        dataset, recovery = recover_dataset(args.dataset)
        report = recovery.report
        print(
            "recovered damaged dataset: "
            f"{recovery.recovered_measurement_count:,}/"
            f"{recovery.claimed_measurement_count:,} measurements salvaged "
            f"({report.frames_corrupt} corrupt frames"
            f"{', torn tail' if report.torn_tail else ''})",
            file=sys.stderr,
        )
    sections = {
        "fig3": lambda: anycast_penalty_ccdf(dataset).format(),
        "fig5": lambda: poor_path_prevalence(dataset).format(),
        "fig6": lambda: poor_path_duration(dataset).format(),
        "fig9": lambda: evaluate_prediction(dataset).format(),
        "load": lambda: load_latency_tradeoff(dataset).format(),
        "shed": lambda: shed_traffic_fractions(dataset).format(),
    }
    wanted = args.figures
    if not wanted:
        # The load figures only exist for capacity-enabled campaigns;
        # default to them exactly when the dataset can answer.
        wanted = ["fig3", "fig5", "fig6", "fig9"]
        if dataset.load_summary is not None:
            wanted += ["load", "shed"]
    for name in wanted:
        if name not in sections:
            print(
                f"unknown figure {name!r}; dataset-only figures: "
                f"{', '.join(sorted(sections))}",
                file=sys.stderr,
            )
            return 2
        print(sections[name]())
        print()
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    """Print the §4 CDN deployment-size table."""
    for entry in catalog(include_bing=True, bing_locations=args.bing_locations):
        flags = []
        if entry.is_outlier:
            flags.append("outlier")
        if entry.is_anycast:
            flags.append("anycast")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{entry.name:24s} {entry.locations:5d}{suffix}")
    return 0


def cmd_troubleshoot(args: argparse.Namespace) -> int:
    """Find the worst anycast vantages and print their traceroutes."""
    config = _study_config(args)
    _configure_telemetry(args, config)
    study = AnycastStudy(config)
    scenario = study.scenario
    topology = scenario.topology
    network = scenario.network
    probes = ProbeNetwork(topology, coverage=1.0, seed=args.seed)

    cases = []
    for access in topology.ases_with_role(AsRole.ACCESS):
        for metro in sorted(access.pop_metros):
            location = topology.metro_db.get(metro).location
            path = network.anycast_path(access.asn, metro, location)
            served = haversine_km(location, path.frontend.location)
            nearest = network.nearest_frontends(location, 1)[0]
            inflation = served - haversine_km(location, nearest.location)
            if inflation > args.min_inflation_km:
                cases.append((inflation, access.asn, metro))
    cases.sort(reverse=True)

    print(
        f"{len(cases)} vantages with anycast carried "
        f">{args.min_inflation_km:.0f} km past the nearest front-end"
    )
    for inflation, asn, metro in cases[: args.top]:
        result = probes.investigate(network, asn, metro)
        if result is None:
            continue
        anycast_trace, unicast_trace = result
        print("=" * 70)
        print(f"AS{asn} @ {metro}: +{inflation:.0f} km")
        print(anycast_trace.format())
        print("best unicast alternative:")
        print(unicast_trace.format())
    return 0


def cmd_failover(args: argparse.Namespace) -> int:
    """Withdraw a front-end and print the §2 overload cascade."""
    config = _study_config(args)
    _configure_telemetry(args, config)
    study = AnycastStudy(config)
    scenario = study.scenario
    simulator = WithdrawalSimulator(
        scenario.topology,
        scenario.deployment,
        scenario.clients,
        headroom=args.headroom,
    )
    frontend_id = args.frontend
    if frontend_id not in simulator.baseline_loads:
        known = ", ".join(sorted(simulator.baseline_loads)[:8])
        print(
            f"unknown front-end {frontend_id!r}; known ids start: {known}...",
            file=sys.stderr,
        )
        return 2
    result = simulator.cascade([frontend_id], max_rounds=args.max_rounds)
    print(result.format())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Analyzing the Performance of an Anycast CDN' "
            "(IMC 2015)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser(
        "report", help="run a study and print every figure"
    )
    _add_scale_arguments(report)
    report.add_argument("--out", help="write the report to a file")
    report.set_defaults(func=cmd_report)

    run = subparsers.add_parser(
        "run", help="run a campaign and save the dataset to JSON"
    )
    _add_scale_arguments(run)
    run.add_argument("dataset", help="output dataset path (JSON)")
    run.set_defaults(func=cmd_run)

    analyze = subparsers.add_parser(
        "analyze", help="analyze a saved dataset (dataset-only figures)"
    )
    analyze.add_argument("dataset", help="dataset path from 'run'")
    analyze.add_argument(
        "--figures", nargs="*",
        help=(
            "subset of figures: fig3 fig5 fig6 fig9 load shed (default: "
            "all that the dataset can answer; load/shed need a "
            "--frontend-capacity campaign)"
        ),
    )
    analyze.add_argument(
        "--recover", action="store_true",
        help=(
            "salvage intact records from a damaged framed dataset "
            "(torn tail, corrupt frames) instead of failing"
        ),
    )
    analyze.set_defaults(func=cmd_analyze)

    catalog_parser = subparsers.add_parser(
        "catalog", help="print the §4 CDN size table"
    )
    catalog_parser.add_argument(
        "--bing-locations", type=int, default=64,
        help="location count for the measured CDN row",
    )
    catalog_parser.set_defaults(func=cmd_catalog)

    troubleshoot = subparsers.add_parser(
        "troubleshoot", help="find and trace poor anycast vantages (§5)"
    )
    _add_scale_arguments(troubleshoot)
    troubleshoot.add_argument("--top", type=int, default=3)
    troubleshoot.add_argument("--min-inflation-km", type=float, default=300.0)
    troubleshoot.set_defaults(func=cmd_troubleshoot)

    failover = subparsers.add_parser(
        "failover", help="withdraw a front-end and trace the cascade (§2)"
    )
    _add_scale_arguments(failover)
    failover.add_argument("frontend", help="front-end id, e.g. fe-lon")
    failover.add_argument("--headroom", type=float, default=1.5)
    failover.add_argument("--max-rounds", type=int, default=10)
    failover.set_defaults(func=cmd_failover)

    telemetry = subparsers.add_parser(
        "telemetry",
        help="pretty-print a telemetry snapshot (from --telemetry-out)",
    )
    telemetry.add_argument("snapshot", help="snapshot JSON path")
    telemetry.add_argument(
        "--top", type=int, default=12,
        help="counters to show before folding the rest (default 12)",
    )
    telemetry.add_argument(
        "--prometheus", action="store_true",
        help="emit Prometheus text exposition format instead of the report",
    )
    telemetry.set_defaults(func=cmd_telemetry)

    trace = subparsers.add_parser(
        "trace",
        help="summarize a trace timeline (from --trace-out)",
    )
    trace.add_argument(
        "trace",
        help="trace path: Perfetto trace.json or a telemetry snapshot",
    )
    trace.set_defaults(func=cmd_trace)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run a campaign, then stream its dataset through the live "
            "online-predictor service"
        ),
    )
    _add_scale_arguments(serve)
    _add_service_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    replay = subparsers.add_parser(
        "replay",
        help=(
            "stream a recorded dataset (from 'run') through the live "
            "service at configurable speed-up"
        ),
    )
    replay.add_argument("dataset", help="dataset path from 'run'")
    replay.add_argument(
        "--seed", type=int, default=2015,
        help="service seed for fault-plan compilation (default 2015)",
    )
    replay.add_argument(
        "--fault-plan", metavar="SPEC",
        help=(
            "inject deterministic faults into the service loop: "
            "crash/exception specs kill or trip the consumer mid-stream; "
            "record-* specs dirty beacon values before the gate"
        ),
    )
    replay.add_argument(
        "--validation-policy", choices=("strict", "lenient", "repair"),
        default="lenient",
        help="invalid-record handling at the service's ingest gate",
    )
    replay.add_argument(
        "--quarantine-out", metavar="PATH",
        help="write the service's quarantine log here (JSON)",
    )
    replay.add_argument(
        "--sketch-threshold", type=int, metavar="N",
        help=(
            "promote the service window's digests to bounded sketches "
            "above N samples per (group, target) bucket"
        ),
    )
    replay.add_argument(
        "--sketch-accuracy", type=float, metavar="ALPHA",
        help="relative quantile accuracy above --sketch-threshold",
    )
    replay.add_argument(
        "--sketch-max-buckets", type=int, metavar="N",
        help="hard per-sketch bucket cap in the service window",
    )
    replay.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="spill service checkpoints here (at day closes)",
    )
    replay.add_argument(
        "--resume-from", metavar="DIR",
        help=(
            "restore the service from a checkpoint in DIR and continue "
            "the stream; implies --checkpoint-dir DIR"
        ),
    )
    replay.add_argument(
        "--telemetry-out", metavar="PATH",
        help=(
            "write the service telemetry snapshot here (JSON; Prometheus "
            "text format for .prom/.txt paths)"
        ),
    )
    replay.add_argument(
        "--trace-out", metavar="PATH",
        help=(
            "write the service trace timeline here as Chrome/Perfetto "
            "trace-event JSON"
        ),
    )
    replay.add_argument(
        "--progress", action="store_true",
        help="render a live one-line day/throughput ticker on stderr",
    )
    replay.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        help="enable structured logging on stderr at this level",
    )
    replay.add_argument(
        "--log-format", choices=("json", "text"),
        help="structured log line format (default text)",
    )
    _add_service_arguments(replay)
    replay.set_defaults(func=cmd_replay)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
