"""Tests for Gao–Rexford route computation (repro.net.bgp).

The hand-built topologies here exercise every selection and export rule on
graphs small enough to verify by inspection.
"""

import pytest

from repro.errors import RoutingError
from repro.geo.metros import MetroDatabase
from repro.net.bgp import Announcement, RouteComputation, relationship_preference
from repro.net.ip import IPv4Prefix
from repro.net.topology import (
    AsRole,
    AutonomousSystem,
    LinkKind,
    Relationship,
    TopologyBuilder,
    generate_topology,
)

PREFIX = IPv4Prefix.parse("203.0.113.0/24")


def make_as(asn, metros, role=AsRole.ACCESS):
    return AutonomousSystem(
        asn=asn, name=f"AS{asn}", role=role, pop_metros=frozenset(metros)
    )


def build(links, ases):
    """links: list of (a, b, kind). ases: dict asn -> metro list."""
    builder = TopologyBuilder(MetroDatabase())
    for asn, metros in ases.items():
        builder.add_as(make_as(asn, metros))
    for a, b, kind in links:
        builder.connect(a, b, kind)
    return builder.build()


C2P = LinkKind.CUSTOMER_PROVIDER
PEER = LinkKind.PEERING


class TestSelectionRules:
    def test_customer_preferred_over_peer(self):
        # 3 can reach origin 1 via customer 2 (longer) or via peer 1 directly.
        topo = build(
            links=[
                (1, 3, PEER),        # 1 and 3 peer
                (2, 3, C2P),         # 2 is customer of 3
                (1, 2, C2P),         # 1 is customer of 2
            ],
            ases={1: ["nyc"], 2: ["nyc"], 3: ["nyc"]},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        # AS3 hears (3,2,1) via customer 2 and (3,1) via peer 1.
        # Customer route wins despite being longer.
        entry = rib.get(3)
        assert entry.learned_from is Relationship.CUSTOMER
        assert entry.as_path == (3, 2, 1)

    def test_peer_preferred_over_provider(self):
        # 4 reaches origin 1 either via peer 2 or via its provider 3.
        topo = build(
            links=[
                (1, 2, C2P),   # 1 customer of 2
                (1, 3, C2P),   # 1 customer of 3
                (2, 4, PEER),
                (4, 3, C2P),   # 4 customer of 3
            ],
            ases={1: ["nyc"], 2: ["nyc"], 3: ["nyc"], 4: ["nyc"]},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        entry = rib.get(4)
        assert entry.learned_from is Relationship.PEER
        assert entry.as_path == (4, 2, 1)

    def test_shorter_path_wins_within_class(self):
        # Two customer chains to the origin of different lengths.
        topo = build(
            links=[
                (1, 2, C2P),
                (2, 4, C2P),
                (1, 3, C2P),
                (3, 5, C2P),
                (5, 4, C2P),
            ],
            ases={n: ["nyc"] for n in (1, 2, 3, 4, 5)},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        assert rib.get(4).as_path == (4, 2, 1)

    def test_tie_break_lowest_next_hop(self):
        topo = build(
            links=[
                (1, 2, C2P),
                (1, 3, C2P),
                (2, 4, C2P),
                (3, 4, C2P),
            ],
            ases={n: ["nyc"] for n in (1, 2, 3, 4)},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        assert rib.get(4).next_hop == 2


class TestExportRules:
    def test_peer_route_not_exported_to_peer(self):
        # 2 learns route from peer 1; 2 must NOT export it to peer 3.
        topo = build(
            links=[
                (1, 2, PEER),
                (2, 3, PEER),
            ],
            ases={1: ["nyc"], 2: ["nyc"], 3: ["nyc"]},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        assert rib.has_route(2)
        assert not rib.has_route(3)

    def test_provider_route_not_exported_upward(self):
        # 2 learns from its provider 1... i.e. origin is 2's provider; 2's
        # other provider 3 must not learn the route through 2.
        topo = build(
            links=[
                (2, 1, C2P),  # 2 customer of origin 1
                (2, 3, C2P),  # 2 customer of 3
            ],
            ases={1: ["nyc"], 2: ["nyc"], 3: ["nyc"]},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        assert rib.get(2).learned_from is Relationship.PROVIDER
        assert not rib.has_route(3)

    def test_peer_route_exported_to_customers(self):
        topo = build(
            links=[
                (1, 2, PEER),
                (3, 2, C2P),  # 3 customer of 2
            ],
            ases={1: ["nyc"], 2: ["nyc"], 3: ["nyc"]},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        assert rib.get(3).as_path == (3, 2, 1)
        assert rib.get(3).learned_from is Relationship.PROVIDER

    def test_customer_route_exported_everywhere(self):
        # origin 1 is customer of 2; 2 exports to peer 3 and provider 4.
        topo = build(
            links=[
                (1, 2, C2P),
                (2, 3, PEER),
                (2, 4, C2P),
            ],
            ases={n: ["nyc"] for n in (1, 2, 3, 4)},
        )
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        assert rib.get(3).as_path == (3, 2, 1)
        assert rib.get(4).as_path == (4, 2, 1)


class TestOriginMetroRestriction:
    def test_neighbor_without_shared_announce_metro_hears_nothing_direct(self):
        # Origin 1 has PoPs in nyc+lon, announces only at lon; neighbor 2
        # interconnects only at nyc -> no direct route.
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(make_as(1, ["nyc", "lon"]))
        builder.add_as(make_as(2, ["nyc"]))
        builder.connect(1, 2, PEER, ["nyc"])
        topo = builder.build()
        rib = RouteComputation(topo).compute(
            Announcement(PREFIX, 1, frozenset({"lon"}))
        )
        assert not rib.has_route(2)

    def test_handoff_metros_restricted_at_origin(self):
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(make_as(1, ["nyc", "lon"]))
        builder.add_as(make_as(2, ["nyc", "lon"]))
        builder.connect(1, 2, PEER, ["nyc", "lon"])
        topo = builder.build()
        rib = RouteComputation(topo).compute(
            Announcement(PREFIX, 1, frozenset({"lon"}))
        )
        assert rib.get(2).handoff_metros == frozenset({"lon"})

    def test_unknown_announce_metro_rejected(self):
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(make_as(1, ["nyc"]))
        topo = builder.build()
        with pytest.raises(RoutingError, match="no PoP"):
            RouteComputation(topo).compute(
                Announcement(PREFIX, 1, frozenset({"lon"}))
            )

    def test_empty_announce_metros_rejected(self):
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(make_as(1, ["nyc"]))
        topo = builder.build()
        with pytest.raises(RoutingError, match="empty"):
            RouteComputation(topo).compute(
                Announcement(PREFIX, 1, frozenset())
            )


class TestRibBasics:
    def test_origin_entry(self):
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(make_as(1, ["nyc"]))
        topo = builder.build()
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        entry = rib.get(1)
        assert entry.is_origin
        assert entry.next_hop is None
        assert entry.as_path == (1,)

    def test_missing_route_raises(self):
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(make_as(1, ["nyc"]))
        builder.add_as(make_as(2, ["lon"]))
        topo = builder.build()
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        with pytest.raises(RoutingError, match="no route"):
            rib.get(2)

    def test_preference_order(self):
        assert relationship_preference(Relationship.CUSTOMER) < (
            relationship_preference(Relationship.PEER)
        ) < relationship_preference(Relationship.PROVIDER)


class TestGeneratedTopologyInvariants:
    @pytest.fixture(scope="class")
    def topo_and_rib(self):
        topo = generate_topology(MetroDatabase(), seed=13)
        tier1 = topo.ases_with_role(AsRole.TIER1)[0]
        rib = RouteComputation(topo).compute(Announcement(PREFIX, tier1.asn))
        return topo, rib

    def test_universal_reachability_from_tier1(self, topo_and_rib):
        topo, rib = topo_and_rib
        assert len(rib) == len(topo)

    def test_paths_are_loop_free(self, topo_and_rib):
        _, rib = topo_and_rib
        for entry in rib:
            assert len(set(entry.as_path)) == len(entry.as_path)

    def test_next_hop_is_a_neighbor_with_valid_handoff(self, topo_and_rib):
        topo, rib = topo_and_rib
        for entry in rib:
            if entry.is_origin:
                continue
            neighbor = topo.neighbor(entry.asn, entry.next_hop)
            assert entry.handoff_metros
            assert entry.handoff_metros <= neighbor.metros

    def test_paths_are_valley_free(self, topo_and_rib):
        """Along every path (origin -> ...), relationships go
        customer->provider* [peer?] provider->customer* when read from the
        traffic direction; equivalently, once a path goes 'down' it never
        goes 'up' again."""
        topo, rib = topo_and_rib
        for entry in rib:
            path = entry.as_path
            # Walk from the client toward the origin; classify each hop.
            phases = []
            for here, there in zip(path, path[1:]):
                rel = topo.neighbor(here, there).relationship
                phases.append(rel)
            # Traffic direction == path direction.  Valid shape:
            # PROVIDER* (up), then at most one PEER, then CUSTOMER* (down).
            state = "up"
            for rel in phases:
                if state == "up":
                    if rel is Relationship.PROVIDER:
                        continue
                    state = "peer" if rel is Relationship.PEER else "down"
                elif state == "peer":
                    assert rel is Relationship.CUSTOMER, path
                    state = "down"
                else:
                    assert rel is Relationship.CUSTOMER, path
