"""FastRoute-style layered anycast load shedding.

§2 of the paper: "anycast is unaware of server load.  If a particular
front-end becomes overloaded, it is difficult to gradually direct traffic
away from that front-end, although there has been recent progress in this
area [23]."  Reference [23] is FastRoute (NSDI '15) — the load balancer
running on the very CDN the paper measures.

FastRoute's core idea, reproduced here:

* Front-ends are organized into *layers* of anycast rings.  Layer 0
  contains every front-end; higher layers contain progressively fewer,
  better-provisioned hubs, each ring announcing its own anycast prefix.
* DNS servers are colocated with front-ends and reached over the same
  anycast ring, so the DNS server answering a client's query sits at the
  front-end that would serve it — giving that front-end *local* control.
* When a front-end runs hot, its colocated DNS hands an increasing
  fraction of its queries the next layer's VIP instead of layer 0's.
  Shed traffic lands wherever the next ring's anycast takes it; no global
  coordination is needed.

The reproduction builds each ring's BGP state with the same machinery as
the main CDN and iterates per-front-end shed fractions until no
front-end exceeds capacity (or the top layer absorbs the remainder).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.cdn.backbone import CdnBackbone
from repro.cdn.deployment import CdnDeployment
from repro.clients.population import ClientPrefix
from repro.net.anycast import AnycastResolver
from repro.net.bgp import Announcement, RouteComputation
from repro.net.ip import IPv4Prefix
from repro.net.topology import Topology

#: Address block the per-layer anycast VIPs come from.
_LAYER_PREFIX_BASE = "192.0.2.0/24"


@dataclass(frozen=True)
class AnycastLayer:
    """One anycast ring: a subset of front-ends sharing a VIP."""

    index: int
    frontend_ids: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.frontend_ids:
            raise ConfigurationError(f"layer {self.index} has no front-ends")


class LayeredAnycastNetwork:
    """Per-layer anycast routing state over one topology.

    Layer 0 must contain every front-end; each higher layer must be a
    subset of the one below it (FastRoute's rings nest).
    """

    def __init__(
        self,
        topology: Topology,
        deployment: CdnDeployment,
        layers: Sequence[FrozenSet[str]],
    ) -> None:
        if not layers:
            raise ConfigurationError("need at least one layer")
        all_ids = {fe.frontend_id for fe in deployment.frontends}
        if set(layers[0]) != all_ids:
            raise ConfigurationError("layer 0 must contain every front-end")
        if len(layers[0]) < 2:
            # A single-front-end ring has nowhere to shed to; every
            # balancing question over it is degenerate.
            raise ConfigurationError(
                "layer 0 needs at least two front-ends"
            )
        for below, above in zip(layers, layers[1:]):
            if not set(above) <= set(below):
                raise ConfigurationError("layers must nest (ring k+1 ⊆ ring k)")
            if not above:
                raise ConfigurationError("layers cannot be empty")

        self._topology = topology
        self._deployment = deployment
        self._layers = tuple(
            AnycastLayer(index=i, frontend_ids=frozenset(ids))
            for i, ids in enumerate(layers)
        )
        metro_of = {
            fe.frontend_id: fe.metro_code for fe in deployment.frontends
        }
        computation = RouteComputation(topology)
        base = IPv4Prefix.parse(_LAYER_PREFIX_BASE)
        self._resolvers: List[AnycastResolver] = []
        self._backbones: List[CdnBackbone] = []
        for layer in self._layers:
            metros = frozenset(metro_of[i] for i in layer.frontend_ids)
            if layer.index == 0:
                # Layer 0 is the production ring: every PoP announces.
                metros = deployment.pop_metros
            announcement = Announcement(
                prefix=base,  # same VIP block; rings are distinct RIBs
                origin_asn=deployment.asn,
                origin_metros=metros,
            )
            rib = computation.compute(announcement)
            self._resolvers.append(AnycastResolver(topology, rib))
            self._backbones.append(
                CdnBackbone(
                    deployment,
                    topology.metro_db,
                    live_frontends=layer.frontend_ids,
                )
            )

    @property
    def layers(self) -> Tuple[AnycastLayer, ...]:
        """The nested rings, layer 0 first."""
        return self._layers

    def serving_frontend(
        self, layer_index: int, client_asn: int, client_metro: str
    ) -> str:
        """Front-end id serving a client on one ring."""
        if not 0 <= layer_index < len(self._layers):
            raise ConfigurationError(f"no layer {layer_index}")
        resolver = self._resolvers[layer_index]
        ingress = resolver.ingress_metro(client_asn, client_metro)
        return self._backbones[layer_index].frontend_for_ingress(
            ingress
        ).frontend_id


@dataclass(frozen=True)
class ShedDecision:
    """One front-end's local shedding state."""

    frontend_id: str
    layer_index: int
    shed_fraction: float


@dataclass(frozen=True)
class FastRouteResult:
    """Converged load-shedding state.

    Attributes:
        loads: Final per-front-end load.
        decisions: Per-front-end shed fraction at each layer where the
            front-end had to shed.
        iterations: Relaxation rounds used.
        converged: Whether every front-end ended within capacity.
    """

    loads: Dict[str, float]
    decisions: Tuple[ShedDecision, ...]
    iterations: int
    converged: bool

    def shed_fraction(self, frontend_id: str, layer_index: int = 0) -> float:
        """The shed fraction a front-end applied on a layer (0 if none)."""
        for decision in self.decisions:
            if (
                decision.frontend_id == frontend_id
                and decision.layer_index == layer_index
            ):
                return decision.shed_fraction
        return 0.0

    def format(self) -> str:
        """Summary of who shed how much."""
        lines = [
            f"FastRoute shedding ({'converged' if self.converged else 'NOT converged'}, "
            f"{self.iterations} rounds):"
        ]
        for decision in sorted(
            self.decisions, key=lambda d: (-d.shed_fraction, d.frontend_id)
        ):
            lines.append(
                f"  layer {decision.layer_index}: {decision.frontend_id} "
                f"sheds {decision.shed_fraction:6.1%}"
            )
        if not self.decisions:
            lines.append("  no front-end needed to shed")
        return "\n".join(lines)


class FastRouteBalancer:
    """Iterative local load shedding across nested anycast rings.

    Each round, every over-capacity front-end raises the fraction of its
    arriving queries whose DNS answer points at the next ring — exactly
    the local knob FastRoute gives a front-end — and loads are recomputed.
    Shedding is proportional (a fraction of *every* client at the hot
    front-end), matching DNS-based probabilistic shedding.
    """

    def __init__(
        self,
        network: LayeredAnycastNetwork,
        clients: Sequence[ClientPrefix],
        capacities: Mapping[str, float],
        step: float = 0.25,
    ) -> None:
        if not clients:
            raise ConfigurationError("balancer needs clients")
        if not 0.0 < step <= 1.0:
            raise ConfigurationError("step must be in (0, 1]")
        self._network = network
        self._clients = tuple(clients)
        self._capacities = dict(capacities)
        self._step = step
        # Precompute each client's serving front-end per layer.
        self._assignment: List[Tuple[ClientPrefix, Tuple[str, ...]]] = []
        for client in self._clients:
            per_layer = tuple(
                network.serving_frontend(
                    layer.index, client.asn, client.home_metro
                )
                for layer in network.layers
            )
            self._assignment.append((client, per_layer))
        missing = {
            frontend_id
            for _, per_layer in self._assignment
            for frontend_id in per_layer
        } - set(self._capacities)
        if missing:
            raise ConfigurationError(
                f"capacities missing for {sorted(missing)}"
            )

    def _loads(self, shed: Dict[Tuple[str, int], float]) -> Dict[str, float]:
        loads: Dict[str, float] = {}
        for client, per_layer in self._assignment:
            weight = client.daily_queries
            for layer_index, frontend_id in enumerate(per_layer):
                is_last = layer_index == len(per_layer) - 1
                fraction = (
                    0.0
                    if is_last
                    else shed.get((frontend_id, layer_index), 0.0)
                )
                kept = weight * (1.0 - fraction)
                loads[frontend_id] = loads.get(frontend_id, 0.0) + kept
                weight -= kept
                if weight <= 0.0:
                    break
        return loads

    def balance(self, max_rounds: int = 40) -> FastRouteResult:
        """Relax shed fractions until every front-end fits (or give up)."""
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        shed: Dict[Tuple[str, int], float] = {}
        last_layer = len(self._network.layers) - 1
        loads = self._loads(shed)
        iterations = 0
        for _ in range(max_rounds):
            iterations += 1
            over = {
                frontend_id: load
                for frontend_id, load in loads.items()
                if load > self._capacities[frontend_id]
            }
            if not over:
                break
            changed = False
            for frontend_id, load in over.items():
                for layer_index in range(last_layer):
                    key = (frontend_id, layer_index)
                    current = shed.get(key, 0.0)
                    if current >= 1.0:
                        continue
                    excess = 1.0 - self._capacities[frontend_id] / load
                    increment = min(self._step, max(0.02, excess))
                    shed[key] = min(1.0, max(0.0, current + increment))
                    changed = True
                    break
            if not changed:
                break
            new_loads = self._loads(shed)
            if all(
                abs(new_loads.get(k, 0.0) - loads.get(k, 0.0)) < 1e-9
                for k in set(new_loads) | set(loads)
            ):
                # Shedding made no progress — the hot front-end is its own
                # next-ring target (a hub/core).  Rings cannot relieve a
                # core; it has to be provisioned.  Stop rather than spin.
                loads = new_loads
                break
            loads = new_loads
        converged = all(
            load <= self._capacities[frontend_id] + 1e-9
            for frontend_id, load in loads.items()
        )
        decisions = tuple(
            ShedDecision(
                frontend_id=frontend_id,
                layer_index=layer_index,
                shed_fraction=fraction,
            )
            for (frontend_id, layer_index), fraction in sorted(shed.items())
            if fraction > 0.0
        )
        return FastRouteResult(
            loads=loads,
            decisions=decisions,
            iterations=iterations,
            converged=converged,
        )


# ----------------------------------------------------------------------
# Day-by-day distributed load management (Sinha et al.)
# ----------------------------------------------------------------------
#
# FastRouteBalancer above answers the *static* question: given today's
# demand, which shed fractions fit?  The companion papers ("Distributed
# Load Management (Algorithms) in Anycast-based CDNs", Sinha et al.)
# study the *dynamic* one: each front-end's colocated DNS adjusts its
# shed fraction from its own load signal, day after day, with no global
# coordination.  DistributedLoadController is that per-front-end control
# law; LoadManagementSimulator evolves it (or the hard-withdrawal
# baseline §2 warns about) over a campaign calendar.


def provision_capacities(
    baseline_loads: Mapping[str, float], headroom: float
) -> Dict[str, float]:
    """Capacity per front-end: steady-state load times a headroom factor.

    Front-ends carrying no steady-state load get the median loaded
    front-end's capacity, so empty edges are not trivially overloaded —
    the same provisioning rule as
    :class:`repro.cdn.failover.WithdrawalSimulator`.
    """
    if headroom <= 1.0:
        raise ConfigurationError("headroom must exceed 1.0")
    if not baseline_loads:
        raise ConfigurationError("no front-ends to provision")
    positive = sorted(load for load in baseline_loads.values() if load > 0)
    median_load = positive[len(positive) // 2] if positive else 1.0
    return {
        frontend_id: headroom * (load if load > 0 else median_load)
        for frontend_id, load in baseline_loads.items()
    }


class DistributedLoadController:
    """Per-front-end proportional shed control from local load signals.

    Each front-end updates its own shed fraction once per day from its
    own utilization only::

        shed' = clamp(shed + gain * (utilization - target), 0, 1)

    Above target the front-end sheds more; below target it takes
    traffic back.  Because every update reads exactly one front-end's
    signal, the evolution is independent of iteration order — the
    "no global coordination" property the Sinha et al. algorithms are
    built on — and the fixed point (where reachable) pins utilization
    at ``target_utilization``.
    """

    def __init__(
        self,
        frontend_ids: Sequence[str],
        target_utilization: float = 0.85,
        gain: float = 0.5,
    ) -> None:
        if not frontend_ids:
            raise ConfigurationError("controller needs front-ends")
        if not 0.0 < target_utilization < 1.0:
            raise ConfigurationError(
                "target_utilization must be in (0, 1)"
            )
        if gain <= 0.0:
            raise ConfigurationError("gain must be positive")
        self._target = target_utilization
        self._gain = gain
        self._shed: Dict[str, float] = {
            frontend_id: 0.0 for frontend_id in frontend_ids
        }

    @property
    def shed_fractions(self) -> Dict[str, float]:
        """The current per-front-end shed fractions (all in [0, 1])."""
        return dict(self._shed)

    def observe_day(
        self, utilizations: Mapping[str, float]
    ) -> Dict[str, float]:
        """Fold one day's local utilizations into tomorrow's fractions."""
        for frontend_id in sorted(self._shed):
            utilization = utilizations.get(frontend_id, 0.0)
            updated = self._shed[frontend_id] + self._gain * (
                utilization - self._target
            )
            self._shed[frontend_id] = min(1.0, max(0.0, updated))
        return dict(self._shed)


@dataclass(frozen=True)
class LoadDayState:
    """One day's converged load-management state.

    Attributes:
        loads: Realized demand landing on each front-end.
        utilizations: Load over (possibly drained) capacity; withdrawn
            front-ends carry no load and read 0.
        shed_fractions: The shed fraction each front-end applied today.
        withdrawn: Front-ends offline today (failed, or hard-withdrawn
            by the ``withdraw`` policy's cascade).
        landing: For each client whose traffic did *not* all land on its
            layer-0 front-end, the ``((frontend_id, fraction), ...)``
            distribution in chain order.  Clients absent here are served
            entirely by their layer-0 front-end.
        demand_multipliers: Per-client demand multipliers active today
            (only entries != 1.0).
    """

    loads: Dict[str, float]
    utilizations: Dict[str, float]
    shed_fractions: Dict[str, float]
    withdrawn: FrozenSet[str]
    landing: Dict[str, Tuple[Tuple[str, float], ...]]
    demand_multipliers: Dict[str, float]


#: The load-management policies a campaign can run.
LOAD_POLICIES = ("none", "withdraw", "fastroute")


class LoadManagementSimulator:
    """Evolves per-day load management over a campaign calendar.

    Deterministic and purely demand-driven: given the same per-day
    demand multipliers, capacity factors, and failure schedule, the
    day-state sequence is identical no matter which engine, worker
    count, or shard asks for it — which is what lets campaign engines
    fold the results into measurements without breaking serial ==
    sharded digests.

    Policies:

    * ``none`` — capacities are finite (queueing delay still applies)
      but nothing reacts; the §2 "anycast is unaware of server load"
      baseline.
    * ``withdraw`` — a front-end past capacity is hard-withdrawn the
      next day and its clients fall through to the next ring; overload
      can then cascade exactly as §2 warns.
    * ``fastroute`` — each front-end runs the
      :class:`DistributedLoadController` law on its own signal and
      sheds gradually to the next ring.
    """

    def __init__(
        self,
        network: LayeredAnycastNetwork,
        clients: Sequence[ClientPrefix],
        capacities: Mapping[str, float],
        policy: str = "fastroute",
        target_utilization: float = 0.85,
        gain: float = 0.5,
    ) -> None:
        if policy not in LOAD_POLICIES:
            raise ConfigurationError(
                f"unknown load policy {policy!r}; expected one of "
                f"{', '.join(LOAD_POLICIES)}"
            )
        if not clients:
            raise ConfigurationError("simulator needs clients")
        self._network = network
        self._clients = tuple(clients)
        self._capacities = dict(capacities)
        self._policy = policy
        for frontend_id, capacity in self._capacities.items():
            if capacity <= 0:
                raise ConfigurationError(
                    f"capacity for {frontend_id!r} must be positive"
                )
        self._assignment: List[Tuple[ClientPrefix, Tuple[str, ...]]] = []
        for client in self._clients:
            per_layer = tuple(
                network.serving_frontend(
                    layer.index, client.asn, client.home_metro
                )
                for layer in network.layers
            )
            self._assignment.append((client, per_layer))
        self._chain_by_key: Dict[str, Tuple[str, ...]] = {
            client.key: per_layer
            for client, per_layer in self._assignment
        }
        missing = {
            frontend_id
            for _, per_layer in self._assignment
            for frontend_id in per_layer
        } - set(self._capacities)
        if missing:
            raise ConfigurationError(
                f"capacities missing for {sorted(missing)}"
            )
        self._controller = DistributedLoadController(
            sorted(self._capacities),
            target_utilization=target_utilization,
            gain=gain,
        )

    @property
    def policy(self) -> str:
        """The configured load-management policy."""
        return self._policy

    @property
    def capacities(self) -> Dict[str, float]:
        """Provisioned capacity per front-end."""
        return dict(self._capacities)

    def chain_for(self, client_key: str) -> Tuple[str, ...]:
        """A client's per-layer serving front-end chain."""
        try:
            return self._chain_by_key[client_key]
        except KeyError:
            raise ConfigurationError(
                f"unknown client {client_key!r}"
            ) from None

    def layer_frontends(self, layer_index: int) -> Tuple[str, ...]:
        """Sorted front-end ids of one ring (for selector mapping)."""
        layers = self._network.layers
        if not 0 <= layer_index < len(layers):
            raise ConfigurationError(f"no layer {layer_index}")
        return tuple(sorted(layers[layer_index].frontend_ids))

    def _route(
        self,
        multipliers: Mapping[str, float],
        shed: Mapping[str, float],
        withdrawn: FrozenSet[str],
    ) -> Tuple[Dict[str, float], Dict[str, Tuple[Tuple[str, float], ...]]]:
        """One day's demand routed through sheds and withdrawals."""
        loads: Dict[str, float] = {
            frontend_id: 0.0 for frontend_id in self._capacities
        }
        landing: Dict[str, Tuple[Tuple[str, float], ...]] = {}
        for client, chain in self._assignment:
            demand = client.daily_queries * multipliers.get(client.key, 1.0)
            weight = 1.0
            dist: List[Tuple[str, float]] = []
            for layer_index, frontend_id in enumerate(chain):
                if frontend_id in withdrawn:
                    continue
                is_last = layer_index == len(chain) - 1
                fraction = (
                    0.0
                    if is_last
                    else min(1.0, max(0.0, shed.get(frontend_id, 0.0)))
                )
                kept = weight * (1.0 - fraction)
                if kept > 0.0:
                    loads[frontend_id] += demand * kept
                    dist.append((frontend_id, kept))
                weight -= kept
                if weight <= 1e-12:
                    break
            # Residual weight means every ring was withdrawn — that
            # traffic is simply lost (the client is unreachable).
            if dist != [(chain[0], 1.0)]:
                landing[client.key] = tuple(dist)
        return loads, landing

    def run(
        self,
        num_days: int,
        demand_multipliers: Sequence[Mapping[str, float]],
        capacity_factors: Sequence[Mapping[str, float]],
        failures: Sequence[Sequence[str]],
    ) -> Tuple[LoadDayState, ...]:
        """Evolve the control loop over the calendar.

        Args:
            num_days: Calendar length.
            demand_multipliers: Per day, per-client demand multipliers
                (absent clients run at 1.0).
            capacity_factors: Per day, per-front-end capacity factors in
                (0, 1] (absent front-ends run at full capacity) — the
                drain episodes.
            failures: Per day, front-ends failing *on* that day; a
                failed front-end stays withdrawn for the rest of the
                calendar.

        Day 0 starts with no shedding: the controller (and the withdraw
        cascade) only ever react to *yesterday's* utilization, matching
        the one-day control delay of DNS-TTL-based shedding.
        """
        if num_days < 1:
            raise ConfigurationError("num_days must be >= 1")
        for name, series in (
            ("demand_multipliers", demand_multipliers),
            ("capacity_factors", capacity_factors),
            ("failures", failures),
        ):
            if len(series) != num_days:
                raise ConfigurationError(
                    f"{name} must have one entry per day"
                )
        shed: Dict[str, float] = {}
        withdrawn: set = set()
        states: List[LoadDayState] = []
        for day in range(num_days):
            withdrawn.update(failures[day])
            frozen = frozenset(withdrawn)
            active_shed = shed if self._policy == "fastroute" else {}
            loads, landing = self._route(
                demand_multipliers[day], active_shed, frozen
            )
            utilizations: Dict[str, float] = {}
            for frontend_id, load in loads.items():
                factor = capacity_factors[day].get(frontend_id, 1.0)
                if not 0.0 < factor <= 1.0:
                    raise ConfigurationError(
                        f"capacity factor for {frontend_id!r} must be in "
                        "(0, 1]"
                    )
                capacity = self._capacities[frontend_id] * factor
                utilizations[frontend_id] = load / capacity
            states.append(
                LoadDayState(
                    loads=loads,
                    utilizations=utilizations,
                    shed_fractions={
                        k: v for k, v in active_shed.items() if v > 0.0
                    },
                    withdrawn=frozen,
                    landing=landing,
                    demand_multipliers={
                        k: v
                        for k, v in demand_multipliers[day].items()
                        if v != 1.0
                    },
                )
            )
            if self._policy == "withdraw":
                withdrawn.update(
                    frontend_id
                    for frontend_id, utilization in utilizations.items()
                    if utilization > 1.0 + 1e-9
                    and frontend_id not in withdrawn
                )
            elif self._policy == "fastroute":
                shed = self._controller.observe_day(utilizations)
        return tuple(states)


def default_layers(
    deployment: CdnDeployment, hub_count: int = 12, core_count: int = 4
) -> Tuple[FrozenSet[str], ...]:
    """A sensible three-ring layering for a deployment.

    Layer 0: every front-end.  Layer 1: the ``hub_count`` front-ends in
    the biggest metros (regional hubs).  Layer 2: the ``core_count``
    biggest of those (global cores, assumed massively provisioned).
    """
    if hub_count < core_count or core_count < 1:
        raise ConfigurationError("need hub_count >= core_count >= 1")
    ranked = sorted(
        deployment.frontends,
        key=lambda fe: (-fe.metro.population_m, fe.frontend_id),
    )
    layer0 = frozenset(fe.frontend_id for fe in deployment.frontends)
    layer1 = frozenset(fe.frontend_id for fe in ranked[:hub_count])
    layer2 = frozenset(fe.frontend_id for fe in ranked[:core_count])
    return (layer0, layer1, layer2)
