"""Scenario validation: catch broken custom configurations early.

The default configuration is known-good; users sweeping their own
topologies, deployments, or resolver setups can violate invariants the
campaign assumes (an access ISP with no route, a client whose LDNS was
never registered for geolocation, a front-end no one can reach).  This
module checks a built scenario and reports everything wrong at once,
instead of failing mid-campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import RoutingError
from repro.measurement.beacon import BeaconConfig
from repro.simulation.scenario import Scenario


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a scenario.

    Attributes:
        severity: "error" (the campaign would fail or be meaningless) or
            "warning" (legal but probably not what the user wanted).
        subsystem: Where the problem lives.
        message: What is wrong.
    """

    severity: str
    subsystem: str
    message: str

    def format(self) -> str:
        """One-line rendering of the issue."""
        return f"[{self.severity}] {self.subsystem}: {self.message}"


@dataclass(frozen=True)
class ValidationReport:
    """All issues found by :func:`validate_scenario`."""

    issues: Tuple[ValidationIssue, ...]

    @property
    def ok(self) -> bool:
        """True when no error-severity issues were found."""
        return not any(issue.severity == "error" for issue in self.issues)

    @property
    def errors(self) -> Tuple[ValidationIssue, ...]:
        """Issues that would break or invalidate a campaign."""
        return tuple(i for i in self.issues if i.severity == "error")

    @property
    def warnings(self) -> Tuple[ValidationIssue, ...]:
        """Suspicious-but-legal configuration choices."""
        return tuple(i for i in self.issues if i.severity == "warning")

    def format(self) -> str:
        """Multi-line rendering of every issue found."""
        if not self.issues:
            return "scenario validation: ok"
        lines = [
            f"scenario validation: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(issue.format() for issue in self.issues)
        return "\n".join(lines)


def validate_scenario(scenario: Scenario, sample_limit: int = 200) -> ValidationReport:
    """Check a built scenario's campaign-readiness.

    Args:
        sample_limit: How many clients to spot-check for data-plane
            resolvability (all are checked for static properties).
    """
    issues: List[ValidationIssue] = []

    def error(subsystem: str, message: str) -> None:
        issues.append(ValidationIssue("error", subsystem, message))

    def warning(subsystem: str, message: str) -> None:
        issues.append(ValidationIssue("warning", subsystem, message))

    network = scenario.network
    geolocation = scenario.geolocation
    directory = scenario.ldns_directory

    # Deployment sanity.
    beacon_defaults = BeaconConfig()
    if len(network.frontends) < beacon_defaults.candidate_count:
        warning(
            "deployment",
            f"only {len(network.frontends)} front-ends for a "
            f"{beacon_defaults.candidate_count}-candidate beacon; the "
            "selector will use them all",
        )

    # Client static properties.
    for client in scenario.clients:
        if client.key not in geolocation:
            error("geolocation", f"client {client.key} never registered")
        if client.ldns_id not in directory:
            error("ldns", f"client {client.key} uses unknown {client.ldns_id}")
        elif client.ldns_id not in geolocation:
            error(
                "geolocation",
                f"resolver {client.ldns_id} never registered",
            )
        if client.daily_queries <= 0:
            warning(
                "population",
                f"client {client.key} has non-positive query volume",
            )

    # Data-plane spot checks.
    seen_pairs = set()
    checked = 0
    for client in scenario.clients:
        pair = (client.asn, client.home_metro)
        if pair in seen_pairs or checked >= sample_limit:
            continue
        seen_pairs.add(pair)
        checked += 1
        if not network.has_anycast_route(client.asn):
            error("routing", f"AS{client.asn} has no anycast route")
            continue
        try:
            network.anycast_path(client.asn, client.home_metro)
        except RoutingError as exc:
            error("routing", f"anycast walk failed for {pair}: {exc}")
        nearest = network.nearest_frontends(client.location, 1)[0]
        try:
            network.unicast_path(
                nearest.frontend_id, client.asn, client.home_metro
            )
        except RoutingError as exc:
            error(
                "routing",
                f"unicast walk to {nearest.frontend_id} failed for "
                f"{pair}: {exc}",
            )

    # Calendar vs analysis expectations.
    if scenario.calendar.num_days < 2:
        warning(
            "calendar",
            "fewer than 2 days: prediction evaluation (Fig 9) needs "
            "consecutive day pairs",
        )
    if scenario.calendar.num_days < 7:
        warning(
            "calendar",
            "fewer than 7 days: the Fig 7 weekly-affinity window will be "
            "clamped",
        )

    return ValidationReport(issues=tuple(issues))
