"""Shared fixtures: small deterministic scenarios and datasets.

The expensive fixtures are session-scoped — tests treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.cdn.deployment import DeploymentConfig, attach_cdn
from repro.cdn.network import CdnNetwork
from repro.clients.population import ClientPopulationConfig
from repro.geo.metros import MetroDatabase
from repro.net.topology import (
    TopologyBuilder,
    TopologyConfig,
    populate_base_internet,
)
from repro.simulation.campaign import CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import Scenario, ScenarioConfig

#: Scenario scale used by the shared fixtures — small enough to keep the
#: suite fast, big enough that every analysis has data.
SMALL_PREFIXES = 150
SMALL_DAYS = 4


@pytest.fixture(scope="session")
def metro_db() -> MetroDatabase:
    return MetroDatabase()


@pytest.fixture(scope="session")
def small_scenario_config() -> ScenarioConfig:
    return ScenarioConfig(
        seed=42,
        population=ClientPopulationConfig(prefix_count=SMALL_PREFIXES),
        calendar=SimulationCalendar(num_days=SMALL_DAYS),
    )


@pytest.fixture(scope="session")
def small_scenario(small_scenario_config) -> Scenario:
    return Scenario.build(small_scenario_config)


@pytest.fixture(scope="session")
def small_dataset(small_scenario):
    return CampaignRunner(small_scenario).run()


@pytest.fixture(scope="session")
def cdn_world(metro_db):
    """A frozen (topology, deployment, network) triple without clients."""
    builder = TopologyBuilder(metro_db)
    populate_base_internet(builder, TopologyConfig(), seed=7)
    deployment = attach_cdn(builder, DeploymentConfig(), seed=7)
    topology = builder.build()
    network = CdnNetwork(topology, deployment)
    return topology, deployment, network
