"""Tests for distribution utilities (repro.analysis.stats)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.analysis.stats import (
    CdfSeries,
    WeightedDistribution,
    linear_grid,
    log2_grid,
)


class TestWeightedDistribution:
    def test_unweighted_fractions(self):
        dist = WeightedDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.fraction_at_or_below(2.0) == 0.5
        assert dist.fraction_at_or_below(0.5) == 0.0
        assert dist.fraction_at_or_below(4.0) == 1.0
        assert dist.fraction_above(3.0) == pytest.approx(0.25)

    def test_weights_shift_the_distribution(self):
        dist = WeightedDistribution([1.0, 10.0], weights=[3.0, 1.0])
        assert dist.fraction_at_or_below(1.0) == pytest.approx(0.75)
        assert dist.median() == 1.0

    def test_quantiles(self):
        dist = WeightedDistribution([10.0, 20.0, 30.0, 40.0])
        assert dist.quantile(0.0) == 10.0
        assert dist.quantile(1.0) == 40.0
        assert dist.quantile(0.5) in (20.0, 30.0)

    def test_total_weight(self):
        dist = WeightedDistribution([1.0, 2.0], weights=[0.5, 1.5])
        assert dist.total_weight == 2.0
        assert len(dist) == 2

    def test_validation(self):
        with pytest.raises(AnalysisError):
            WeightedDistribution([])
        with pytest.raises(AnalysisError):
            WeightedDistribution([1.0], weights=[1.0, 2.0])
        with pytest.raises(AnalysisError):
            WeightedDistribution([1.0], weights=[-1.0])
        with pytest.raises(AnalysisError):
            WeightedDistribution([1.0, 2.0], weights=[0.0, 0.0])
        with pytest.raises(AnalysisError):
            WeightedDistribution([1.0]).quantile(1.5)

    def test_series_generation(self):
        dist = WeightedDistribution([5.0, 15.0])
        cdf = dist.cdf_series("label", [0.0, 10.0, 20.0])
        assert cdf.ys == (0.0, 0.5, 1.0)
        ccdf = dist.ccdf_series("label", [0.0, 10.0, 20.0])
        assert ccdf.ys == (1.0, 0.5, 0.0)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=60)
    def test_cdf_monotone_property(self, values):
        dist = WeightedDistribution(values)
        grid = sorted({min(values) - 1, *values, max(values) + 1})
        fractions = [dist.fraction_at_or_below(x) for x in grid]
        assert fractions == sorted(fractions)
        assert fractions[0] <= fractions[-1] == 1.0

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=1, max_size=30,
        ),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=60)
    def test_quantile_within_range(self, values, q):
        dist = WeightedDistribution(values)
        assert min(values) <= dist.quantile(q) <= max(values)


class TestGrids:
    def test_log2_grid(self):
        assert log2_grid(64, 512) == (64.0, 128.0, 256.0, 512.0)
        with pytest.raises(AnalysisError):
            log2_grid(0, 10)
        with pytest.raises(AnalysisError):
            log2_grid(100, 10)

    def test_linear_grid(self):
        assert linear_grid(0, 10, 5) == (0.0, 5.0, 10.0)
        with pytest.raises(AnalysisError):
            linear_grid(0, 10, 0)

    def test_cdf_series_validation(self):
        with pytest.raises(AnalysisError):
            CdfSeries("x", (1.0,), (0.5, 0.6))

    def test_format_rows(self):
        series = CdfSeries("demo", (1.0, 2.0), (0.25, 0.75))
        text = series.format_rows()
        assert "demo" in text
        assert "0.2500" in text
