"""Shared benchmark fixtures.

``paper_study`` runs the full paper-scale campaign once per session
(~1500 client /24s over the 28 days of April 2015) and is shared by every
figure benchmark; the benchmarks then time the analysis that regenerates
each figure and write its rows to ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.clients.population import ClientPopulationConfig
from repro.core.study import AnycastStudy
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import ScenarioConfig

#: Paper-scale knobs (kept here so every bench agrees on them).
PAPER_PREFIXES = 1500
PAPER_DAYS = 28
PAPER_SEED = 2015

OUT_DIR = pathlib.Path(__file__).parent / "out"


def paper_config(seed: int = PAPER_SEED) -> ScenarioConfig:
    """The scenario configuration used by the figure benchmarks."""
    return ScenarioConfig(
        seed=seed,
        population=ClientPopulationConfig(prefix_count=PAPER_PREFIXES),
        calendar=SimulationCalendar(num_days=PAPER_DAYS),
    )


@pytest.fixture(scope="session")
def paper_study() -> AnycastStudy:
    study = AnycastStudy(paper_config())
    # Force the expensive stages now so individual benchmarks time only
    # their own analysis.
    study.dataset
    return study


@pytest.fixture(scope="session")
def quick_study() -> AnycastStudy:
    """A small study for benchmarks that re-run the pipeline itself."""
    config = ScenarioConfig(
        seed=7,
        population=ClientPopulationConfig(prefix_count=200),
        calendar=SimulationCalendar(num_days=5),
    )
    study = AnycastStudy(config)
    study.dataset
    return study


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a figure's formatted rows under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def write_figure(name: str, text: str, series, **chart_kwargs) -> pathlib.Path:
    """Persist formatted rows plus an ASCII rendering of the figure."""
    from repro.analysis.plotting import ascii_chart

    chart = ascii_chart(list(series), **chart_kwargs)
    return write_report(name, text + "\n\n" + chart)
