"""Measurement record types and in-memory log stores.

Three raw streams exist, mirroring §3.2:

* the **client-side HTTP log** — what the JavaScript beacon reports back
  after fetching each test URL;
* the **server-side DNS query log** (:class:`repro.dns.authoritative
  .DnsQueryRecord`) — which target each unique hostname resolved to;
* the **server access log** — which front-end actually served each fetch
  (for the anycast target this is the interesting bit: the client cannot
  know it).

Joining them by the globally unique measurement id yields
:class:`JoinedMeasurement`, the row every analysis consumes.  Passive
(production) traffic is logged separately as per-day per-prefix front-end
counts, which is all Figs 4, 7 and 8 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MeasurementError


@dataclass(frozen=True)
class HttpLogEntry:
    """Client-side beacon report for one test-URL fetch."""

    day: int
    measurement_id: str
    client_key: str
    rtt_ms: float
    used_resource_timing: bool


@dataclass(frozen=True)
class ServerLogEntry:
    """Server access-log row: who served a measurement fetch."""

    day: int
    measurement_id: str
    serving_frontend_id: str


@dataclass(frozen=True)
class JoinedMeasurement:
    """One fully joined beacon measurement — the analysis unit.

    Attributes:
        day: Simulation day index.
        client_key: The client /24 (string form).
        ldns_id: Resolver that handled the DNS lookup.
        target_id: What was measured — ``"anycast"`` or a front-end id.
        frontend_id: The front-end that actually served the fetch (equals
            ``target_id`` for unicast targets).
        rtt_ms: Measured latency.
    """

    day: int
    client_key: str
    ldns_id: str
    target_id: str
    frontend_id: str
    rtt_ms: float


class RawMeasurementLog:
    """Stores the three raw streams for later joining.

    Suitable for tests, examples, and small campaigns; large campaigns use
    streaming sinks (:mod:`repro.measurement.aggregate`) instead.
    """

    def __init__(self) -> None:
        self._http: List[HttpLogEntry] = []
        self._server: List[ServerLogEntry] = []
        #: measurement_id -> (ldns_id, target_id)
        self._dns: Dict[str, Tuple[str, str]] = {}

    def record_dns(self, measurement_id: str, ldns_id: str, target_id: str) -> None:
        """Record a DNS query-log row for a measurement hostname."""
        if measurement_id in self._dns:
            raise MeasurementError(
                f"duplicate DNS record for measurement {measurement_id!r}"
            )
        self._dns[measurement_id] = (ldns_id, target_id)

    def record_http(self, entry: HttpLogEntry) -> None:
        """Record a client-side beacon report."""
        self._http.append(entry)

    def record_server(self, entry: ServerLogEntry) -> None:
        """Record a server access-log row."""
        self._server.append(entry)

    @property
    def http_entries(self) -> Tuple[HttpLogEntry, ...]:
        """All client-side rows."""
        return tuple(self._http)

    @property
    def server_entries(self) -> Tuple[ServerLogEntry, ...]:
        """All server access rows."""
        return tuple(self._server)

    def dns_record(self, measurement_id: str) -> Tuple[str, str]:
        """The (ldns_id, target_id) a measurement hostname resolved to."""
        try:
            return self._dns[measurement_id]
        except KeyError:
            raise MeasurementError(
                f"no DNS record for measurement {measurement_id!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._http)


class PassiveLog:
    """Per-day, per-prefix counts of which front-end served production
    traffic — the simulated Bing server logs of §3.2.1."""

    def __init__(self) -> None:
        #: day -> client_key -> frontend_id -> query count
        self._days: Dict[int, Dict[str, Dict[str, int]]] = {}

    def record(
        self, day: int, client_key: str, frontend_id: str, query_count: int
    ) -> None:
        """Add served queries to the day's counts."""
        if query_count < 0:
            raise MeasurementError("query_count must be non-negative")
        if query_count == 0:
            return
        per_client = self._days.setdefault(day, {})
        per_fe = per_client.setdefault(client_key, {})
        per_fe[frontend_id] = per_fe.get(frontend_id, 0) + query_count

    @property
    def days(self) -> Tuple[int, ...]:
        """Days with any recorded traffic, ascending."""
        return tuple(sorted(self._days))

    def frontends_for(self, day: int, client_key: str) -> Dict[str, int]:
        """Front-end→count map for one /24-day (empty if no traffic)."""
        return dict(self._days.get(day, {}).get(client_key, {}))

    def clients_on(self, day: int) -> Tuple[str, ...]:
        """Client keys with traffic on a day."""
        return tuple(self._days.get(day, {}))

    def primary_frontend(self, day: int, client_key: str) -> Optional[str]:
        """The front-end serving the most queries for a /24-day."""
        counts = self._days.get(day, {}).get(client_key)
        if not counts:
            return None
        return max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def iter_day(self, day: int) -> Iterator[Tuple[str, Dict[str, int]]]:
        """Iterate (client_key, {frontend: count}) pairs for a day."""
        for client_key, counts in self._days.get(day, {}).items():
            yield client_key, dict(counts)

    def total_queries(self, day: int) -> int:
        """Total queries recorded on a day."""
        return sum(
            count
            for counts in self._days.get(day, {}).values()
            for count in counts.values()
        )

    def merge(self, other: "PassiveLog") -> "PassiveLog":
        """Fold another log's counts into this one (in place).

        Counts for the same (day, client, front-end) cell add up, so
        per-shard partial logs combine into exactly the unsharded log.
        """
        for day, per_client in other._days.items():
            for client_key, counts in per_client.items():
                for frontend_id, count in counts.items():
                    self.record(day, client_key, frontend_id, count)
        return self
