"""The JavaScript measurement beacon (§3.2.2–3.3), emulated.

After a (simulated) search-results page loads, the beacon:

1. asks DNS for four test hostnames — the authoritative infrastructure
   assigns one to the anycast address, one to the front-end geographically
   closest to the client's LDNS, and two to front-ends randomly drawn from
   the ten nearest the LDNS, weighted toward closer ones (§3.3);
2. issues a warm-up request per hostname so the measured fetch uses the
   cached DNS answer (§3.2.2);
3. fetches each URL and records the elapsed time, substituting W3C
   Resource Timing values when the browser supports them (most do; the
   rest measure with primitive timers and some extra overhead [32]);
4. reports results to the backend, which joins them with the DNS and
   server logs by the globally unique measurement id.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MeasurementError
from repro.cdn.frontend import FrontEnd, nearest_frontends
from repro.dns.authoritative import ANYCAST_TARGET
from repro.dns.cache import TtlCache
from repro.geo.geolocation import GeolocationDatabase


@dataclass(frozen=True)
class BeaconConfig:
    """Beacon methodology knobs (defaults follow §3.3).

    Attributes:
        candidate_count: Front-ends nearest the LDNS considered candidates.
        random_picks: Random candidates measured besides anycast + closest.
        distance_weight_power: Rank weighting for the random picks — pick
            probability ∝ 1/rank**power, so the 3rd-closest is likelier
            than the 4th-closest (§3.3's example).
        resource_timing_support: Fraction of clients whose browser exposes
            the Resource Timing API.
        primitive_overhead_mean_ms / primitive_overhead_sigma_ms:
            Extra measured latency (Gaussian, truncated at zero) when only
            primitive timings are available [32].
        dns_ttl_seconds: TTL on measurement hostnames — longer than a
            beacon run, per §3.2.2.
    """

    candidate_count: int = 10
    random_picks: int = 2
    distance_weight_power: float = 1.0
    resource_timing_support: float = 0.9
    primitive_overhead_mean_ms: float = 6.0
    primitive_overhead_sigma_ms: float = 3.0
    dns_ttl_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.candidate_count < 2:
            raise ConfigurationError("candidate_count must be >= 2")
        if not 0 <= self.random_picks <= self.candidate_count - 1:
            raise ConfigurationError(
                "random_picks must fit within the non-closest candidates"
            )
        if not 0.0 <= self.resource_timing_support <= 1.0:
            raise ConfigurationError(
                "resource_timing_support must be in [0, 1]"
            )
        if self.distance_weight_power < 0:
            raise ConfigurationError("distance_weight_power must be >= 0")
        if self.dns_ttl_seconds <= 0:
            raise ConfigurationError("dns_ttl_seconds must be positive")


class BeaconTargetSelector:
    """Chooses which front-ends a beacon measures (§3.3).

    Candidate sets are derived from the LDNS's *geolocated* position (the
    CDN does not know where resolvers truly are) and cached per LDNS.
    """

    def __init__(
        self,
        frontends: Sequence[FrontEnd],
        geolocation: GeolocationDatabase,
        config: Optional[BeaconConfig] = None,
    ) -> None:
        if not frontends:
            raise ConfigurationError("selector needs at least one front-end")
        self._frontends = tuple(frontends)
        self._geolocation = geolocation
        self._config = config or BeaconConfig()
        self._candidates: Dict[str, Tuple[str, ...]] = {}
        self._weights: Dict[str, Tuple[float, ...]] = {}
        self._log_weights: Dict[str, np.ndarray] = {}

    @property
    def config(self) -> BeaconConfig:
        """The beacon methodology parameters."""
        return self._config

    def candidates(self, ldns_id: str) -> Tuple[str, ...]:
        """Front-end ids of the N candidates nearest an LDNS, closest
        first (computed from geolocated position, cached)."""
        cached = self._candidates.get(ldns_id)
        if cached is None:
            location = self._geolocation.lookup(ldns_id)
            count = min(self._config.candidate_count, len(self._frontends))
            nearest = nearest_frontends(self._frontends, location, count)
            cached = tuple(fe.frontend_id for fe in nearest)
            self._candidates[ldns_id] = cached
            # Random-pick weights for ranks 2..N (1-indexed ranks).
            power = self._config.distance_weight_power
            self._weights[ldns_id] = tuple(
                1.0 / (rank ** power) for rank in range(2, len(cached) + 1)
            )
        return cached

    def closest(self, ldns_id: str) -> str:
        """The front-end geographically closest to the LDNS."""
        return self.candidates(ldns_id)[0]

    def select_targets(self, ldns_id: str, rng: random.Random) -> Tuple[str, ...]:
        """The target list for one beacon execution.

        Returns ``(anycast, closest, pick, pick, ...)`` — always the
        anycast target, the closest candidate, and ``random_picks``
        distinct draws from the remaining candidates, rank-weighted.
        """
        candidates = self.candidates(ldns_id)
        targets: List[str] = [ANYCAST_TARGET, candidates[0]]
        pool = list(candidates[1:])
        weights = list(self._weights[ldns_id])
        picks = min(self._config.random_picks, len(pool))
        for _ in range(picks):
            chosen = rng.choices(range(len(pool)), weights=weights, k=1)[0]
            targets.append(pool.pop(chosen))
            weights.pop(chosen)
        return tuple(targets)

    def pick_pool(self, ldns_id: str) -> Tuple[str, ...]:
        """The candidates eligible for random picks (ranks 2..N)."""
        return self.candidates(ldns_id)[1:]

    def log_pick_weights(self, ldns_id: str) -> np.ndarray:
        """``log`` of the rank weights over :meth:`pick_pool`, cached.

        The additive term of the Gumbel top-k pick used by the batched
        engines; cached per LDNS so the per-(client, day) hot paths do
        no allocation or ``log`` work.
        """
        cached = self._log_weights.get(ldns_id)
        if cached is None:
            self.candidates(ldns_id)  # also caches the weights
            cached = np.log(np.asarray(self._weights[ldns_id]))
            self._log_weights[ldns_id] = cached
        return cached

    def sample_pick_indices(
        self, ldns_id: str, gen: np.random.Generator, count: int
    ) -> np.ndarray:
        """Random-pick index sets for ``count`` beacons at once.

        Returns a ``(count, picks)`` integer matrix of indices into
        :meth:`pick_pool`.  Uses the Gumbel top-k trick: the ``k``
        largest values of ``log(weight) + Gumbel(0, 1)`` per row are
        distributed exactly as ``k`` sequential rank-weighted draws
        without replacement — the same Plackett–Luce process the scalar
        :meth:`select_targets` performs with ``rng.choices`` + ``pop``.
        Indices within a row are not ordered by draw sequence, which is
        immaterial: a beacon's picks form a set, and every fetch's
        randomness is drawn per fetch elsewhere.
        """
        candidates = self.candidates(ldns_id)  # also caches the weights
        pool_size = len(candidates) - 1
        picks = min(self._config.random_picks, pool_size)
        if picks == 0 or count == 0:
            return np.empty((count, 0), dtype=np.intp)
        keys = self.log_pick_weights(ldns_id)[np.newaxis, :] + gen.gumbel(
            size=(count, pool_size)
        )
        if picks == pool_size:
            return np.tile(np.arange(pool_size, dtype=np.intp), (count, 1))
        return np.argpartition(-keys, picks - 1, axis=1)[:, :picks]


@dataclass(frozen=True)
class BeaconFetch:
    """One test-URL fetch result, before backend joining."""

    measurement_id: str
    target_id: str
    serving_frontend_id: str
    rtt_ms: float
    used_resource_timing: bool
    dns_cache_hit: bool


class BeaconRunner:
    """Executes beacon sessions against a resolution + latency backend.

    The runner owns the measurement-id counter and per-LDNS resolver
    caches; the campaign layer supplies, per fetch, what the network would
    answer (serving front-end and sampled RTT) via callables, keeping this
    module free of routing knowledge.
    """

    def __init__(
        self,
        selector: BeaconTargetSelector,
        config: Optional[BeaconConfig] = None,
    ) -> None:
        self._selector = selector
        self._config = config or selector.config
        self._counter = itertools.count()
        self._ldns_caches: Dict[str, TtlCache[str]] = {}

    def _cache_for(self, ldns_id: str) -> TtlCache[str]:
        cache = self._ldns_caches.get(ldns_id)
        if cache is None:
            cache = TtlCache()
            self._ldns_caches[ldns_id] = cache
        return cache

    def purge_caches(self, now: float) -> None:
        """Drop expired resolver-cache entries (call between days)."""
        for cache in self._ldns_caches.values():
            cache.purge_expired(now)

    def cache_stats(self) -> Tuple[int, int]:
        """Aggregate ``(hits, misses)`` across every LDNS resolver cache."""
        hits = 0
        misses = 0
        for cache in self._ldns_caches.values():
            cache_hits, cache_misses = cache.stats
            hits += cache_hits
            misses += cache_misses
        return hits, misses

    def run_beacon(
        self,
        ldns_id: str,
        resource_timing_supported: bool,
        serve: Callable[[str], Tuple[str, float]],
        rng: random.Random,
        now: float = 0.0,
    ) -> Tuple[BeaconFetch, ...]:
        """Execute one beacon session (four fetches).

        Args:
            ldns_id: The client's resolver.
            resource_timing_supported: Whether this client's browser has
                the Resource Timing API.
            serve: Callback mapping a target id to ``(serving_frontend_id,
                rtt_ms)`` — the simulated network answering the fetch.
            rng: Randomness for target picks and timing overhead.
            now: Simulated time (seconds) for DNS-cache bookkeeping.

        Returns:
            One :class:`BeaconFetch` per target, anycast first.
        """
        cache = self._cache_for(ldns_id)
        targets = self._selector.select_targets(ldns_id, rng)
        fetches: List[BeaconFetch] = []
        for target_id in targets:
            measurement_id = f"m{next(self._counter):010d}"
            hostname = f"{measurement_id}.probe.cdn.example"
            # Warm-up request: resolve and populate the resolver cache.
            if cache.get(hostname, now) is None:
                cache.put(
                    hostname, target_id, now, self._config.dns_ttl_seconds
                )
            # Measured fetch: must hit the cache (§3.2.2's whole point).
            resolved = cache.get(hostname, now)
            if resolved is None:
                raise MeasurementError(
                    f"measurement {measurement_id} missed the DNS cache "
                    "immediately after warm-up"
                )
            serving_frontend_id, rtt_ms = serve(resolved)
            used_resource_timing = resource_timing_supported
            if not used_resource_timing:
                overhead = rng.gauss(
                    self._config.primitive_overhead_mean_ms,
                    self._config.primitive_overhead_sigma_ms,
                )
                rtt_ms += max(0.0, overhead)
            # Browser timing APIs of the era report integer milliseconds;
            # reporting rounded values also gives "any improvement" in the
            # daily analyses its natural >= 1 ms meaning.
            rtt_ms = float(round(rtt_ms))
            fetches.append(
                BeaconFetch(
                    measurement_id=measurement_id,
                    target_id=resolved,
                    serving_frontend_id=serving_frontend_id,
                    rtt_ms=rtt_ms,
                    used_resource_timing=used_resource_timing,
                    dns_cache_hit=True,
                )
            )
        return tuple(fetches)
