"""Measurement record types and in-memory log stores.

Three raw streams exist, mirroring §3.2:

* the **client-side HTTP log** — what the JavaScript beacon reports back
  after fetching each test URL;
* the **server-side DNS query log** (:class:`repro.dns.authoritative
  .DnsQueryRecord`) — which target each unique hostname resolved to;
* the **server access log** — which front-end actually served each fetch
  (for the anycast target this is the interesting bit: the client cannot
  know it).

Joining them by the globally unique measurement id yields
:class:`JoinedMeasurement`, the row every analysis consumes.  Passive
(production) traffic is logged separately as per-day per-prefix front-end
counts, which is all Figs 4, 7 and 8 need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import MeasurementError


@dataclass(frozen=True)
class HttpLogEntry:
    """Client-side beacon report for one test-URL fetch."""

    day: int
    measurement_id: str
    client_key: str
    rtt_ms: float
    used_resource_timing: bool


@dataclass(frozen=True)
class ServerLogEntry:
    """Server access-log row: who served a measurement fetch."""

    day: int
    measurement_id: str
    serving_frontend_id: str


@dataclass(frozen=True)
class JoinedMeasurement:
    """One fully joined beacon measurement — the analysis unit.

    Attributes:
        day: Simulation day index.
        client_key: The client /24 (string form).
        ldns_id: Resolver that handled the DNS lookup.
        target_id: What was measured — ``"anycast"`` or a front-end id.
        frontend_id: The front-end that actually served the fetch (equals
            ``target_id`` for unicast targets).
        rtt_ms: Measured latency.
    """

    day: int
    client_key: str
    ldns_id: str
    target_id: str
    frontend_id: str
    rtt_ms: float


class RawMeasurementLog:
    """Stores the three raw streams for later joining.

    Suitable for tests, examples, and small campaigns; large campaigns use
    streaming sinks (:mod:`repro.measurement.aggregate`) instead.
    """

    def __init__(self) -> None:
        self._http: List[HttpLogEntry] = []
        self._server: List[ServerLogEntry] = []
        #: measurement_id -> (ldns_id, target_id)
        self._dns: Dict[str, Tuple[str, str]] = {}

    def record_dns(self, measurement_id: str, ldns_id: str, target_id: str) -> None:
        """Record a DNS query-log row for a measurement hostname."""
        if measurement_id in self._dns:
            raise MeasurementError(
                f"duplicate DNS record for measurement {measurement_id!r}"
            )
        self._dns[measurement_id] = (ldns_id, target_id)

    def record_http(self, entry: HttpLogEntry) -> None:
        """Record a client-side beacon report."""
        self._http.append(entry)

    def record_server(self, entry: ServerLogEntry) -> None:
        """Record a server access-log row."""
        self._server.append(entry)

    @property
    def http_entries(self) -> Tuple[HttpLogEntry, ...]:
        """All client-side rows."""
        return tuple(self._http)

    @property
    def server_entries(self) -> Tuple[ServerLogEntry, ...]:
        """All server access rows."""
        return tuple(self._server)

    def dns_record(self, measurement_id: str) -> Tuple[str, str]:
        """The (ldns_id, target_id) a measurement hostname resolved to."""
        try:
            return self._dns[measurement_id]
        except KeyError:
            raise MeasurementError(
                f"no DNS record for measurement {measurement_id!r}"
            ) from None

    def __len__(self) -> int:
        return len(self._http)


class PassiveLog:
    """Per-day, per-prefix counts of which front-end served production
    traffic — the simulated Bing server logs of §3.2.1.

    Bounded mode (``bounded=True``) collapses the per-client dimension
    and keeps only per-(day, front-end) totals: constant-size state per
    front-end-day regardless of population.  Per-client queries
    (``frontends_for``/``clients_on``/``primary_frontend``/``iter_day``)
    then raise — Figs 4, 7 and 8 need per-client detail and are
    unavailable in bounded campaigns; ``total_queries``/``day_totals``
    still answer exactly.
    """

    def __init__(self, bounded: bool = False) -> None:
        self._bounded = bounded
        #: day -> client_key -> frontend_id -> query count (exact mode)
        self._days: Dict[int, Dict[str, Dict[str, int]]] = {}
        #: day -> frontend_id -> query count (bounded mode)
        self._totals: Dict[int, Dict[str, int]] = {}

    @property
    def is_bounded(self) -> bool:
        """Whether this log keeps per-day totals only."""
        return self._bounded

    def _require_exact(self, what: str) -> None:
        if self._bounded:
            raise MeasurementError(
                f"bounded passive log retains no per-client counts; "
                f"{what} is unavailable (use day_totals()/total_queries())"
            )

    def record(
        self, day: int, client_key: str, frontend_id: str, query_count: int
    ) -> None:
        """Add served queries to the day's counts."""
        if query_count < 0:
            raise MeasurementError("query_count must be non-negative")
        if query_count == 0:
            return
        if self._bounded:
            per_fe_total = self._totals.setdefault(day, {})
            per_fe_total[frontend_id] = (
                per_fe_total.get(frontend_id, 0) + query_count
            )
            return
        per_client = self._days.setdefault(day, {})
        per_fe = per_client.setdefault(client_key, {})
        per_fe[frontend_id] = per_fe.get(frontend_id, 0) + query_count

    @property
    def days(self) -> Tuple[int, ...]:
        """Days with any recorded traffic, ascending."""
        if self._bounded:
            return tuple(sorted(self._totals))
        return tuple(sorted(self._days))

    def frontends_for(self, day: int, client_key: str) -> Dict[str, int]:
        """Front-end→count map for one /24-day (empty if no traffic)."""
        self._require_exact("frontends_for()")
        return dict(self._days.get(day, {}).get(client_key, {}))

    def clients_on(self, day: int) -> Tuple[str, ...]:
        """Client keys with traffic on a day."""
        self._require_exact("clients_on()")
        return tuple(self._days.get(day, {}))

    def primary_frontend(self, day: int, client_key: str) -> Optional[str]:
        """The front-end serving the most queries for a /24-day."""
        self._require_exact("primary_frontend()")
        counts = self._days.get(day, {}).get(client_key)
        if not counts:
            return None
        return max(counts.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def iter_day(self, day: int) -> Iterator[Tuple[str, Dict[str, int]]]:
        """Iterate (client_key, {frontend: count}) pairs for a day."""
        self._require_exact("iter_day()")
        for client_key, counts in self._days.get(day, {}).items():
            yield client_key, dict(counts)

    def day_totals(self, day: int) -> Dict[str, int]:
        """Front-end→total query count for a day (exact in both modes)."""
        if self._bounded:
            return dict(self._totals.get(day, {}))
        totals: Dict[str, int] = {}
        for counts in self._days.get(day, {}).values():
            for frontend_id, count in counts.items():
                totals[frontend_id] = totals.get(frontend_id, 0) + count
        return totals

    def total_queries(self, day: int) -> int:
        """Total queries recorded on a day."""
        if self._bounded:
            return sum(self._totals.get(day, {}).values())
        return sum(
            count
            for counts in self._days.get(day, {}).values()
            for count in counts.values()
        )

    def merge(self, other: "PassiveLog") -> "PassiveLog":
        """Fold another log's counts into this one (in place).

        Counts for the same (day, client, front-end) cell add up, so
        per-shard partial logs combine into exactly the unsharded log.
        Bounded logs add their per-(day, front-end) totals the same way.

        Raises:
            MeasurementError: when the operands' modes differ.
        """
        if other._bounded != self._bounded:
            raise MeasurementError(
                "cannot merge bounded and exact passive logs"
            )
        if self._bounded:
            for day, per_fe_total in other._totals.items():
                mine = self._totals.setdefault(day, {})
                for frontend_id, count in per_fe_total.items():
                    mine[frontend_id] = mine.get(frontend_id, 0) + count
            return self
        for day, per_client in other._days.items():
            for client_key, counts in per_client.items():
                for frontend_id, count in counts.items():
                    self.record(day, client_key, frontend_id, count)
        return self
