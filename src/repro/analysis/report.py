"""Paper-vs-measured comparison report.

Collects, for every figure in the paper's evaluation, the headline numbers
the paper states, the values this reproduction measures, and whether the
measured value lands in a tolerance band around the paper's.  The bands
encode "the shape should hold" (who wins, rough factors, crossovers) —
absolute latencies come from a simulator, not Bing's testbed.

``tools/make_experiments.py`` renders this into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.study import AnycastStudy


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-claim vs measured-value comparison.

    Attributes:
        experiment: Figure/table identifier (e.g. "Fig 3").
        metric: What is being compared.
        paper_value: The paper's stated number, as text.
        measured_value: This reproduction's number, as text.
        within_band: Whether the measured value satisfies the tolerance
            band; ``None`` for informational rows with no band.
        note: Optional context (esp. for known deviations).
    """

    experiment: str
    metric: str
    paper_value: str
    measured_value: str
    within_band: Optional[bool]
    note: str = ""

    @property
    def verdict(self) -> str:
        """Rendering of the band check."""
        if self.within_band is None:
            return "—"
        return "reproduced" if self.within_band else "deviates"


def _pct(value: float) -> str:
    return f"{value:.1%}"


def _km(value: float) -> str:
    return f"{value:,.0f} km"


def build_comparison(study: AnycastStudy) -> Tuple[ComparisonRow, ...]:
    """Run every figure of a study and compare against the paper."""
    rows: List[ComparisonRow] = []

    def add(experiment, metric, paper, measured, ok, note=""):
        rows.append(
            ComparisonRow(
                experiment=experiment,
                metric=metric,
                paper_value=paper,
                measured_value=measured,
                within_band=ok,
                note=note,
            )
        )

    # --- Fig 1 ---------------------------------------------------------
    fig1 = study.fig1_diminishing_returns((1, 3, 5, 7, 9))
    gain_early = fig1.gain_ms(1, 5)
    gain_late = fig1.gain_ms(5, 9)
    add(
        "Fig 1", "median min-latency gain, 5→9 candidates",
        "negligible (lines overlap)", f"{gain_late:.1f} ms",
        gain_late <= 2.0,
    )
    add(
        "Fig 1", "gain 1→5 candidates dominates gain 5→9",
        "yes", f"{gain_early:.1f} ms vs {gain_late:.1f} ms",
        gain_early >= gain_late,
    )

    # --- Fig 2 ---------------------------------------------------------
    fig2 = study.fig2_client_distance()
    add(
        "Fig 2", "median distance to closest front-end",
        "~280 km", _km(fig2.medians_km[0]),
        50 <= fig2.medians_km[0] <= 700,
    )
    add(
        "Fig 2", "median distance to 4th-closest front-end",
        "~1300 km", _km(fig2.medians_km[3]),
        700 <= fig2.medians_km[3] <= 3500,
    )

    # --- Fig 3 ---------------------------------------------------------
    fig3 = study.fig3_anycast_penalty()
    world = fig3.fraction_slower["world"]
    add(
        "Fig 3", "requests with anycast >=25 ms slower (world)",
        "~20%", _pct(world[25.0]), 0.10 <= world[25.0] <= 0.33,
    )
    add(
        "Fig 3", "requests with anycast >=100 ms slower (world)",
        "just below 10%", _pct(world[100.0]), 0.03 <= world[100.0] <= 0.15,
    )
    europe = fig3.fraction_slower.get("europe")
    if europe is not None:
        add(
            "Fig 3", "Europe does at least as well as world (>=25 ms)",
            "yes", f"{_pct(europe[25.0])} vs {_pct(world[25.0])}",
            europe[25.0] <= world[25.0] + 0.02,
        )

    # --- Fig 4 ---------------------------------------------------------
    fig4 = study.fig4_anycast_distance()
    add(
        "Fig 4", "clients directed to their nearest front-end",
        "~55%", _pct(fig4.fraction_at_nearest),
        0.40 <= fig4.fraction_at_nearest <= 0.85,
        note="reproduction lands on the optimistic side",
    )
    add(
        "Fig 4", "clients within 2000 km of their front-end",
        "82% (87% weighted)",
        f"{_pct(fig4.fraction_within_2000km)} "
        f"({_pct(fig4.fraction_within_2000km_weighted)} weighted)",
        fig4.fraction_within_2000km >= 0.70,
    )
    add(
        "Fig 4", "75th-percentile distance past the closest front-end",
        "~400 km", _km(fig4.past_closest_p75_km),
        fig4.past_closest_p75_km <= 800,
    )

    # --- Footnote 1 ------------------------------------------------------
    foot1 = study.footnote1_geo_artifacts()
    add(
        "Footnote 1", "geolocation-artifact share of the >3000 km tail",
        "\"a fraction\" (unquantified)", _pct(foot1.artifact_fraction),
        None,
        note="simulation-only oracle: the paper could not measure this",
    )

    # --- Fig 5 ---------------------------------------------------------
    fig5 = study.fig5_poor_path_prevalence()
    add(
        "Fig 5", "mean daily fraction of /24s with any improvement",
        "19%", _pct(fig5.mean_fraction(1.0)),
        0.10 <= fig5.mean_fraction(1.0) <= 0.30,
        note="integer-ms 'any' is the harshest threshold in our noise model",
    )
    add(
        "Fig 5", "mean daily fraction with >=10 ms improvement",
        "12%", _pct(fig5.mean_fraction(10.0)),
        0.06 <= fig5.mean_fraction(10.0) <= 0.30,
    )
    add(
        "Fig 5", "mean daily fraction with >=50 ms improvement",
        "4%", _pct(fig5.mean_fraction(50.0)),
        fig5.mean_fraction(50.0) <= 0.10,
    )

    # --- Fig 6 ---------------------------------------------------------
    fig6 = study.fig6_poor_path_duration()
    add(
        "Fig 6", "ever-poor /24s poor on exactly one day",
        "~60%", _pct(fig6.fraction_single_day),
        fig6.fraction_single_day >= 0.40,
        note="known deviation: the reproduced poor set skews more persistent",
    )
    add(
        "Fig 6", "ever-poor /24s poor >=5 consecutive days",
        "~5%", _pct(fig6.fraction_five_plus_consecutive),
        fig6.fraction_five_plus_consecutive <= 0.15,
        note="known deviation: structural poor paths persist for the month",
    )
    add(
        "Fig 6", "consecutive persistence rarer than total-day persistence",
        "yes", f"{_pct(fig6.fraction_five_plus_consecutive)} <= "
        f"{_pct(fig6.fraction_five_plus_days)}",
        fig6.fraction_five_plus_consecutive
        <= fig6.fraction_five_plus_days,
    )

    # --- Fig 7 ---------------------------------------------------------
    fig7 = study.fig7_frontend_affinity(7)
    add(
        "Fig 7", "clients changing front-ends within the first day",
        "7%", _pct(fig7.first_day_fraction),
        0.02 <= fig7.first_day_fraction <= 0.16,
    )
    add(
        "Fig 7", "clients changing front-ends across the week",
        "21%", _pct(fig7.week_fraction),
        0.08 <= fig7.week_fraction <= 0.35,
    )
    if len(fig7.cumulative) >= 7:
        # Window starts Wednesday; indices 3-4 are the weekend days.
        weekend = fig7.daily_increment(3) + fig7.daily_increment(4)
        weekday = (
            fig7.daily_increment(1) + fig7.daily_increment(2)
            + fig7.daily_increment(5) + fig7.daily_increment(6)
        )
        add(
            "Fig 7", "weekend churn far below weekday churn",
            "<0.5%/day weekend vs 2-4%/weekday",
            f"{_pct(weekend)} weekend vs {_pct(weekday)} over weekdays",
            weekend < weekday,
        )

    # --- §3.3 / §5 side claims -------------------------------------------
    proximity = study.ldns_proximity()
    add(
        "§3.3 [17]", "non-public demand further than 500 km from its LDNS",
        "11-12%", _pct(proximity.far_demand_fraction),
        0.04 <= proximity.far_demand_fraction <= 0.25,
    )
    switch_rate = study.daily_switch_rate(0)
    add(
        "§5 [20,33]", "single-day front-end switch rate",
        "slightly above roots' 1.1-4.7%", _pct(switch_rate),
        0.011 <= switch_rate <= 0.15,
    )

    # --- Fig 8 ---------------------------------------------------------
    fig8 = study.fig8_switch_distance()
    add(
        "Fig 8", "median distance change on front-end switch",
        "483 km", _km(fig8.median_km), 200 <= fig8.median_km <= 2000,
        note="metro-granularity front-ends coarsen small switches",
    )
    add(
        "Fig 8", "switches within 2000 km",
        "83%", _pct(fig8.fraction_within_2000km),
        fig8.fraction_within_2000km >= 0.6,
    )

    # --- Fig 9 ---------------------------------------------------------
    fig9 = study.fig9_prediction()
    ecs = fig9.summary("ecs", 50.0)
    ldns = fig9.summary("ldns", 50.0)
    add(
        "Fig 9", "weighted /24s improved by ECS prediction (median)",
        "~30%", _pct(ecs.fraction_improved),
        0.12 <= ecs.fraction_improved <= 0.45,
    )
    add(
        "Fig 9", "weighted /24s made worse by ECS prediction",
        "~10%", _pct(ecs.fraction_worse),
        0.0 < ecs.fraction_worse < ecs.fraction_improved,
    )
    add(
        "Fig 9", "LDNS grouping pays a penalty vs ECS",
        "27%/17% vs 30%/10% (improved/worse)",
        f"{_pct(ldns.fraction_improved)}/{_pct(ldns.fraction_worse)} vs "
        f"{_pct(ecs.fraction_improved)}/{_pct(ecs.fraction_worse)}",
        ldns.fraction_worse >= ecs.fraction_worse - 0.02,
    )

    # --- §4 table -------------------------------------------------------
    table = study.cdn_size_table()
    by_name = {e.name: e for e in table}
    bing = next(e for e in table if "Bing" in e.name)
    add(
        "§4 table", "measured CDN at the Level3/MaxCDN scale",
        "Level3 = 62 locations", f"{bing.locations} locations",
        abs(bing.locations - by_name["Level3"].locations) <= 10,
    )

    return tuple(rows)


def format_markdown(
    rows: Sequence[ComparisonRow],
    dataset_summary: str = "",
) -> str:
    """Render comparison rows as the EXPERIMENTS.md table."""
    lines = [
        "| Experiment | Metric | Paper | Measured | Verdict |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        note = f" *({row.note})*" if row.note else ""
        lines.append(
            f"| {row.experiment} | {row.metric}{note} | {row.paper_value} "
            f"| {row.measured_value} | {row.verdict} |"
        )
    if dataset_summary:
        lines.append("")
        lines.append(dataset_summary)
    return "\n".join(lines)
