"""Traceroute synthesis for routing case studies.

The paper's authors used RIPE Atlas probes to issue traceroutes from
ISP–metro pairs with poor anycast performance (§5) and read the AS/metro
hand-off sequence off the output.  This module produces the equivalent
artifact from the simulated data plane: an ordered list of hops annotated
with AS, metro, coordinates, and cumulative geographic distance, so the
"Moscow client handed off in Stockholm" style of diagnosis works the same
way against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.geo.coords import GeoPoint, haversine_km
from repro.net.anycast import resolve_route
from repro.net.bgp import BgpRib
from repro.net.topology import Topology


@dataclass(frozen=True)
class TracerouteHop:
    """One hop of a synthesized traceroute."""

    index: int
    asn: int
    as_name: str
    metro_code: str
    metro_name: str
    location: GeoPoint
    #: Great-circle distance from the previous hop's metro (km).
    leg_km: float
    #: Cumulative distance from the source (km).
    cumulative_km: float


@dataclass(frozen=True)
class Traceroute:
    """A synthesized traceroute from an (AS, metro) vantage to an origin AS."""

    source_asn: int
    source_metro: str
    hops: Tuple[TracerouteHop, ...]

    @property
    def destination_asn(self) -> int:
        """The origin AS the trace terminated in."""
        return self.hops[-1].asn

    @property
    def total_km(self) -> float:
        """Total geographic path length."""
        return self.hops[-1].cumulative_km

    @property
    def direct_km(self) -> float:
        """Great-circle distance from source metro to final metro."""
        return haversine_km(self.hops[0].location, self.hops[-1].location)

    @property
    def stretch(self) -> float:
        """Path length divided by direct distance (1.0 = geodesic).

        Returns 1.0 when source and destination metros coincide.
        """
        direct = self.direct_km
        if direct == 0.0:
            return 1.0
        return self.total_km / direct

    def format(self) -> str:
        """Human-readable rendering, one hop per line."""
        lines = [
            f"traceroute from AS{self.source_asn} ({self.source_metro}) "
            f"to AS{self.destination_asn}:"
        ]
        for hop in self.hops:
            lines.append(
                f"  {hop.index:2d}  AS{hop.asn:<6d} {hop.as_name:<24s} "
                f"{hop.metro_name:<18s} +{hop.leg_km:7.0f} km "
                f"(total {hop.cumulative_km:7.0f} km)"
            )
        return "\n".join(lines)


def trace_route(
    topology: Topology, rib: BgpRib, source_asn: int, source_metro: str
) -> Traceroute:
    """Synthesize a traceroute from a vantage point toward an announcement.

    Raises:
        RoutingError: if the vantage has no route (propagated from the
            data-plane walk).
    """
    route = resolve_route(topology, rib, source_asn, source_metro)
    metro_db = topology.metro_db
    hops = []
    previous_location = None
    cumulative = 0.0
    for index, (asn, metro_code) in enumerate(route.hops):
        metro = metro_db.get(metro_code)
        leg = (
            0.0
            if previous_location is None
            else haversine_km(previous_location, metro.location)
        )
        cumulative += leg
        hops.append(
            TracerouteHop(
                index=index,
                asn=asn,
                as_name=topology.get(asn).name,
                metro_code=metro_code,
                metro_name=metro.name,
                location=metro.location,
                leg_km=leg,
                cumulative_km=cumulative,
            )
        )
        previous_location = metro.location
    return Traceroute(
        source_asn=source_asn, source_metro=source_metro, hops=tuple(hops)
    )
