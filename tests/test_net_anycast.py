"""Tests for data-plane resolution (repro.net.anycast)."""

import pytest

from repro.errors import RoutingError
from repro.geo.metros import MetroDatabase
from repro.net.anycast import AnycastResolver, resolve_route
from repro.net.bgp import Announcement, RouteComputation
from repro.net.ip import IPv4Prefix
from repro.net.topology import (
    AsRole,
    AutonomousSystem,
    EgressPolicy,
    LinkKind,
    TopologyBuilder,
)

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


def build_scene(isp_cold_egress=None):
    """Client ISP (AS 100) spans nyc/chi/lax; origin (AS 1) is present at
    the same metros and peers everywhere."""
    builder = TopologyBuilder(MetroDatabase())
    builder.add_as(
        AutonomousSystem(
            asn=1, name="origin", role=AsRole.CDN,
            pop_metros=frozenset({"nyc", "chi", "lax"}),
        )
    )
    builder.add_as(
        AutonomousSystem(
            asn=100, name="isp", role=AsRole.ACCESS,
            pop_metros=frozenset({"nyc", "chi", "lax"}),
            egress_policy=(
                EgressPolicy.COLD_POTATO if isp_cold_egress else EgressPolicy.HOT_POTATO
            ),
            cold_potato_egress=isp_cold_egress,
        )
    )
    builder.connect(100, 1, LinkKind.PEERING)
    topo = builder.build()
    rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
    return topo, rib


class TestResolveRoute:
    def test_hot_potato_ingresses_at_client_metro(self):
        topo, rib = build_scene()
        route = resolve_route(topo, rib, 100, "chi")
        assert route.ingress_metro == "chi"
        assert route.as_path == (100, 1)
        assert route.metro_path == ("chi", "chi")

    def test_cold_potato_ingresses_at_designated_metro(self):
        topo, rib = build_scene(isp_cold_egress="lax")
        route = resolve_route(topo, rib, 100, "nyc")
        assert route.ingress_metro == "lax"

    def test_non_pop_metro_rejected(self):
        topo, rib = build_scene()
        with pytest.raises(RoutingError, match="no PoP"):
            resolve_route(topo, rib, 100, "lon")

    def test_no_route_rejected(self):
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(
            AutonomousSystem(
                asn=1, name="o", role=AsRole.CDN, pop_metros=frozenset({"nyc"})
            )
        )
        builder.add_as(
            AutonomousSystem(
                asn=2, name="island", role=AsRole.ACCESS,
                pop_metros=frozenset({"lon"}),
            )
        )
        topo = builder.build()
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        with pytest.raises(RoutingError, match="no route"):
            resolve_route(topo, rib, 2, "lon")

    def test_egress_rank_selects_alternate(self):
        topo, rib = build_scene()
        base = resolve_route(topo, rib, 100, "nyc", first_hop_egress_rank=0)
        alternate = resolve_route(topo, rib, 100, "nyc", first_hop_egress_rank=1)
        assert base.ingress_metro == "nyc"
        assert alternate.ingress_metro != "nyc"

    def test_multi_hop_walk(self):
        """Client -> transit -> origin, with the transit handing off
        hot-potato nearest its entry point."""
        builder = TopologyBuilder(MetroDatabase())
        builder.add_as(
            AutonomousSystem(
                asn=1, name="o", role=AsRole.CDN,
                pop_metros=frozenset({"sea", "mia"}),
            )
        )
        builder.add_as(
            AutonomousSystem(
                asn=10, name="transit", role=AsRole.TRANSIT,
                pop_metros=frozenset({"nyc", "sea", "mia"}),
            )
        )
        builder.add_as(
            AutonomousSystem(
                asn=100, name="isp", role=AsRole.ACCESS,
                pop_metros=frozenset({"nyc"}),
            )
        )
        builder.connect(100, 10, LinkKind.CUSTOMER_PROVIDER)
        builder.connect(10, 1, LinkKind.PEERING)
        topo = builder.build()
        rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
        route = resolve_route(topo, rib, 100, "nyc")
        # Transit enters at nyc, hands off at its nearest interconnect
        # with the origin: Miami is closer to NYC than Seattle.
        assert route.as_path == (100, 10, 1)
        assert route.ingress_metro == "mia"


class TestAnycastResolver:
    def test_caching_returns_same_object(self):
        topo, rib = build_scene()
        resolver = AnycastResolver(topo, rib)
        first = resolver.resolve(100, "nyc")
        second = resolver.resolve(100, "nyc")
        assert first is second

    def test_rank_cached_separately(self):
        topo, rib = build_scene()
        resolver = AnycastResolver(topo, rib)
        assert resolver.ingress_metro(100, "nyc", 0) == "nyc"
        assert resolver.ingress_metro(100, "nyc", 1) != "nyc"

    def test_variant_count(self):
        topo, rib = build_scene()
        resolver = AnycastResolver(topo, rib)
        assert resolver.variant_count(100, "nyc") == 3

    def test_has_route(self):
        topo, rib = build_scene()
        resolver = AnycastResolver(topo, rib)
        assert resolver.has_route(100)
        assert not resolver.has_route(999)

    def test_route_properties(self):
        topo, rib = build_scene()
        route = AnycastResolver(topo, rib).resolve(100, "lax")
        assert route.origin_asn == 1
        assert route.client_asn == 100
        assert route.client_metro == "lax"
