"""Streaming aggregation of beacon measurements.

A month-long campaign produces millions of joined measurements; holding
them as objects would dwarf memory.  Analyses only ever need (a) per-day
per-(group, target) latency distributions and (b) the per-request anycast
minus best-unicast difference (Fig 3).  These sinks accumulate exactly
that, with compact ``array`` storage.

Two aggregation modes exist end to end:

* **exact** (the default, and the small-N oracle): every sample is
  retained in a C-double array, percentiles interpolate over the sorted
  samples, and dataset digests hash the raw values — bit-compatible with
  every export and digest this repo has ever produced.
* **sketch** (``exact_threshold`` set): a digest that grows past the
  threshold *promotes* into a bounded
  :class:`repro.measurement.sketch.LatencySketch` and stops retaining
  samples.  Promotion is canonical — the sketch state is a pure function
  of the sample multiset — so a shard that promotes at a different time
  (or never, merging exact into an already-promoted peer) reaches
  bit-identical sketch state.  :class:`RequestDiffLog` and
  :class:`repro.measurement.logs.PassiveLog` have analogous bounded
  modes, keyed per (day, region) and per (day, front-end).
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AnalysisError, MeasurementError
from repro.latency.sampling import percentile
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ACCURACY,
    LatencySketch,
)


class LatencyDigest:
    """Append-only latency accumulator with percentile queries.

    Exact mode: samples live in a C-double array; the sorted view is
    computed lazily and invalidated on append, so an analysis pass
    issuing consecutive percentile queries sorts at most once.  Large
    digests sort into a numpy array (one ``np.sort`` over the buffer,
    O(1) interpolated quantile lookups); small ones stay on plain Python
    lists, which are cheaper below the array-conversion overhead.

    With ``exact_threshold`` set, a digest whose count exceeds the
    threshold promotes into a bounded :class:`LatencySketch` — raw
    samples are dropped and percentiles answer within the sketch's
    documented relative error.  ``minimum``/``maximum``/``count`` stay
    exact in both modes (running extrema, O(1) per query).
    """

    __slots__ = (
        "_values",
        "_sorted",
        "_sorted_array",
        "_min",
        "_max",
        "_exact_threshold",
        "_relative_accuracy",
        "_max_buckets",
        "_sketch",
    )

    #: Sample count at which percentile queries switch from a sorted
    #: Python list to a sorted numpy array.
    _NUMPY_SORT_THRESHOLD = 64

    def __init__(
        self,
        values: Optional[Sequence[float]] = None,
        exact_threshold: Optional[int] = None,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if exact_threshold is not None and exact_threshold < 1:
            raise MeasurementError("exact_threshold must be >= 1")
        self._values: Optional[array] = array("d")
        self._sorted: Optional[List[float]] = None
        self._sorted_array: Optional[np.ndarray] = None
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._exact_threshold = exact_threshold
        self._relative_accuracy = relative_accuracy
        self._max_buckets = max_buckets
        self._sketch: Optional[LatencySketch] = None
        if values is not None and len(values) > 0:
            self.extend(values)

    # ------------------------------------------------------------------
    # Mode plumbing
    # ------------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """Whether raw samples are still retained."""
        return self._sketch is None

    @property
    def sketch(self) -> Optional[LatencySketch]:
        """The backing sketch once promoted (``None`` in exact mode)."""
        return self._sketch

    @property
    def exact_threshold(self) -> Optional[int]:
        """Sample count beyond which this digest promotes to a sketch."""
        return self._exact_threshold

    @property
    def relative_accuracy(self) -> float:
        """Configured sketch accuracy (used at and after promotion)."""
        return self._relative_accuracy

    @property
    def max_buckets(self) -> int:
        """Configured hard cap on sketch buckets after promotion."""
        return self._max_buckets

    def _new_sketch(self) -> LatencySketch:
        return LatencySketch(
            relative_accuracy=self._relative_accuracy,
            max_buckets=self._max_buckets,
        )

    def _promote(self) -> None:
        """Convert retained samples into sketch state (canonical: the
        result depends only on the sample multiset, not on when the
        promotion happened)."""
        assert self._values is not None
        sketch = self._new_sketch()
        if len(self._values):
            sketch.extend(np.frombuffer(self._values, dtype=np.float64))
        self._sketch = sketch
        self._values = None
        self._invalidate()

    def _maybe_promote(self) -> None:
        if (
            self._exact_threshold is not None
            and self._values is not None
            and len(self._values) > self._exact_threshold
        ):
            self._promote()

    @classmethod
    def from_sketch(
        cls,
        sketch: LatencySketch,
        exact_threshold: Optional[int] = None,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> "LatencyDigest":
        """A sketch-mode digest wrapping an existing sketch (used when
        loading sketch frames from an export)."""
        digest = cls(
            exact_threshold=exact_threshold,
            relative_accuracy=relative_accuracy,
            max_buckets=max_buckets,
        )
        digest._values = None
        digest._sketch = sketch
        if sketch.count:
            digest._min = sketch.minimum()
            digest._max = sketch.maximum()
        return digest

    def copy(self) -> "LatencyDigest":
        """An independent digest with identical state and mode config."""
        clone = LatencyDigest(
            exact_threshold=self._exact_threshold,
            relative_accuracy=self._relative_accuracy,
            max_buckets=self._max_buckets,
        )
        if self._values is not None:
            clone._values = array("d", self._values)
        else:
            clone._values = None
            assert self._sketch is not None
            clone._sketch = self._sketch.copy()
        clone._min = self._min
        clone._max = self._max
        return clone

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def add(self, value: float) -> None:
        """Append one sample."""
        value = float(value)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self._values is None:
            assert self._sketch is not None
            self._sketch.add(value)
            return
        self._values.append(value)
        self._invalidate()
        self._maybe_promote()

    def extend(
        self,
        values: Union[np.ndarray, Sequence[float]],
        bounds: Optional[Tuple[float, float]] = None,
    ) -> None:
        """Append a batch of samples (the vectorized engine's bulk path).

        Accepts any float sequence; numpy arrays append through the
        buffer protocol without a per-element Python loop.  ``bounds``
        lets a caller that already knows the batch's ``(min, max)`` —
        e.g. from one ``reduceat`` over many run boundaries — skip the
        per-batch reductions; it must equal the true extrema.
        """
        if len(values) == 0:
            return
        if isinstance(values, np.ndarray):
            batch = np.ascontiguousarray(values, dtype=np.float64)
        else:
            batch = np.asarray(tuple(values), dtype=np.float64)
        if bounds is None:
            low = float(batch.min())
            high = float(batch.max())
        else:
            low, high = bounds
        if self._min is None or low < self._min:
            self._min = low
        if self._max is None or high > self._max:
            self._max = high
        if self._values is None:
            assert self._sketch is not None
            self._sketch.extend(batch)
            return
        self._values.frombytes(batch.tobytes())
        self._invalidate()
        self._maybe_promote()

    def merge(self, other: "LatencyDigest") -> None:
        """Fold another digest's samples into this one.

        Works across modes: exact + exact stays exact (promoting only if
        the combined count crosses the threshold), and any operand that
        is already a sketch forces the result to sketch mode.  Because
        promotion is canonical, every merge order over the same sample
        multiset reaches the same state.

        Raises:
            MeasurementError: when the operands' mode configuration
                (threshold or accuracy) differs — shards of one campaign
                always agree, so a mismatch means mixed configs.
        """
        if (
            other._exact_threshold != self._exact_threshold
            or other._relative_accuracy != self._relative_accuracy
            or other._max_buckets != self._max_buckets
        ):
            raise MeasurementError(
                "cannot merge digests with different sketch configuration "
                f"(threshold {other._exact_threshold} vs "
                f"{self._exact_threshold}, accuracy "
                f"{other._relative_accuracy!r} vs "
                f"{self._relative_accuracy!r}, max_buckets "
                f"{other._max_buckets} vs {self._max_buckets})"
            )
        if other._min is not None:
            if self._min is None or other._min < self._min:
                self._min = other._min
            assert other._max is not None
            if self._max is None or other._max > self._max:
                self._max = other._max
        if other._values is not None:
            if self._values is not None:
                self._values.extend(other._values)
                self._invalidate()
                self._maybe_promote()
            else:
                assert self._sketch is not None
                if len(other._values):
                    self._sketch.extend(
                        np.frombuffer(other._values, dtype=np.float64)
                    )
        else:
            assert other._sketch is not None
            if self._values is not None:
                self._promote()
            assert self._sketch is not None
            self._sketch.merge(other._sketch)

    def _invalidate(self) -> None:
        self._sorted = None
        self._sorted_array = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of samples (exact in both modes)."""
        if self._values is not None:
            return len(self._values)
        assert self._sketch is not None
        return self._sketch.count

    def percentile(self, q: float) -> float:
        """The q-th percentile of the samples.

        Exact mode interpolates linearly over the sorted samples; sketch
        mode answers within the sketch's relative error bound
        (:attr:`LatencySketch.relative_error_bound`).

        Raises:
            AnalysisError: if empty, or ``q`` outside [0, 100].
        """
        if self._values is None:
            assert self._sketch is not None
            return self._sketch.quantile(q)
        if not self._values:
            raise AnalysisError("empty digest has no percentiles")
        if len(self._values) < self._NUMPY_SORT_THRESHOLD:
            if self._sorted is None:
                self._sorted = sorted(self._values)
            return percentile(self._sorted, q)
        if not 0.0 <= q <= 100.0:
            raise AnalysisError(f"percentile must be in [0, 100], got {q}")
        if self._sorted_array is None:
            # np.frombuffer views the array's buffer; np.sort copies, so
            # the cached result is safe against later appends (which
            # invalidate it anyway).
            self._sorted_array = np.sort(
                np.frombuffer(self._values, dtype=np.float64)
            )
        ordered = self._sorted_array
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return float(ordered[low])
        fraction = rank - low
        return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)

    def median(self) -> float:
        """Shorthand for the 50th percentile."""
        return self.percentile(50.0)

    def minimum(self) -> float:
        """Smallest sample — exact, O(1) (running minimum)."""
        if self._min is None:
            raise AnalysisError("empty digest has no minimum")
        return self._min

    def maximum(self) -> float:
        """Largest sample — exact, O(1) (running maximum)."""
        if self._max is None:
            raise AnalysisError("empty digest has no maximum")
        return self._max

    def values(self) -> Tuple[float, ...]:
        """All samples (copy) — the exact-mode API.

        Raises:
            MeasurementError: in sketch mode, which retains no samples.
        """
        if self._values is None:
            raise MeasurementError(
                "sketch-mode digest retains no raw samples; use "
                "percentile()/minimum()/maximum() or the sketch itself"
            )
        return tuple(self._values)

    def values_view(self) -> np.ndarray:
        """Zero-copy read-only numpy view over the samples (exact mode).

        The view aliases the digest's buffer: do not hold it across
        later appends.  Read-only consumers (export packing, dataset
        digests) use this instead of the tuple-copying :meth:`values`.

        Raises:
            MeasurementError: in sketch mode, which retains no samples.
        """
        if self._values is None:
            raise MeasurementError(
                "sketch-mode digest retains no raw samples; use "
                "percentile()/minimum()/maximum() or the sketch itself"
            )
        view = np.frombuffer(self._values, dtype=np.float64)
        view.flags.writeable = False
        return view


class GroupedDailyAggregates:
    """day → group → target → :class:`LatencyDigest`.

    One instance aggregates by ECS group (client /24), another by LDNS id;
    the structure is identical, only the grouping key differs.  The nested
    layout keeps per-group queries (``targets_for``) O(targets), which the
    predictor calls once per group per day.

    ``exact_threshold``/``relative_accuracy`` configure the two-mode
    behavior of every digest created here (see :class:`LatencyDigest`);
    the defaults keep everything exact.
    """

    def __init__(
        self,
        grouping: str,
        exact_threshold: Optional[int] = None,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        if not grouping:
            raise MeasurementError("grouping label cannot be empty")
        self._grouping = grouping
        self._exact_threshold = exact_threshold
        self._relative_accuracy = relative_accuracy
        self._max_buckets = max_buckets
        self._days: Dict[int, Dict[str, Dict[str, LatencyDigest]]] = {}

    @property
    def grouping(self) -> str:
        """Label of the grouping dimension ('ecs' or 'ldns')."""
        return self._grouping

    @property
    def exact_threshold(self) -> Optional[int]:
        """Per-digest sample count beyond which sketches take over."""
        return self._exact_threshold

    @property
    def relative_accuracy(self) -> float:
        """Sketch accuracy configured for this sink's digests."""
        return self._relative_accuracy

    @property
    def max_buckets(self) -> int:
        """Per-sketch bucket cap configured for this sink's digests."""
        return self._max_buckets

    def _new_digest(self) -> LatencyDigest:
        # Config was validated when this sink was built, so skip the
        # constructor's re-validation: bulk sinks create one digest per
        # (day, group, target) and the constructor shows up at scale.
        digest = LatencyDigest.__new__(LatencyDigest)
        digest._values = array("d")
        digest._sorted = None
        digest._sorted_array = None
        digest._min = None
        digest._max = None
        digest._exact_threshold = self._exact_threshold
        digest._relative_accuracy = self._relative_accuracy
        digest._max_buckets = self._max_buckets
        digest._sketch = None
        return digest

    def observe(self, day: int, group: str, target_id: str, rtt_ms: float) -> None:
        """Add one measurement."""
        per_day = self._days.setdefault(day, {})
        per_group = per_day.get(group)
        if per_group is None:
            per_group = {}
            per_day[group] = per_group
        digest = per_group.get(target_id)
        if digest is None:
            digest = self._new_digest()
            per_group[target_id] = digest
        digest.add(rtt_ms)

    def observe_many(
        self,
        day: int,
        group: str,
        target_id: str,
        rtts_ms: Union[np.ndarray, Sequence[float]],
        bounds: Optional[Tuple[float, float]] = None,
    ) -> None:
        """Add a batch of measurements for one (day, group, target).

        The bulk counterpart of :meth:`observe` — one dictionary walk and
        one :meth:`LatencyDigest.extend` per batch instead of per sample.
        ``bounds`` forwards a precomputed ``(min, max)`` to the digest
        (see :meth:`LatencyDigest.extend`).
        """
        if len(rtts_ms) == 0:
            return
        per_day = self._days.setdefault(day, {})
        per_group = per_day.get(group)
        if per_group is None:
            per_group = {}
            per_day[group] = per_group
        digest = per_group.get(target_id)
        if digest is None:
            digest = self._new_digest()
            per_group[target_id] = digest
        digest.extend(rtts_ms, bounds)

    def observe_runs(
        self,
        day: int,
        entries: Sequence[Tuple[str, str, int, int, float, float]],
        values: np.ndarray,
    ) -> None:
        """Add many (group, target) runs sliced from one value array.

        The chunk-scale counterpart of :meth:`observe_many`: ``values``
        is one float64 array holding every run back to back, and each
        entry ``(group, target_id, start, stop, low, high)`` appends
        ``values[start:stop]`` — whose true extrema must be
        ``(low, high)`` — to that (day, group, target) digest.  One call
        per chunk replaces one :meth:`observe_many` per run; exact-mode
        digests append through a zero-copy byte view without re-entering
        :meth:`LatencyDigest.extend`, which is what keeps the matrix
        engine's sink cost per run at dictionary-walk level.
        """
        if not entries:
            return
        per_day = self._days.setdefault(day, {})
        contiguous = np.ascontiguousarray(values, dtype=np.float64)
        raw = memoryview(contiguous.tobytes())
        threshold = self._exact_threshold
        for group, target_id, start, stop, low, high in entries:
            per_group = per_day.get(group)
            if per_group is None:
                per_group = {}
                per_day[group] = per_group
            digest = per_group.get(target_id)
            if digest is None:
                digest = self._new_digest()
                per_group[target_id] = digest
            samples = digest._values
            if samples is None:
                # Sketch mode: the digest already promoted, so take the
                # normal extend path (it feeds the sketch directly).
                digest.extend(contiguous[start:stop], (low, high))
                continue
            if digest._min is None or low < digest._min:
                digest._min = low
            if digest._max is None or high > digest._max:
                digest._max = high
            samples.frombytes(raw[8 * start : 8 * stop])
            digest._sorted = None
            digest._sorted_array = None
            if threshold is not None and len(samples) > threshold:
                digest._promote()

    @property
    def days(self) -> Tuple[int, ...]:
        """Days with any data, ascending."""
        return tuple(sorted(self._days))

    def groups_on(self, day: int) -> Tuple[str, ...]:
        """Distinct group keys observed on a day."""
        return tuple(sorted(self._days.get(day, {})))

    def digest(self, day: int, group: str, target_id: str) -> Optional[LatencyDigest]:
        """The digest for one (day, group, target), or ``None``."""
        return self._days.get(day, {}).get(group, {}).get(target_id)

    def targets_for(self, day: int, group: str) -> Dict[str, LatencyDigest]:
        """target_id → digest for one group-day."""
        return dict(self._days.get(day, {}).get(group, {}))

    def iter_day(self, day: int) -> Iterator[Tuple[str, str, LatencyDigest]]:
        """Iterate (group, target, digest) triples for a day."""
        for group, per_group in self._days.get(day, {}).items():
            for target_id, digest in per_group.items():
                yield group, target_id, digest

    def sketch_stats(self) -> Tuple[int, int, int, int, int]:
        """Compression accounting: ``(exact_digests, sketch_digests,
        sketch_buckets, sketch_samples, resolution_halvings)`` across
        every digest held."""
        exact = sketched = buckets = samples = halvings = 0
        for per_day in self._days.values():
            for per_group in per_day.values():
                for digest in per_group.values():
                    if digest.is_exact:
                        exact += 1
                    else:
                        assert digest.sketch is not None
                        sketched += 1
                        buckets += digest.sketch.bucket_count
                        samples += digest.sketch.count
                        halvings += digest.sketch.compressions
        return exact, sketched, buckets, samples, halvings

    def merge(self, other: "GroupedDailyAggregates") -> "GroupedDailyAggregates":
        """Fold another instance's samples into this one (in place).

        Used to combine per-shard partial aggregates from a parallel
        campaign; digests are copied, never aliased, so the source stays
        independently usable.

        Raises:
            MeasurementError: if the grouping dimensions or sketch
                configurations differ.
        """
        if other._grouping != self._grouping:
            raise MeasurementError(
                f"cannot merge {other._grouping!r} aggregates into "
                f"{self._grouping!r} aggregates"
            )
        if (
            other._exact_threshold != self._exact_threshold
            or other._relative_accuracy != self._relative_accuracy
            or other._max_buckets != self._max_buckets
        ):
            raise MeasurementError(
                "cannot merge aggregates with different sketch "
                "configurations"
            )
        for day, per_day in other._days.items():
            mine_day = self._days.setdefault(day, {})
            for group, per_group in per_day.items():
                mine_group = mine_day.setdefault(group, {})
                for target_id, digest in per_group.items():
                    mine = mine_group.get(target_id)
                    if mine is None:
                        mine_group[target_id] = digest.copy()
                    else:
                        mine.merge(digest)
        return self


@dataclass(frozen=True)
class RequestDiffRow:
    """One beacon execution summarized for Fig 3."""

    client_index: int
    region_code: int
    anycast_rtt_ms: float
    best_unicast_rtt_ms: float
    day: int = 0

    @property
    def diff_ms(self) -> float:
        """Anycast minus best-of-measured-unicast latency."""
        return self.anycast_rtt_ms - self.best_unicast_rtt_ms


class RequestDiffLog:
    """Per-request anycast-vs-best-unicast differences.

    Exact mode (default) column-packs every row; region codes index into
    :attr:`region_names`, assigned on first use.  Bounded mode
    (``bounded=True``) keeps one :class:`LatencySketch` of the diff
    distribution per (day, region) instead — constant-size state per
    region-day, at the cost of per-row access (:meth:`rows`,
    :meth:`diffs`), which raise.  Fig 3 consumes the sketches through
    :meth:`diff_sketch`.
    """

    def __init__(
        self,
        bounded: bool = False,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        self._bounded = bounded
        self._relative_accuracy = relative_accuracy
        self._max_buckets = max_buckets
        self._client_index = array("i")
        self._region_code = array("b")
        self._anycast = array("f")
        self._best_unicast = array("f")
        self._day = array("i")
        self._region_names: List[str] = []
        self._region_codes: Dict[str, int] = {}
        #: bounded mode: (day, region_name) → sketch of the diffs
        self._sketches: Dict[Tuple[int, str], LatencySketch] = {}
        self._total = 0

    @property
    def is_bounded(self) -> bool:
        """Whether this log keeps sketches instead of rows."""
        return self._bounded

    @property
    def relative_accuracy(self) -> float:
        """Sketch accuracy of the bounded mode's diff sketches."""
        return self._relative_accuracy

    @property
    def max_buckets(self) -> int:
        """Per-sketch bucket cap of the bounded mode's diff sketches."""
        return self._max_buckets

    def region_code(self, region_name: str) -> int:
        """Stable small-int code for a region name."""
        code = self._region_codes.get(region_name)
        if code is None:
            code = len(self._region_names)
            if code > 127:
                raise MeasurementError("too many distinct regions")
            self._region_names.append(region_name)
            self._region_codes[region_name] = code
        return code

    @property
    def region_names(self) -> Tuple[str, ...]:
        """Known region names, by code (first-use order)."""
        return tuple(self._region_names)

    def _sketch_for(self, day: int, region_name: str) -> LatencySketch:
        self.region_code(region_name)  # keep the name registry in sync
        key = (day, region_name)
        sketch = self._sketches.get(key)
        if sketch is None:
            sketch = LatencySketch(
                relative_accuracy=self._relative_accuracy,
                max_buckets=self._max_buckets,
            )
            self._sketches[key] = sketch
        return sketch

    def observe(
        self,
        day: int,
        client_index: int,
        region_name: str,
        anycast_rtt_ms: float,
        best_unicast_rtt_ms: float,
    ) -> None:
        """Record one beacon execution's summary."""
        if self._bounded:
            # Match the exact mode's float32 storage cast, so the two
            # modes sketch/retain the same diff values.
            diff = float(np.float32(anycast_rtt_ms)) - float(
                np.float32(best_unicast_rtt_ms)
            )
            self._sketch_for(day, region_name).add(diff)
            self._total += 1
            return
        self._day.append(day)
        self._client_index.append(client_index)
        self._region_code.append(self.region_code(region_name))
        self._anycast.append(anycast_rtt_ms)
        self._best_unicast.append(best_unicast_rtt_ms)

    def observe_many(
        self,
        day: int,
        client_index: int,
        region_name: str,
        anycast_rtts_ms: Union[np.ndarray, Sequence[float]],
        best_unicast_rtts_ms: Union[np.ndarray, Sequence[float]],
    ) -> None:
        """Record one client-day's beacon summaries in bulk.

        Both value sequences must have equal length; the day, client, and
        region are shared by every row (which is exactly the shape one
        vectorized (client, day) block produces).
        """
        n = len(anycast_rtts_ms)
        if len(best_unicast_rtts_ms) != n:
            raise MeasurementError(
                "anycast and best-unicast batches must have equal length"
            )
        if n == 0:
            return
        if self._bounded:
            anycast32 = np.ascontiguousarray(
                anycast_rtts_ms, dtype=np.float32
            ).astype(np.float64)
            best32 = np.ascontiguousarray(
                best_unicast_rtts_ms, dtype=np.float32
            ).astype(np.float64)
            self._sketch_for(day, region_name).extend(anycast32 - best32)
            self._total += n
            return
        code = self.region_code(region_name)
        self._day.extend([day] * n)
        self._client_index.extend([client_index] * n)
        self._region_code.extend([code] * n)
        # float32 storage, same cast the scalar append performs.
        self._anycast.frombytes(
            np.ascontiguousarray(anycast_rtts_ms, dtype=np.float32).tobytes()
        )
        self._best_unicast.frombytes(
            np.ascontiguousarray(
                best_unicast_rtts_ms, dtype=np.float32
            ).tobytes()
        )

    def observe_columns(
        self,
        day: int,
        client_indices: np.ndarray,
        region_codes: np.ndarray,
        anycast_rtts_ms: np.ndarray,
        best_unicast_rtts_ms: np.ndarray,
    ) -> None:
        """Record one whole day of beacon summaries as columns.

        The matrix engine's sink: unlike :meth:`observe_many`, rows may
        span many clients and regions.  ``region_codes`` must come from
        *this* log's :meth:`region_code` registry.  Exact mode packs the
        columns straight into the backing arrays (same float32 casts as
        the per-client paths, so the stored row multiset is identical);
        bounded mode fans the rows out to the per-(day, region) sketches.
        """
        n = int(anycast_rtts_ms.shape[0])
        if (
            best_unicast_rtts_ms.shape[0] != n
            or client_indices.shape[0] != n
            or region_codes.shape[0] != n
        ):
            raise MeasurementError(
                "column batches must have equal length"
            )
        if n == 0:
            return
        if self._bounded:
            anycast32 = np.ascontiguousarray(
                anycast_rtts_ms, dtype=np.float32
            ).astype(np.float64)
            best32 = np.ascontiguousarray(
                best_unicast_rtts_ms, dtype=np.float32
            ).astype(np.float64)
            diffs = anycast32 - best32
            for code in np.unique(region_codes):
                name = self._region_names[int(code)]
                self._sketch_for(day, name).extend(
                    diffs[region_codes == code]
                )
            self._total += n
            return
        self._day.frombytes(
            np.full(n, day, dtype=np.int32).tobytes()
        )
        self._client_index.frombytes(
            np.ascontiguousarray(client_indices, dtype=np.int32).tobytes()
        )
        self._region_code.frombytes(
            np.ascontiguousarray(region_codes, dtype=np.int8).tobytes()
        )
        self._anycast.frombytes(
            np.ascontiguousarray(anycast_rtts_ms, dtype=np.float32).tobytes()
        )
        self._best_unicast.frombytes(
            np.ascontiguousarray(
                best_unicast_rtts_ms, dtype=np.float32
            ).tobytes()
        )

    def __len__(self) -> int:
        return self._total if self._bounded else len(self._day)

    def diffs(self, region_name: Optional[str] = None) -> List[float]:
        """Anycast minus best-unicast per request, optionally one region.

        Raises:
            MeasurementError: in bounded mode, which retains no rows —
                use :meth:`diff_sketch` instead.
        """
        if self._bounded:
            raise MeasurementError(
                "bounded diff log retains no per-request rows; use "
                "diff_sketch() for the distribution"
            )
        if region_name is None:
            return [
                a - b for a, b in zip(self._anycast, self._best_unicast)
            ]
        if region_name not in self._region_codes:
            return []
        want = self._region_codes[region_name]
        return [
            a - b
            for a, b, code in zip(
                self._anycast, self._best_unicast, self._region_code
            )
            if code == want
        ]

    def diff_sketch(
        self, region_name: Optional[str] = None
    ) -> Optional[LatencySketch]:
        """The merged diff sketch for one region (or all, ``None``).

        Bounded mode only; merges the per-day sketches into a fresh
        sketch (cheap: bucket-count addition).  Returns ``None`` when no
        matching requests were recorded.

        Raises:
            MeasurementError: in exact mode, which has no sketches —
                use :meth:`diffs`.
        """
        if not self._bounded:
            raise MeasurementError(
                "exact diff log has no sketches; use diffs()"
            )
        merged: Optional[LatencySketch] = None
        for (_, region), sketch in self._sketches.items():
            if region_name is not None and region != region_name:
                continue
            if merged is None:
                merged = sketch.copy()
            else:
                merged.merge(sketch)
        return merged

    def day_region_sketches(
        self,
    ) -> Dict[Tuple[int, str], LatencySketch]:
        """The raw (day, region) → sketch map (bounded mode only)."""
        if not self._bounded:
            raise MeasurementError(
                "exact diff log has no sketches; use diffs()/rows()"
            )
        return dict(self._sketches)

    def rows(self) -> Iterator[RequestDiffRow]:
        """Iterate all rows (mostly for tests; analyses use columns).

        Raises:
            MeasurementError: in bounded mode, which retains no rows.
        """
        if self._bounded:
            raise MeasurementError(
                "bounded diff log retains no per-request rows"
            )
        for i in range(len(self._day)):
            yield RequestDiffRow(
                client_index=self._client_index[i],
                region_code=self._region_code[i],
                anycast_rtt_ms=self._anycast[i],
                best_unicast_rtt_ms=self._best_unicast[i],
                day=self._day[i],
            )

    def sketch_stats(self) -> Tuple[int, int, int, int]:
        """Bounded-mode accounting: ``(sketches, buckets, samples,
        resolution_halvings)``."""
        if not self._bounded:
            return (0, 0, 0, 0)
        return (
            len(self._sketches),
            sum(s.bucket_count for s in self._sketches.values()),
            sum(s.count for s in self._sketches.values()),
            sum(s.compressions for s in self._sketches.values()),
        )

    def merge(self, other: "RequestDiffLog") -> "RequestDiffLog":
        """Append another log's rows (or sketches) to this one (in place).

        Exact mode remaps region codes through region *names*, so logs
        whose regions were first observed in different orders (as happens
        with per-shard logs) merge correctly.  Bounded mode adds the
        per-(day, region) sketches — exact and order-insensitive.

        Raises:
            MeasurementError: when the operands' modes differ.
        """
        if other._bounded != self._bounded:
            raise MeasurementError(
                "cannot merge bounded and exact request-diff logs"
            )
        if self._bounded and (
            other._relative_accuracy != self._relative_accuracy
            or other._max_buckets != self._max_buckets
        ):
            raise MeasurementError(
                "cannot merge request-diff logs with different sketch "
                "configurations"
            )
        if self._bounded:
            for name in other._region_names:
                self.region_code(name)
            for (day, region), sketch in other._sketches.items():
                mine = self._sketches.get((day, region))
                if mine is None:
                    self._sketches[(day, region)] = sketch.copy()
                else:
                    mine.merge(sketch)
            self._total += other._total
            return self
        code_map = [
            self.region_code(name) for name in other._region_names
        ]
        self._day.extend(other._day)
        self._client_index.extend(other._client_index)
        self._region_code.extend(
            code_map[code] for code in other._region_code
        )
        self._anycast.extend(other._anycast)
        self._best_unicast.extend(other._best_unicast)
        return self
