"""The perf-history ledger and its regression gate.

Covers record construction from telemetry snapshots, the atomic ledger
round-trip, and the gate semantics ``tools/bench_history.py`` relies
on: groups with fewer than two records pass (non-blocking bootstrap),
>threshold throughput/phase regressions fail, sub-noise-floor phase
jitter passes, and baselines never cross group boundaries.
"""

import json

import pytest

from repro.clients.population import ClientPopulationConfig
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry.history import (
    HISTORY_FORMAT_VERSION,
    BenchHistory,
    PerfRecord,
    check_history,
    compare_records,
    format_history_report,
    host_fingerprint,
    record_from_snapshot,
)


def make_record(
    rate: float = 1000.0,
    phases=None,
    label: str = "bench",
    engine: str = "vectorized",
    host: str = "host-a",
    config_hash: str = "cfg",
) -> PerfRecord:
    return PerfRecord(
        label=label,
        engine=engine,
        host=host,
        config_hash=config_hash,
        recorded_at="2026-08-08T00:00:00+00:00",
        wall_seconds=1.0,
        beacons_per_second=rate,
        phase_seconds=dict(phases or {"campaign": 1.0}),
    )


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------


def test_record_from_campaign_snapshot():
    scenario = Scenario.build(
        ScenarioConfig(
            seed=3,
            population=ClientPopulationConfig(prefix_count=24),
            calendar=SimulationCalendar(num_days=1),
        )
    )
    runner = CampaignRunner(scenario, CampaignConfig(engine="vectorized"))
    dataset = runner.run()
    snapshot = runner.telemetry.snapshot()

    record = record_from_snapshot(snapshot, "unit", dataset=dataset)

    assert record.label == "unit"
    assert record.engine == "vectorized"
    assert record.host == host_fingerprint()
    assert record.wall_seconds > 0
    assert record.beacons_per_second > 0
    assert "campaign" in record.phase_seconds
    assert record.dataset_digest == dataset.digest()


def test_record_round_trip():
    record = make_record(phases={"campaign": 2.0, "campaign/day": 1.5})
    assert PerfRecord.from_obj(record.to_obj()) == record


# ----------------------------------------------------------------------
# Ledger persistence
# ----------------------------------------------------------------------


def test_ledger_save_load_round_trip(tmp_path):
    path = str(tmp_path / "BENCH_history.json")
    history = BenchHistory([make_record(1000.0), make_record(1100.0)])
    history.save(path)

    loaded = BenchHistory.load(path)
    assert loaded.records == history.records

    with open(path, "r", encoding="utf-8") as handle:
        obj = json.load(handle)
    assert obj["format_version"] == HISTORY_FORMAT_VERSION


def test_ledger_missing_file_is_empty(tmp_path):
    assert BenchHistory.load(str(tmp_path / "nope.json")).records == []


def test_ledger_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format_version": 99, "records": []}')
    with pytest.raises(ValueError):
        BenchHistory.load(str(path))


# ----------------------------------------------------------------------
# Gate semantics
# ----------------------------------------------------------------------


def test_single_record_passes_without_baseline():
    results = check_history(BenchHistory([make_record()]))
    (result,) = results
    assert result.ok
    assert not result.comparable
    assert "no baseline" in result.notes[0]


def test_throughput_regression_fails():
    history = BenchHistory(
        [make_record(1000.0), make_record(1010.0), make_record(700.0)]
    )
    (result,) = check_history(history, threshold=0.20)
    assert not result.ok
    assert "throughput regressed" in result.failures[0]


def test_small_slowdown_passes():
    history = BenchHistory([make_record(1000.0), make_record(900.0)])
    (result,) = check_history(history, threshold=0.20)
    assert result.ok


def test_phase_regression_fails():
    history = BenchHistory(
        [
            make_record(phases={"campaign": 1.0}),
            make_record(phases={"campaign": 1.0}),
            make_record(phases={"campaign": 1.5}),
        ]
    )
    (result,) = check_history(history, threshold=0.20)
    assert not result.ok
    assert "phase 'campaign' regressed" in result.failures[0]


def test_noise_floor_absorbs_tiny_phase_jitter():
    # 2x relative growth but only 20ms absolute: below the 50ms floor.
    history = BenchHistory(
        [
            make_record(phases={"campaign": 1.0, "flush": 0.02}),
            make_record(phases={"campaign": 1.0, "flush": 0.04}),
        ]
    )
    (result,) = check_history(history, threshold=0.20)
    assert result.ok


def test_groups_never_cross_compare():
    # A catastrophic "regression" against a different engine's records
    # must not fail: the groups are disjoint, so both lack baselines.
    history = BenchHistory(
        [
            make_record(10_000.0, engine="matrix"),
            make_record(100.0, engine="reference"),
        ]
    )
    results = check_history(history)
    assert len(results) == 2
    assert all(result.ok for result in results)
    assert all(not result.comparable for result in results)


def test_baseline_is_median_of_window():
    # One slow outlier in the baseline must not drag the median down.
    rates = [1000.0, 1005.0, 400.0, 995.0, 1002.0, 998.0]
    history = BenchHistory(
        [make_record(rate) for rate in rates] + [make_record(990.0)]
    )
    (result,) = check_history(history, threshold=0.20, window=5)
    assert result.baseline_size == 5
    assert result.ok


def test_compare_records_empty_baseline_is_advisory():
    result = compare_records(make_record(), [])
    assert result.ok and not result.comparable


def test_format_history_report():
    history = BenchHistory([make_record(1000.0), make_record(500.0)])
    results = check_history(history)
    report = format_history_report(results)
    assert "== bench history gate ==" in report
    assert "FAIL" in report
    assert format_history_report([]) == "bench history: no records\n"
