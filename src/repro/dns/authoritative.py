"""The CDN's authoritative DNS with pluggable redirection policies.

§2: "The CDN makes a performance-based decision about what IP address to
return based on which LDNS forwarded the request."  Policies here decide a
*target* — the shared anycast address or a specific front-end's unicast
address — from the information a real authoritative server has: the LDNS
that asked, and the ECS client subnet when present.

The server also keeps a query log; §3.2.2's join of client-side HTTP
results with server-side DNS logs by unique hostname is reproduced in
:mod:`repro.measurement.backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from repro.errors import ConfigurationError
from repro.dns.ecs import EcsOption

#: Target id meaning "the shared anycast address".
ANYCAST_TARGET = "anycast"

#: Default answer TTL in seconds — longer than a beacon run (§3.2.2).
DEFAULT_TTL_SECONDS = 300.0


@dataclass(frozen=True)
class DnsQuery:
    """One query as the authoritative server sees it."""

    hostname: str
    ldns_id: str
    ecs: Optional[EcsOption] = None


@dataclass(frozen=True)
class DnsResponse:
    """The authoritative answer: a target, a TTL, and an ECS scope.

    ``ecs_scope_len`` follows RFC 7871 semantics: 0 means the answer is
    valid for any client of the resolver; a positive value means it is
    valid only for clients within the query's /scope subnet, and the
    resolver must cache it per-scope.
    """

    target_id: str
    ttl_seconds: float
    ecs_scope_len: int = 0


@dataclass(frozen=True)
class DnsQueryRecord:
    """Server-side query-log row (pushed to backend storage per §3.2.2)."""

    time: float
    hostname: str
    ldns_id: str
    ecs_key: Optional[str]
    target_id: str


class RedirectionPolicy(Protocol):
    """Decides the target returned for a query."""

    def decide(self, query: DnsQuery) -> str:
        """Target id ('anycast' or a front-end id) for this query."""
        ...


class AnycastPolicy:
    """Always return the anycast address — the production configuration."""

    def decide(self, query: DnsQuery) -> str:
        """Every query resolves to the shared anycast address."""
        return ANYCAST_TARGET


class StaticMappingPolicy:
    """Return a precomputed per-group target; anycast when unmapped.

    This is how a predictor's mapping (§6) is deployed: keys are ECS group
    keys (client /24 strings) and/or LDNS ids.  ECS keys take precedence
    when the query carries ECS, mirroring an ECS-aware authoritative.
    """

    def __init__(
        self,
        ecs_mapping: Optional[Dict[str, str]] = None,
        ldns_mapping: Optional[Dict[str, str]] = None,
    ) -> None:
        self._ecs_mapping = dict(ecs_mapping or {})
        self._ldns_mapping = dict(ldns_mapping or {})

    def decide(self, query: DnsQuery) -> str:
        """The mapped target for this query (anycast when unmapped)."""
        target, _ = self.decide_with_scope(query)
        return target

    def decide_with_scope(self, query: DnsQuery) -> Tuple[str, bool]:
        """Target plus whether the decision depended on the ECS subnet.

        When the client subnet mattered (RFC 7871), the answer must carry
        a non-zero scope so resolvers cache it per-prefix — an
        ECS-unaware decision is cacheable for all of the LDNS's clients.
        """
        if query.ecs is not None:
            target = self._ecs_mapping.get(query.ecs.group_key)
            if target is not None:
                return target, True
        return self._ldns_mapping.get(query.ldns_id, ANYCAST_TARGET), False


class AuthoritativeServer:
    """Answers queries under a policy, recording a query log."""

    def __init__(
        self,
        policy: RedirectionPolicy,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        keep_log: bool = True,
    ) -> None:
        if ttl_seconds <= 0:
            raise ConfigurationError(f"TTL must be positive, got {ttl_seconds}")
        self._policy = policy
        self._ttl_seconds = ttl_seconds
        self._keep_log = keep_log
        self._log: List[DnsQueryRecord] = []

    @property
    def policy(self) -> RedirectionPolicy:
        """The active redirection policy."""
        return self._policy

    def resolve(self, query: DnsQuery, now: float = 0.0) -> DnsResponse:
        """Answer a query and append to the query log.

        Policies exposing ``decide_with_scope`` get RFC 7871 scopes on
        their answers; other policies answer with scope 0 (valid for all
        clients of the resolver).
        """
        decide_with_scope = getattr(self._policy, "decide_with_scope", None)
        if decide_with_scope is not None:
            target, used_ecs = decide_with_scope(query)
        else:
            target, used_ecs = self._policy.decide(query), False
        scope = (
            query.ecs.source_prefix_length
            if used_ecs and query.ecs is not None
            else 0
        )
        if self._keep_log:
            self._log.append(
                DnsQueryRecord(
                    time=now,
                    hostname=query.hostname,
                    ldns_id=query.ldns_id,
                    ecs_key=query.ecs.group_key if query.ecs else None,
                    target_id=target,
                )
            )
        return DnsResponse(
            target_id=target,
            ttl_seconds=self._ttl_seconds,
            ecs_scope_len=scope,
        )

    def query_log(self) -> Tuple[DnsQueryRecord, ...]:
        """The query log so far."""
        return tuple(self._log)

    def clear_log(self) -> None:
        """Drop the accumulated query log (between campaign days)."""
        self._log.clear()
