"""Backend storage: joining the DNS, server, and client-side streams.

§3.2.2: "Each test URL has a globally unique identifier, allowing us to
join HTTP results from the client side with DNS results from the server
side."  :class:`BeaconBackend` performs that join incrementally — a row is
emitted the moment all three pieces for a measurement id have arrived —
so campaigns never hold raw logs in memory, while :func:`join_raw_log`
provides the batch equivalent over a :class:`RawMeasurementLog` for tests
and small studies.

The vectorized measurement engine synthesizes measurements already
joined (it knows the target, serving front-end, and RTT of every fetch
at once), so it feeds the backend through :meth:`BeaconBackend
.on_joined_batch` — columnar :class:`JoinedBatch` blocks that bypass the
per-id partial bookkeeping while keeping the joined-row accounting and
observer fan-out in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import MeasurementError
from repro.measurement.logs import (
    HttpLogEntry,
    JoinedMeasurement,
    RawMeasurementLog,
    ServerLogEntry,
)

#: Callback type receiving each joined measurement.
JoinedObserver = Callable[[JoinedMeasurement], None]


@dataclass(frozen=True)
class JoinedSegment:
    """A run of joined measurements sharing target and serving front-end.

    ``rtts_ms`` is typically a float64 numpy array (one RTT per fetch);
    any float sequence works.
    """

    target_id: str
    frontend_id: str
    rtts_ms: Sequence[float]

    def __len__(self) -> int:
        return len(self.rtts_ms)


@dataclass(frozen=True)
class JoinedBatch:
    """One (client, day) block of pre-joined measurements, columnar.

    Every row in the batch shares the day, client /24, and resolver; the
    per-(target, front-end) segments carry the RTT columns.
    """

    day: int
    client_key: str
    ldns_id: str
    segments: Tuple[JoinedSegment, ...]

    @property
    def count(self) -> int:
        """Total joined rows in the batch."""
        return sum(len(segment) for segment in self.segments)


#: Callback type receiving each joined batch.
BatchObserver = Callable[[JoinedBatch], None]


@dataclass
class _Partial:
    """Accumulates a measurement's pieces until the join completes."""

    ldns_id: Optional[str] = None
    target_id: Optional[str] = None
    serving_frontend_id: Optional[str] = None
    http: Optional[HttpLogEntry] = None

    def complete(self) -> bool:
        return (
            self.ldns_id is not None
            and self.serving_frontend_id is not None
            and self.http is not None
        )


class BeaconBackend:
    """Incremental three-way join keyed by measurement id."""

    def __init__(
        self,
        observers: Sequence[JoinedObserver] = (),
        batch_observers: Sequence[BatchObserver] = (),
    ) -> None:
        self._observers: List[JoinedObserver] = list(observers)
        self._batch_observers: List[BatchObserver] = list(batch_observers)
        self._partials: Dict[str, _Partial] = {}
        self._joined_count = 0

    def add_observer(self, observer: JoinedObserver) -> None:
        """Register another consumer of joined rows."""
        self._observers.append(observer)

    def add_batch_observer(self, observer: BatchObserver) -> None:
        """Register a consumer of columnar joined batches."""
        self._batch_observers.append(observer)

    @property
    def joined_count(self) -> int:
        """Rows emitted so far."""
        return self._joined_count

    @property
    def pending_count(self) -> int:
        """Measurement ids still missing at least one stream."""
        return len(self._partials)

    def _partial(self, measurement_id: str) -> _Partial:
        partial = self._partials.get(measurement_id)
        if partial is None:
            partial = _Partial()
            self._partials[measurement_id] = partial
        return partial

    def on_dns(self, measurement_id: str, ldns_id: str, target_id: str) -> None:
        """Ingest a DNS query-log row."""
        partial = self._partial(measurement_id)
        partial.ldns_id = ldns_id
        partial.target_id = target_id
        self._maybe_emit(measurement_id, partial)

    def on_server(self, measurement_id: str, serving_frontend_id: str) -> None:
        """Ingest a server access-log row."""
        partial = self._partial(measurement_id)
        partial.serving_frontend_id = serving_frontend_id
        self._maybe_emit(measurement_id, partial)

    def on_http(self, entry: HttpLogEntry) -> None:
        """Ingest a client-side beacon report."""
        partial = self._partial(entry.measurement_id)
        partial.http = entry
        self._maybe_emit(entry.measurement_id, partial)

    def on_joined_batch(self, batch: JoinedBatch) -> None:
        """Ingest a block of already-joined measurements.

        The vectorized engine's bulk path: no per-id partial state, one
        joined-count bump, and one callback per batch observer.  Scalar
        observers (if any are registered) still receive one
        :class:`JoinedMeasurement` per row, so mixed consumers see the
        same stream either way.
        """
        self._joined_count += batch.count
        for batch_observer in self._batch_observers:
            batch_observer(batch)
        if self._observers:
            for segment in batch.segments:
                for rtt_ms in segment.rtts_ms:
                    joined = JoinedMeasurement(
                        day=batch.day,
                        client_key=batch.client_key,
                        ldns_id=batch.ldns_id,
                        target_id=segment.target_id,
                        frontend_id=segment.frontend_id,
                        rtt_ms=float(rtt_ms),
                    )
                    for observer in self._observers:
                        observer(joined)

    def count_joined_bulk(self, count: int) -> None:
        """Account ``count`` already-joined rows without batch objects.

        The matrix engine writes its columns into the aggregate sinks
        directly (no per-client :class:`JoinedBatch` is materialized),
        so it reports its admitted row volume here — the same number a
        per-client engine would accumulate via segment counts.  Only
        valid for sinks with no scalar observers to notify.

        Raises:
            MeasurementError: if scalar observers are registered — they
                would silently miss these rows.
        """
        if self._observers:
            raise MeasurementError(
                "bulk joined-count accounting cannot notify scalar "
                "observers; use on_joined_batch"
            )
        if count < 0:
            raise MeasurementError("joined count cannot be negative")
        self._joined_count += count

    def merge(self, other: "BeaconBackend") -> "BeaconBackend":
        """Fold another backend's join state into this one (in place).

        Joined-row counts add up; still-pending partials carry over so a
        merged backend reports the combined outstanding joins.  Observers
        are *not* merged — rows already emitted on ``other`` stay emitted
        there.

        Raises:
            MeasurementError: if both backends hold a partial for the
                same measurement id (shards must use disjoint id spaces
                if their partials are ever merged).
        """
        overlap = self._partials.keys() & other._partials.keys()
        if overlap:
            raise MeasurementError(
                f"cannot merge backends with overlapping pending "
                f"measurements (e.g. {sorted(overlap)[0]!r})"
            )
        self._partials.update(other._partials)
        self._joined_count += other._joined_count
        return self

    def _maybe_emit(self, measurement_id: str, partial: _Partial) -> None:
        if not partial.complete():
            return
        http = partial.http
        assert http is not None and partial.ldns_id is not None
        assert partial.target_id is not None
        assert partial.serving_frontend_id is not None
        joined = JoinedMeasurement(
            day=http.day,
            client_key=http.client_key,
            ldns_id=partial.ldns_id,
            target_id=partial.target_id,
            frontend_id=partial.serving_frontend_id,
            rtt_ms=http.rtt_ms,
        )
        del self._partials[measurement_id]
        self._joined_count += 1
        for observer in self._observers:
            observer(joined)


def join_raw_log(log: RawMeasurementLog) -> Tuple[JoinedMeasurement, ...]:
    """Batch join of a raw log's three streams.

    Raises:
        MeasurementError: if any HTTP row lacks its DNS or server
            counterpart — a campaign bug, not an expected condition.
    """
    server_by_id: Dict[str, ServerLogEntry] = {
        entry.measurement_id: entry for entry in log.server_entries
    }
    joined: List[JoinedMeasurement] = []
    for http in log.http_entries:
        ldns_id, target_id = log.dns_record(http.measurement_id)
        server = server_by_id.get(http.measurement_id)
        if server is None:
            raise MeasurementError(
                f"measurement {http.measurement_id!r} has no server log row"
            )
        joined.append(
            JoinedMeasurement(
                day=http.day,
                client_key=http.client_key,
                ldns_id=ldns_id,
                target_id=target_id,
                frontend_id=server.serving_frontend_id,
                rtt_ms=http.rtt_ms,
            )
        )
    return tuple(joined)
