"""Ablation — FastRoute-style shedding vs hard route withdrawal (§2/[23]).

The same overload incident handled two ways: withdrawing the hot
front-end's anycast route (the operation §2 warns "can lead to cascading
overloading"), and FastRoute-style layered shedding, where the hot
front-end's colocated DNS gradually hands queries to the next anycast
ring.  Shedding should keep the front-end online, shed only the excess,
and take no one else down.
"""

import pytest

from conftest import write_report

from repro.cdn.failover import WithdrawalSimulator, frontend_loads
from repro.cdn.fastroute import (
    FastRouteBalancer,
    LayeredAnycastNetwork,
    default_layers,
)


@pytest.fixture(scope="module")
def incident(quick_study):
    scenario = quick_study.scenario
    baseline = frontend_loads(scenario.network, scenario.clients)
    layers = default_layers(scenario.deployment)
    hot = max(
        (fe for fe in baseline if fe not in layers[1]), key=baseline.get
    )
    positive = sorted(v for v in baseline.values() if v > 0)
    median = positive[len(positive) // 2]
    capacities = {}
    for fe in scenario.deployment.frontends:
        load = max(baseline.get(fe.frontend_id, 0.0), median)
        factor = 6.0 if fe.frontend_id in layers[1] else 1.2
        capacities[fe.frontend_id] = load * factor
    capacities[hot] = baseline[hot] * 0.8
    return scenario, layers, hot, capacities


def test_ablation_fastroute_vs_withdrawal(benchmark, incident):
    scenario, layers, hot, capacities = incident

    simulator = WithdrawalSimulator(
        scenario.topology,
        scenario.deployment,
        scenario.clients,
        capacities=capacities,
    )
    cascade = simulator.cascade([hot], max_rounds=6)

    layered = LayeredAnycastNetwork(
        scenario.topology, scenario.deployment, layers
    )
    balancer = FastRouteBalancer(layered, scenario.clients, capacities)
    shed = benchmark(balancer.balance)

    lines = [
        f"Ablation — overload at {hot} (capacity "
        f"{capacities[hot]:,.0f} queries/day)",
        "",
        "Hard withdrawal:",
        "  " + cascade.format().replace("\n", "\n  "),
        "",
        "FastRoute shedding:",
        "  " + shed.format().replace("\n", "\n  "),
        f"  {hot} final load: {shed.loads.get(hot, 0.0):,.0f}",
    ]
    write_report("ablation_fastroute", "\n".join(lines))

    # Withdrawal knocks the front-end (at least) out; shedding keeps it
    # serving within capacity and converges.
    assert hot in cascade.final_withdrawn
    assert shed.converged
    assert shed.loads[hot] <= capacities[hot] + 1e-6
    assert shed.loads[hot] > 0
    # Shedding never takes more offline than withdrawal does.
    assert len(cascade.final_withdrawn) >= 1
