"""Text plots: render CDF/CCDF series as ASCII charts.

The benchmark harness regenerates every figure's *data*; these helpers
make the regenerated figures readable in a terminal or a text file —
multiple series share one canvas with distinct markers, with optional
log-x (the paper's km axes) rendering.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import AnalysisError
from repro.analysis.stats import CdfSeries

#: Series markers, assigned in order.
_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Sequence[CdfSeries],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    x_label: str = "",
    y_label: str = "fraction",
    title: str = "",
) -> str:
    """Render series on one ASCII canvas.

    Args:
        series: One or more CDF/CCDF series (same x domain).
        width/height: Plot area size in characters.
        log_x: Use a log-scaled x axis (the paper's distance figures).
        x_label/y_label/title: Annotations.

    Returns:
        A multi-line string; series are drawn with distinct markers and a
        legend maps markers to labels.
    """
    if not series:
        raise AnalysisError("nothing to plot")
    if width < 16 or height < 4:
        raise AnalysisError("canvas too small to be readable")
    if len(series) > len(_MARKERS):
        raise AnalysisError(f"at most {len(_MARKERS)} series per chart")

    xs_all = [x for s in series for x in s.xs]
    if not xs_all:
        raise AnalysisError("series have no points")
    x_min, x_max = min(xs_all), max(xs_all)
    if log_x and x_min <= 0:
        raise AnalysisError("log-x requires positive x values")
    if x_max == x_min:
        x_max = x_min + 1.0

    def x_to_col(x: float) -> int:
        if log_x:
            position = (math.log(x) - math.log(x_min)) / (
                math.log(x_max) - math.log(x_min)
            )
        else:
            position = (x - x_min) / (x_max - x_min)
        return min(width - 1, max(0, int(round(position * (width - 1)))))

    def y_to_row(y: float) -> int:
        y = min(1.0, max(0.0, y))
        return min(height - 1, max(0, int(round((1.0 - y) * (height - 1)))))

    canvas: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, one in enumerate(series):
        marker = _MARKERS[index]
        previous_col: Optional[int] = None
        previous_row: Optional[int] = None
        for x, y in zip(one.xs, one.ys):
            col, row = x_to_col(x), y_to_row(y)
            # Draw a crude connecting segment so sparse series read as
            # lines, not dust.
            if previous_col is not None and col - previous_col > 1:
                for step_col in range(previous_col + 1, col):
                    fraction = (step_col - previous_col) / (col - previous_col)
                    step_row = int(
                        round(previous_row + fraction * (row - previous_row))
                    )
                    if canvas[step_row][step_col] == " ":
                        canvas[step_row][step_col] = "."
            canvas[row][col] = marker
            previous_col, previous_row = col, row

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        y_value = 1.0 - row_index / (height - 1)
        prefix = f"{y_value:4.2f} |" if row_index % 2 == 0 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    left = f"{x_min:g}"
    right = f"{x_max:g}"
    middle = x_label or ""
    padding = max(1, width - len(left) - len(right) - len(middle))
    lines.append(
        "      " + left + " " * (padding // 2) + middle
        + " " * (padding - padding // 2) + right
        + ("  (log)" if log_x else "")
    )
    lines.append(
        "      legend: "
        + "  ".join(
            f"{_MARKERS[i]}={one.label}" for i, one in enumerate(series)
        )
        + (f"   y: {y_label}" if y_label else "")
    )
    return "\n".join(lines)
