"""Sharded parallel campaign execution and mergeable measurement logs.

The determinism contract under test: a client's measurements are
identical regardless of iteration order, shard assignment, or worker
count, so serial ≡ sharded-and-merged ≡ parallel, bit for bit (same
:meth:`StudyDataset.digest`).
"""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.clients.population import ClientPopulationConfig
from repro.measurement.aggregate import GroupedDailyAggregates, RequestDiffLog
from repro.measurement.backend import BeaconBackend
from repro.measurement.logs import HttpLogEntry, PassiveLog
from repro.simulation.campaign import CampaignConfig, CampaignRunner, CampaignStats
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import (
    ParallelCampaignRunner,
    run_campaign,
    shard_bounds,
)
from repro.simulation.scenario import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def tiny_config() -> ScenarioConfig:
    return ScenarioConfig(
        seed=23,
        population=ClientPopulationConfig(prefix_count=60),
        calendar=SimulationCalendar(num_days=2),
    )


@pytest.fixture(scope="module")
def tiny_scenario(tiny_config) -> Scenario:
    return Scenario.build(tiny_config)


@pytest.fixture(scope="module")
def tiny_dataset(tiny_scenario):
    return CampaignRunner(tiny_scenario).run()


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads_remainder(self):
        assert shard_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_shards_than_clients(self):
        bounds = shard_bounds(2, 5)
        assert bounds == [(0, 1), (1, 2)]

    def test_covers_population_contiguously(self):
        bounds = shard_bounds(1234, 7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 1234
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            shard_bounds(0, 2)
        with pytest.raises(ConfigurationError):
            shard_bounds(10, 0)


class TestMergeAggregates:
    def test_shard_split_equals_unsharded(self):
        whole = GroupedDailyAggregates("ecs")
        part_a = GroupedDailyAggregates("ecs")
        part_b = GroupedDailyAggregates("ecs")
        samples = [
            (0, "g1", "anycast", 10.0),
            (0, "g1", "fe-a", 12.0),
            (0, "g2", "anycast", 30.0),
            (1, "g1", "anycast", 11.0),
        ]
        for i, (day, group, target, rtt) in enumerate(samples):
            whole.observe(day, group, target, rtt)
            (part_a if i % 2 == 0 else part_b).observe(day, group, target, rtt)
        part_a.merge(part_b)
        assert part_a.days == whole.days
        for day in whole.days:
            assert part_a.groups_on(day) == whole.groups_on(day)
            for group, target, digest in whole.iter_day(day):
                merged = part_a.digest(day, group, target)
                assert sorted(merged.values()) == sorted(digest.values())

    def test_merge_empty_shard_is_identity(self):
        agg = GroupedDailyAggregates("ldns")
        agg.observe(0, "r1", "anycast", 5.0)
        agg.merge(GroupedDailyAggregates("ldns"))
        assert agg.digest(0, "r1", "anycast").count == 1

    def test_merge_disjoint_days(self):
        a = GroupedDailyAggregates("ecs")
        b = GroupedDailyAggregates("ecs")
        a.observe(0, "g", "anycast", 1.0)
        b.observe(3, "g", "anycast", 2.0)
        a.merge(b)
        assert a.days == (0, 3)

    def test_merge_does_not_alias_source(self):
        a = GroupedDailyAggregates("ecs")
        b = GroupedDailyAggregates("ecs")
        b.observe(0, "g", "anycast", 1.0)
        a.merge(b)
        a.digest(0, "g", "anycast").add(99.0)
        assert b.digest(0, "g", "anycast").count == 1

    def test_mismatched_grouping_rejected(self):
        with pytest.raises(MeasurementError):
            GroupedDailyAggregates("ecs").merge(GroupedDailyAggregates("ldns"))


class TestMergeRequestDiffs:
    def test_merge_remaps_region_codes(self):
        a = RequestDiffLog()
        b = RequestDiffLog()
        # Same regions, observed in different orders, so the per-log
        # codes disagree — exactly what per-shard logs produce.
        a.observe(0, 1, "europe", 30.0, 20.0)
        b.observe(0, 2, "asia", 50.0, 45.0)
        b.observe(1, 3, "europe", 25.0, 26.0)
        a.merge(b)
        assert len(a) == 3
        assert a.diffs("europe") == pytest.approx([10.0, -1.0])
        assert a.diffs("asia") == pytest.approx([5.0])

    def test_merge_empty(self):
        a = RequestDiffLog()
        a.observe(0, 1, "europe", 30.0, 20.0)
        a.merge(RequestDiffLog())
        assert len(a) == 1
        empty = RequestDiffLog()
        empty.merge(a)
        assert empty.diffs() == pytest.approx([10.0])

    def test_rows_carry_day(self):
        log = RequestDiffLog()
        log.observe(5, 1, "europe", 30.0, 20.0)
        assert next(log.rows()).day == 5


class TestMergePassive:
    def test_shard_split_equals_unsharded(self):
        whole = PassiveLog()
        part_a = PassiveLog()
        part_b = PassiveLog()
        records = [
            (0, "p1", "fe-a", 10),
            (0, "p1", "fe-b", 3),
            (0, "p2", "fe-a", 7),
            (2, "p1", "fe-a", 4),
        ]
        for i, record in enumerate(records):
            whole.record(*record)
            (part_a if i % 2 == 0 else part_b).record(*record)
        part_a.merge(part_b)
        assert part_a.days == whole.days
        for day in whole.days:
            for client_key in whole.clients_on(day):
                assert part_a.frontends_for(day, client_key) == (
                    whole.frontends_for(day, client_key)
                )

    def test_merge_sums_overlapping_cells(self):
        a = PassiveLog()
        b = PassiveLog()
        a.record(0, "p1", "fe-a", 10)
        b.record(0, "p1", "fe-a", 5)
        a.merge(b)
        assert a.frontends_for(0, "p1") == {"fe-a": 15}

    def test_merge_empty_and_disjoint_days(self):
        a = PassiveLog()
        a.merge(PassiveLog())
        assert a.days == ()
        b = PassiveLog()
        b.record(1, "p1", "fe-a", 2)
        a.merge(b)
        assert a.days == (1,)


class TestMergeBackend:
    def test_counts_and_pending_combine(self):
        a = BeaconBackend()
        b = BeaconBackend()
        a.on_dns("m1", "ldns-1", "anycast")
        a.on_server("m1", "fe-a")
        a.on_http(HttpLogEntry(0, "m1", "p1", 12.0, True))
        b.on_dns("m2", "ldns-1", "anycast")  # still pending
        a.merge(b)
        assert a.joined_count == 1
        assert a.pending_count == 1

    def test_overlapping_partials_rejected(self):
        a = BeaconBackend()
        b = BeaconBackend()
        a.on_dns("m1", "ldns-1", "anycast")
        b.on_dns("m1", "ldns-2", "anycast")
        with pytest.raises(MeasurementError):
            a.merge(b)


class TestDatasetMerge:
    def test_sliced_halves_merge_to_serial_digest(self, tiny_scenario, tiny_dataset):
        half = len(tiny_scenario.clients) // 2
        first = CampaignRunner(tiny_scenario, client_slice=(0, half)).run()
        second = CampaignRunner(
            tiny_scenario, client_slice=(half, len(tiny_scenario.clients))
        ).run()
        merged = first + second
        assert merged.digest() == tiny_dataset.digest()
        assert merged.beacon_count == tiny_dataset.beacon_count
        assert merged.measurement_count == tiny_dataset.measurement_count

    def test_merge_order_is_irrelevant(self, tiny_scenario, tiny_dataset):
        half = len(tiny_scenario.clients) // 2
        first = CampaignRunner(tiny_scenario, client_slice=(0, half)).run()
        second = CampaignRunner(
            tiny_scenario, client_slice=(half, len(tiny_scenario.clients))
        ).run()
        assert (second + first).digest() == tiny_dataset.digest()

    def test_empty_slice_merges_as_identity(self, tiny_scenario, tiny_dataset):
        full = CampaignRunner(tiny_scenario).run()
        empty = CampaignRunner(tiny_scenario, client_slice=(0, 0)).run()
        assert (full + empty).digest() == tiny_dataset.digest()

    def test_mismatched_calendar_rejected(self, tiny_scenario, tiny_dataset):
        other_config = ScenarioConfig(
            seed=23,
            population=ClientPopulationConfig(prefix_count=60),
            calendar=SimulationCalendar(num_days=1),
        )
        other = CampaignRunner(Scenario.build(other_config)).run()
        with pytest.raises(MeasurementError):
            tiny_dataset + other

    def test_invalid_slice_rejected(self, tiny_scenario):
        with pytest.raises(ConfigurationError):
            CampaignRunner(tiny_scenario, client_slice=(5, 3))
        with pytest.raises(ConfigurationError):
            CampaignRunner(tiny_scenario, client_slice=(0, 10_000))


class TestParallelRunner:
    def test_parallel_digest_matches_serial(self, tiny_scenario, tiny_dataset):
        runner = ParallelCampaignRunner(tiny_scenario, workers=2)
        parallel = runner.run()
        assert parallel.digest() == tiny_dataset.digest()
        assert runner.stats is not None
        assert runner.stats.workers == 2
        assert runner.stats.beacon_count == tiny_dataset.beacon_count
        # Merged dataset is re-homed on the coordinator's client objects.
        assert parallel.clients is tiny_scenario.clients

    def test_workers_resolution_order(self, tiny_scenario):
        assert ParallelCampaignRunner(tiny_scenario).workers == 1
        assert (
            ParallelCampaignRunner(
                tiny_scenario, CampaignConfig(workers=3)
            ).workers
            == 3
        )
        assert (
            ParallelCampaignRunner(
                tiny_scenario, CampaignConfig(workers=3), workers=2
            ).workers
            == 2
        )

    def test_workers_clamped_to_population(self, tiny_scenario):
        runner = ParallelCampaignRunner(tiny_scenario, workers=10_000)
        assert runner.workers == len(tiny_scenario.clients)

    def test_workers_follow_clamped_shard_count(self, tiny_scenario):
        # Regression: the pool must be sized off the clamped shard list
        # (shard_bounds caps shards at the population), never the raw
        # request — otherwise an oversized request spawns idle workers.
        runner = ParallelCampaignRunner(tiny_scenario, workers=10_000)
        assert runner.shards == len(tiny_scenario.clients)
        assert runner.workers == runner.shards

    def test_effective_workers_gauge_reports_clamp(self):
        # 3 clients, 10 requested workers: the gauge must report the
        # clamped count actually used, end to end through a real run.
        scenario = Scenario.build(
            ScenarioConfig(
                seed=23,
                population=ClientPopulationConfig(prefix_count=3),
                calendar=SimulationCalendar(num_days=1),
            )
        )
        runner = ParallelCampaignRunner(scenario, workers=10)
        dataset = runner.run()
        assert runner.workers == 3
        assert runner.stats is not None and runner.stats.workers == 3
        gauges = runner.telemetry.snapshot().gauges
        assert gauges["campaign.effective_workers"]["value"] == 3
        assert gauges["campaign.shards"]["value"] == 3
        assert gauges["campaign.client_coverage"]["value"] == 1.0
        assert not dataset.is_partial

    def test_single_worker_runs_inline(self, tiny_scenario, tiny_dataset):
        runner = ParallelCampaignRunner(tiny_scenario, workers=1)
        assert runner.run().digest() == tiny_dataset.digest()
        assert runner.stats is not None and runner.stats.workers == 1

    def test_run_campaign_dispatch(self, tiny_config, tiny_dataset):
        scenario = Scenario.build(tiny_config)
        dataset, stats = run_campaign(scenario)
        assert dataset.digest() == tiny_dataset.digest()
        assert stats.beacon_count == dataset.beacon_count

    def test_invalid_worker_counts(self, tiny_scenario):
        with pytest.raises(ConfigurationError):
            ParallelCampaignRunner(tiny_scenario, workers=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(workers=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(workers=0)


class TestCampaignStats:
    def test_serial_run_emits_stats(self, tiny_scenario):
        runner = CampaignRunner(tiny_scenario)
        dataset = runner.run()
        stats = runner.stats
        assert stats is not None
        assert stats.beacon_count == dataset.beacon_count
        assert stats.measurement_count == dataset.measurement_count
        assert len(stats.day_seconds) == tiny_scenario.calendar.num_days
        assert stats.wall_seconds > 0
        assert stats.beacons_per_second > 0
        cache = stats.path_cache
        assert cache.anycast_hits + cache.anycast_misses > 0
        assert 0.0 < cache.anycast_hit_rate <= 1.0
        assert 0.0 < cache.unicast_hit_rate <= 1.0
        assert "beacons" in stats.format()

    def test_stats_merge(self):
        a = CampaignStats(
            wall_seconds=2.0, beacon_count=10, measurement_count=40,
            day_seconds=[1.0, 1.0],
        )
        b = CampaignStats(
            wall_seconds=3.0, beacon_count=5, measurement_count=20,
            day_seconds=[0.5, 0.5, 0.5],
        )
        a.merge(b)
        assert a.wall_seconds == 3.0
        assert a.beacon_count == 15
        assert a.measurement_count == 60
        assert a.day_seconds == [1.5, 1.5, 0.5]

    def test_empty_stats_rates_are_zero(self):
        stats = CampaignStats()
        assert stats.beacons_per_second == 0.0
        assert stats.path_cache.anycast_hit_rate == 0.0
