"""Property tests: the load-management control law and overload grammar.

Hypothesis drives the invariants the load-aware campaign machinery leans
on:

* the distributed shed controller is monotone in offered load — a
  front-end that saw uniformly higher utilization never sheds less;
* its fixed point is independent of iteration order (the "no global
  coordination" property): permuting front-end registration and signal
  dict ordering never changes the outcome;
* overload plans compile shard/engine-invariantly — a pure function of
  (spec, seed, calendar length) that survives spec-string round-trips;
* the convex queueing-delay term is monotone, zero at zero, and capped.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdn.fastroute import DistributedLoadController
from repro.latency.model import LatencyConfig, LatencyModel
from repro.simulation.episodes import OverloadKind, OverloadPlan, OverloadSpec

pytestmark = pytest.mark.overload

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_FRONTENDS = tuple(f"fe-{i:02d}" for i in range(5))

_utilization_day = st.fixed_dictionaries(
    {frontend_id: st.floats(0.0, 4.0) for frontend_id in _FRONTENDS}
)


class TestControllerProperties:
    @given(
        days=st.lists(_utilization_day, min_size=1, max_size=6),
        bumps=st.lists(
            st.fixed_dictionaries(
                {fe: st.floats(0.0, 2.0) for fe in _FRONTENDS}
            ),
            min_size=6,
            max_size=6,
        ),
    )
    @SETTINGS
    def test_shed_monotone_in_offered_load(self, days, bumps):
        """Uniformly higher utilization never produces less shedding."""
        low = DistributedLoadController(_FRONTENDS)
        high = DistributedLoadController(_FRONTENDS)
        for day, bump in zip(days, bumps):
            low.observe_day(day)
            high.observe_day(
                {fe: day[fe] + bump[fe] for fe in _FRONTENDS}
            )
        low_shed = low.shed_fractions
        high_shed = high.shed_fractions
        for frontend_id in _FRONTENDS:
            assert (
                high_shed[frontend_id] >= low_shed[frontend_id] - 1e-12
            )

    @given(
        days=st.lists(_utilization_day, min_size=1, max_size=6),
        order=st.permutations(_FRONTENDS),
        data=st.data(),
    )
    @SETTINGS
    def test_fixed_point_independent_of_iteration_order(
        self, days, order, data
    ):
        """Registration and signal-dict order never change the outcome.

        Each update reads exactly one front-end's own signal, so any
        iteration order folds the same per-front-end sequence.
        """
        canonical = DistributedLoadController(_FRONTENDS)
        shuffled = DistributedLoadController(order)
        for day in days:
            canonical.observe_day(day)
            key_order = data.draw(st.permutations(sorted(day)))
            shuffled.observe_day({key: day[key] for key in key_order})
        assert canonical.shed_fractions == shuffled.shed_fractions

    @given(days=st.lists(_utilization_day, min_size=1, max_size=8))
    @SETTINGS
    def test_shed_always_in_unit_interval(self, days):
        controller = DistributedLoadController(_FRONTENDS, gain=2.0)
        for day in days:
            fractions = controller.observe_day(day)
            for value in fractions.values():
                assert 0.0 <= value <= 1.0


_specs = st.lists(
    st.builds(
        OverloadSpec,
        kind=st.sampled_from(sorted(OverloadKind, key=lambda k: k.value)),
        count=st.integers(1, 3),
        day=st.one_of(st.none(), st.integers(0, 30)),
    ),
    min_size=1,
    max_size=4,
)


class TestOverloadCompileProperties:
    @given(specs=_specs, seed=st.integers(0, 2**32), days=st.integers(1, 14))
    @SETTINGS
    def test_compile_is_deterministic(self, specs, seed, days):
        """Same (spec, seed, calendar) -> identical events, always.

        This is the invariant that lets every shard and engine compile
        the plan independently and still agree bit-for-bit.
        """
        plan = OverloadPlan(specs=tuple(specs))
        first = plan.compile(seed, days)
        second = plan.compile(seed, days)
        assert first.events == second.events

    @given(specs=_specs, seed=st.integers(0, 2**32), days=st.integers(1, 14))
    @SETTINGS
    def test_spec_string_round_trip_compiles_identically(
        self, specs, seed, days
    ):
        plan = OverloadPlan(specs=tuple(specs))
        reparsed = OverloadPlan.from_spec(plan.spec_string())
        assert reparsed == plan
        assert reparsed.compile(seed, days).events == plan.compile(
            seed, days
        ).events

    @given(specs=_specs, seed=st.integers(0, 2**32), days=st.integers(1, 14))
    @SETTINGS
    def test_compiled_events_are_well_formed(self, specs, seed, days):
        plan = OverloadPlan(specs=tuple(specs))
        compiled = plan.compile(seed, days)
        assert len(compiled.events) == sum(spec.count for spec in specs)
        for event in compiled.events:
            assert 0 <= event.start_day < days
            assert event.duration_days >= 1
            assert 0.0 <= event.selector < 1.0
            if event.kind is OverloadKind.FLASH_CROWD:
                assert 2.0 <= event.magnitude <= 6.0
            elif event.kind is OverloadKind.REGIONAL_EVENT:
                assert 1.5 <= event.magnitude <= 4.0
            elif event.kind is OverloadKind.DRAIN:
                assert 0.1 <= event.magnitude <= 0.5
            else:
                assert event.magnitude == 0.0
                assert event.start_day + event.duration_days == days
        starts = [
            (e.start_day, e.kind.value, e.selector) for e in compiled.events
        ]
        assert starts == sorted(starts)


class TestQueueingDelayProperties:
    @given(
        us=st.lists(st.floats(0.0, 3.0), min_size=2, max_size=10),
        scale=st.floats(0.1, 20.0),
        cap=st.floats(10.0, 1000.0),
    )
    @SETTINGS
    def test_monotone_zero_at_zero_and_capped(self, us, scale, cap):
        model = LatencyModel(
            LatencyConfig(
                queue_delay_scale_ms=scale, queue_delay_cap_ms=cap
            )
        )
        assert model.queueing_delay_ms(0.0) == 0.0
        ordered = sorted(us)
        delays = [model.queueing_delay_ms(u) for u in ordered]
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier - 1e-12
        for u, delay in zip(ordered, delays):
            assert 0.0 <= delay <= cap
            if u >= 1.0:
                assert delay == cap
