"""Differential oracle: the online predictor against the batch one.

The live service's headline correctness claim is that it adds *no*
prediction logic — only windowing.  These tests replay recorded
campaign datasets (one per measurement engine) through the service and
assert that every closed day's online predictions equal the batch
:class:`~repro.core.predictor.HistoryBasedPredictor` run over the same
day's aggregates:

* **exactly** (``Prediction`` dataclass equality, hence bit-identical
  floats) when the service window keeps exact digests, and
* **within the sketch error bound** when the window promotes digests
  to bounded sketches.

One leg drives the full ``repro replay`` CLI path to keep the
command-line plumbing honest.
"""

import json
import math

import pytest

from repro import cli
from repro.core.predictor import HistoryBasedPredictor
from repro.errors import MeasurementError
from repro.clients.population import ClientPopulationConfig
from repro.measurement.aggregate import (
    GroupedDailyAggregates,
    LatencyDigest,
    RequestDiffLog,
)
from repro.measurement.export import save_dataset
from repro.measurement.logs import PassiveLog
from repro.service import (
    BeaconEvent,
    LiveService,
    PassiveEvent,
    ServiceConfig,
    events_from_dataset,
    predictions_to_obj,
)
from repro.service.replay import PASSIVE_TOTAL_KEY
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.dataset import StudyDataset
from repro.simulation.scenario import Scenario, ScenarioConfig
from tests.helpers import make_client, make_dataset

pytestmark = pytest.mark.service

ENGINES = ("reference", "vectorized", "matrix")

SKETCH_THRESHOLD = 16
SKETCH_ACCURACY = 0.01


@pytest.fixture(scope="module")
def replay_scenario() -> Scenario:
    return Scenario.build(
        ScenarioConfig(
            seed=42,
            population=ClientPopulationConfig(prefix_count=40),
            calendar=SimulationCalendar(num_days=3),
        )
    )


@pytest.fixture(scope="module", params=ENGINES)
def engine_dataset(request, replay_scenario) -> StudyDataset:
    runner = CampaignRunner(
        replay_scenario, CampaignConfig(engine=request.param)
    )
    return runner.run()


def run_service(dataset, **overrides):
    config = ServiceConfig(**overrides)
    service = LiveService(
        config,
        num_days=dataset.calendar.num_days,
        source_fingerprint=dataset.digest(),
    )
    result = service.run_stream(events_from_dataset(dataset))
    return service, result


class TestExactOracle:
    def test_online_equals_batch_for_every_group_and_day(
        self, engine_dataset
    ):
        """Exact mode: bit-identical predictions on both planes."""
        _, result = run_service(engine_dataset)
        batch = HistoryBasedPredictor()
        planes = {
            "ecs": engine_dataset.ecs_aggregates,
            "ldns": engine_dataset.ldns_aggregates,
        }
        compared = 0
        for day in range(engine_dataset.calendar.num_days):
            online = result.predictions[day]
            for grouping, aggregates in planes.items():
                expected = batch.predict_day(aggregates, day)
                assert online[grouping] == expected
                compared += len(expected)
        assert compared > 0

    def test_every_day_closes_and_digest_is_stable(self, engine_dataset):
        _, first = run_service(engine_dataset)
        _, second = run_service(engine_dataset)
        assert first.days_closed == engine_dataset.calendar.num_days
        assert sorted(first.predictions) == list(
            range(engine_dataset.calendar.num_days)
        )
        assert first.predictions_digest == second.predictions_digest
        assert first.stream_digest == second.stream_digest
        assert first.quarantine_digest == second.quarantine_digest


class TestSketchOracle:
    def test_online_sketch_within_error_bound(self, engine_dataset):
        """Sketch window: deterministic, and near the exact percentile."""
        _, result = run_service(
            engine_dataset,
            sketch_threshold=SKETCH_THRESHOLD,
            sketch_accuracy=SKETCH_ACCURACY,
        )
        batch = HistoryBasedPredictor()
        config = batch.config
        ecs = engine_dataset.ecs_aggregates
        checked = 0
        for day in range(engine_dataset.calendar.num_days):
            for group, online in result.predictions[day]["ecs"].items():
                digests = ecs.targets_for(day, group)
                digest = digests.get(online.target_id)
                assert digest is not None
                # Rebuild the sketched digest over the same multiset:
                # canonical promotion makes its state (and its error
                # bound) a pure function of the samples.
                rebuilt = LatencyDigest(
                    exact_threshold=SKETCH_THRESHOLD,
                    relative_accuracy=SKETCH_ACCURACY,
                )
                ordered = sorted(digest.values_view().tolist())
                for value in ordered:
                    rebuilt.add(value)
                if rebuilt.is_exact:
                    assert online.metric_ms == digest.percentile(
                        config.metric_percentile
                    )
                else:
                    bound = rebuilt.sketch.relative_error_bound
                    assert math.isclose(
                        online.metric_ms,
                        rebuilt.percentile(config.metric_percentile),
                    )
                    # The sketch answers within its relative bound of a
                    # sample at the queried rank; with a few dozen
                    # samples the exact interpolated percentile falls
                    # between ranks, so compare against the bracketing
                    # rank samples.
                    rank = (config.metric_percentile / 100.0) * (
                        len(ordered) - 1
                    )
                    candidates = {
                        ordered[math.floor(rank)],
                        ordered[math.ceil(rank)],
                    }
                    assert any(
                        abs(online.metric_ms - sample) / sample
                        <= 2 * bound
                        for sample in candidates
                    )
                checked += 1
        assert checked > 0

    def test_sketch_run_is_deterministic(self, engine_dataset):
        _, first = run_service(
            engine_dataset, sketch_threshold=SKETCH_THRESHOLD
        )
        _, second = run_service(
            engine_dataset, sketch_threshold=SKETCH_THRESHOLD
        )
        assert first.predictions_digest == second.predictions_digest


class TestCliReplay:
    def test_cli_replay_matches_in_process_service(
        self, engine_dataset, tmp_path
    ):
        dataset_path = tmp_path / "campaign.json"
        predictions_path = tmp_path / "predictions.json"
        manifest_path = tmp_path / "manifest.json"
        save_dataset(engine_dataset, str(dataset_path))
        code = cli.main(
            [
                "replay",
                str(dataset_path),
                "--predictions-out", str(predictions_path),
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        _, expected = run_service(engine_dataset)
        written = json.loads(predictions_path.read_text())
        assert written == predictions_to_obj(expected.predictions)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["digests"] == {
            "predictions": expected.predictions_digest,
            "stream": expected.stream_digest,
            "quarantine": expected.quarantine_digest,
        }
        assert manifest["events_total"] == expected.events_total


class TestEventRecovery:
    def test_stream_covers_every_recorded_sample(self, engine_dataset):
        events = events_from_dataset(engine_dataset)
        beacons = [e for e in events if isinstance(e, BeaconEvent)]
        passive = [e for e in events if isinstance(e, PassiveEvent)]
        assert len(beacons) == engine_dataset.measurement_count
        assert passive
        days = [e.day for e in events]
        assert days == sorted(days)

    def test_sketch_mode_export_is_rejected(self):
        client = make_client(1)
        aggregates = GroupedDailyAggregates("ecs", exact_threshold=2)
        for value in (10.0, 20.0, 30.0, 40.0):
            aggregates.observe(0, client.key, "anycast", value)
        dataset = StudyDataset(
            calendar=SimulationCalendar(num_days=1),
            clients=(client,),
            ecs_aggregates=aggregates,
            ldns_aggregates=GroupedDailyAggregates("ldns"),
            request_diffs=RequestDiffLog(),
            passive=PassiveLog(),
        )
        with pytest.raises(MeasurementError, match="sketch-mode"):
            events_from_dataset(dataset)

    def test_unknown_group_key_is_rejected(self):
        dataset = make_dataset(
            [make_client(1)],
            num_days=1,
            ecs_samples=[(0, "203.0.113.0/24", "anycast", [10.0] * 25)],
        )
        with pytest.raises(MeasurementError, match="no client record"):
            events_from_dataset(dataset)

    def test_bounded_passive_log_replays_day_totals(self):
        client = make_client(1)
        passive = PassiveLog(bounded=True)
        passive.record(0, client.key, "fe-a", 7)
        passive.record(0, client.key, "fe-b", 3)
        dataset = make_dataset(
            [client],
            num_days=1,
            ecs_samples=[(0, client.key, "anycast", [10.0] * 25)],
        )
        dataset = StudyDataset(
            calendar=dataset.calendar,
            clients=dataset.clients,
            ecs_aggregates=dataset.ecs_aggregates,
            ldns_aggregates=dataset.ldns_aggregates,
            request_diffs=dataset.request_diffs,
            passive=passive,
        )
        events = events_from_dataset(dataset)
        counts = {
            (e.client_key, e.frontend_id): e.count
            for e in events
            if isinstance(e, PassiveEvent)
        }
        assert counts == {
            (PASSIVE_TOTAL_KEY, "fe-a"): 7,
            (PASSIVE_TOTAL_KEY, "fe-b"): 3,
        }
        service = LiveService(ServiceConfig(), num_days=1)
        result = service.run_stream(events)
        assert result.passive_admitted == 2
