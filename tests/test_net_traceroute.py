"""Tests for traceroute synthesis (repro.net.traceroute)."""

import pytest

from repro.geo.metros import MetroDatabase
from repro.net.bgp import Announcement, RouteComputation
from repro.net.ip import IPv4Prefix
from repro.net.topology import (
    AsRole,
    AutonomousSystem,
    EgressPolicy,
    LinkKind,
    TopologyBuilder,
)
from repro.net.traceroute import trace_route

PREFIX = IPv4Prefix.parse("192.0.2.0/24")


@pytest.fixture()
def moscow_stockholm():
    """The paper's §5 case study: an ISP carries a Moscow client's traffic
    to Stockholm before handing it to the CDN."""
    builder = TopologyBuilder(MetroDatabase())
    builder.add_as(
        AutonomousSystem(
            asn=1, name="cdn", role=AsRole.CDN,
            pop_metros=frozenset({"sto", "mow"}),
        )
    )
    builder.add_as(
        AutonomousSystem(
            asn=100, name="ru-isp", role=AsRole.ACCESS,
            pop_metros=frozenset({"mow", "sto"}),
            egress_policy=EgressPolicy.COLD_POTATO,
            cold_potato_egress="sto",
        )
    )
    builder.connect(100, 1, LinkKind.PEERING)
    topo = builder.build()
    rib = RouteComputation(topo).compute(Announcement(PREFIX, 1))
    return topo, rib


def test_trace_reproduces_moscow_stockholm(moscow_stockholm):
    topo, rib = moscow_stockholm
    trace = trace_route(topo, rib, 100, "mow")
    assert [h.metro_code for h in trace.hops] == ["mow", "sto"]
    assert trace.destination_asn == 1
    # Moscow–Stockholm is roughly 1200 km.
    assert trace.total_km == pytest.approx(1230, abs=80)


def test_cumulative_distances_monotone(moscow_stockholm):
    topo, rib = moscow_stockholm
    trace = trace_route(topo, rib, 100, "mow")
    cumulative = [h.cumulative_km for h in trace.hops]
    assert cumulative == sorted(cumulative)
    assert trace.hops[0].leg_km == 0.0


def test_stretch_is_one_for_direct_path(moscow_stockholm):
    topo, rib = moscow_stockholm
    trace = trace_route(topo, rib, 100, "mow")
    assert trace.stretch == pytest.approx(1.0)


def test_stretch_one_for_zero_distance(moscow_stockholm):
    topo, rib = moscow_stockholm
    # A client already in Stockholm ingresses locally: direct == 0.
    trace = trace_route(topo, rib, 100, "sto")
    assert trace.direct_km == 0.0
    assert trace.stretch == 1.0


def test_format_contains_hops(moscow_stockholm):
    topo, rib = moscow_stockholm
    text = trace_route(topo, rib, 100, "mow").format()
    assert "Moscow" in text
    assert "Stockholm" in text
    assert "AS100" in text
    assert text.count("\n") == 2  # header + 2 hops
