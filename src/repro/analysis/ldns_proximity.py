"""Client–LDNS proximity: the assumption DNS redirection stands on.

§3.3 justifies using LDNS location for candidate selection by citing [17]
(Akamai's end-user mapping study): "excluding 8% of demand from public
resolvers, only 11-12% of demand comes from clients who are further than
500km from their LDNS."  This analysis measures the same quantities over
the simulated population, so the reproduction's resolver model can be
checked against the numbers the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.analysis.stats import CdfSeries, WeightedDistribution, log2_grid
from repro.clients.population import ClientPrefix
from repro.dns.ldns import LdnsDirectory, LdnsKind
from repro.geo.coords import haversine_km


@dataclass(frozen=True)
class LdnsProximityResult:
    """Distribution of client–LDNS distances, demand-weighted.

    Attributes:
        series: Demand-weighted CDF of client–resolver distance.
        public_demand_fraction: Share of demand using public resolvers.
        far_demand_fraction: Share of *non-public* demand further than
            ``far_threshold_km`` from its resolver ([17]'s 11-12%).
        far_threshold_km: The distance cut (500 km in the paper).
        median_km: Demand-weighted median client–resolver distance
            (non-public demand).
    """

    series: CdfSeries
    public_demand_fraction: float
    far_demand_fraction: float
    far_threshold_km: float
    median_km: float

    def format(self) -> str:
        """§3.3-style summary plus CDF rows."""
        return "\n".join(
            [
                "Client-LDNS proximity (demand-weighted)",
                f"  public-resolver demand:          "
                f"{self.public_demand_fraction:6.1%}  (paper cites ~8%)",
                f"  non-public demand > "
                f"{self.far_threshold_km:.0f} km:      "
                f"{self.far_demand_fraction:6.1%}  (paper cites 11-12%)",
                f"  median distance (non-public):    {self.median_km:6.0f} km",
                self.series.format_rows(),
            ]
        )


def ldns_proximity(
    clients: Sequence[ClientPrefix],
    directory: LdnsDirectory,
    far_threshold_km: float = 500.0,
) -> LdnsProximityResult:
    """Measure client–LDNS distances over a population.

    Distances use true positions on both sides — this checks the *model*,
    not the geolocation database.
    """
    if not clients:
        raise AnalysisError("need at least one client")
    if far_threshold_km <= 0:
        raise AnalysisError("far_threshold_km must be positive")

    distances = []
    weights = []
    public_demand = 0.0
    far_demand = 0.0
    nonpublic_demand = 0.0
    total_demand = 0.0
    for client in clients:
        server = directory.get(client.ldns_id)
        demand = client.daily_queries
        total_demand += demand
        if server.kind is LdnsKind.PUBLIC:
            public_demand += demand
            continue
        distance = haversine_km(client.location, server.location)
        distances.append(distance)
        weights.append(demand)
        nonpublic_demand += demand
        if distance > far_threshold_km:
            far_demand += demand
    if not distances:
        raise AnalysisError("every client uses a public resolver")

    dist = WeightedDistribution(distances, weights)
    # The log grid starts at 64 km; prepend small buckets so the
    # mostly-local mass is visible.
    grid = (1.0, 8.0, 16.0, 32.0) + log2_grid(64.0, 8192.0)
    return LdnsProximityResult(
        series=dist.cdf_series("client-LDNS distance", grid),
        public_demand_fraction=(
            public_demand / total_demand if total_demand else 0.0
        ),
        far_demand_fraction=(
            far_demand / nonpublic_demand if nonpublic_demand else 0.0
        ),
        far_threshold_km=far_threshold_km,
        median_km=dist.median(),
    )
