"""§4's CDN deployment-size comparison table.

Paper: four extreme outliers (Google/Akamai ~1000+, the two Chinese
CDNs >100 in China); CDNetworks (161) and SkyparkCDN (119) next; the
remaining 17 CDNs run 17..62 locations, with the measured CDN at the
Level3 (62) / MaxCDN scale.
"""

from conftest import write_report


def format_table(rows):
    lines = ["§4 — CDN deployment sizes (locations)"]
    for entry in rows:
        flags = []
        if entry.is_outlier:
            flags.append("outlier")
        if entry.is_anycast:
            flags.append("anycast")
        suffix = f" ({', '.join(flags)})" if flags else ""
        lines.append(f"  {entry.name:24s} {entry.locations:5d}{suffix}")
    return "\n".join(lines)


def test_table_cdn_sizes(benchmark, paper_study):
    rows = benchmark(paper_study.cdn_size_table)
    write_report("table_cdn_sizes", format_table(rows))

    by_name = {e.name: e for e in rows}
    bing = next(e for e in rows if "Bing" in e.name)
    # The measured deployment sits at the Level3/MaxCDN scale.
    assert abs(bing.locations - by_name["Level3"].locations) <= 10
    # Outliers really are outliers: bigger than every non-outlier except
    # the two large non-outlier deployments the paper singles out.
    non_outlier_max = max(
        e.locations for e in rows if not e.is_outlier
    )
    assert non_outlier_max == 161  # CDNetworks
    assert sum(1 for e in rows if e.is_outlier) == 4
