"""End-to-end telemetry: instrumented campaigns, shard merges, exports.

The contract under test mirrors the dataset determinism contract: the
merged telemetry of a sharded run must agree with the serial run on
every counter (spans and wall-clock legitimately differ — they measure
the host, not the simulation).
"""

import json

import pytest

from repro.clients.population import ClientPopulationConfig
from repro.core.study import AnycastStudy
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignRunner,
    CampaignStats,
    PathCacheStats,
)
from repro.simulation.clock import SimulationCalendar
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import (
    TelemetrySnapshot,
    build_run_manifest,
    format_run_report,
    manifest_path_for,
    write_run_manifest,
)


@pytest.fixture(scope="module")
def tiny_config() -> ScenarioConfig:
    return ScenarioConfig(
        seed=37,
        population=ClientPopulationConfig(prefix_count=60),
        calendar=SimulationCalendar(num_days=2),
    )


@pytest.fixture(scope="module")
def tiny_scenario(tiny_config) -> Scenario:
    return Scenario.build(tiny_config)


@pytest.fixture(scope="module")
def serial_run(tiny_scenario):
    runner = CampaignRunner(tiny_scenario)
    dataset = runner.run()
    return dataset, runner.stats, runner.telemetry.snapshot()


class TestInstrumentedCampaign:
    def test_counters_match_dataset(self, serial_run):
        dataset, _, snapshot = serial_run
        assert (
            snapshot.counters["campaign.beacons_total"]
            == dataset.beacon_count
        )
        assert (
            snapshot.counters["campaign.measurements_total"]
            == dataset.measurement_count
        )
        assert snapshot.gauges["campaign.days"]["value"] == 2

    def test_phase_tree_covers_wall_clock(self, serial_run):
        _, _, snapshot = serial_run
        wall = snapshot.gauges["campaign.wall_seconds"]["value"]
        campaign = snapshot.spans["campaign"]
        assert campaign.seconds == pytest.approx(wall)
        # Acceptance: the phase children explain >= 90% of the run.
        assert snapshot.phase_coverage("campaign") >= 0.90
        day_children = {
            path.rsplit("/", 1)[-1]
            for path, _ in snapshot.span_children("campaign/day")
        }
        assert day_children == {"workload", "passive", "beacons"}

    def test_stats_are_views_over_the_snapshot(self, serial_run):
        dataset, stats, snapshot = serial_run
        rebuilt = CampaignStats.from_snapshot(snapshot)
        assert rebuilt.beacon_count == stats.beacon_count
        assert rebuilt.measurement_count == stats.measurement_count
        assert rebuilt.engine == stats.engine == "reference"
        assert rebuilt.workers == 1
        assert rebuilt.day_seconds == pytest.approx(stats.day_seconds)
        cache = PathCacheStats.from_snapshot(snapshot)
        assert cache.anycast_hits == stats.path_cache.anycast_hits
        assert cache.unicast_misses == stats.path_cache.unicast_misses
        assert dataset.beacon_count == rebuilt.beacon_count

    def test_day_seconds_come_from_indexed_span(self, serial_run):
        _, stats, snapshot = serial_run
        assert len(snapshot.day_seconds()) == 2
        assert snapshot.day_seconds() == pytest.approx(stats.day_seconds)

    def test_dns_cache_counters_present(self, serial_run):
        _, _, snapshot = serial_run
        hits = snapshot.counters["dns.cache.hits_total"]
        misses = snapshot.counters["dns.cache.misses_total"]
        assert hits > 0 and misses > 0


class TestShardedTelemetry:
    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_merged_counters_equal_serial(self, tiny_scenario, engine):
        serial = CampaignRunner(
            tiny_scenario, CampaignConfig(engine=engine)
        )
        serial_dataset = serial.run()
        serial_counters = serial.telemetry.snapshot().counters

        sharded = ParallelCampaignRunner(
            tiny_scenario, CampaignConfig(engine=engine), workers=3
        )
        sharded_dataset = sharded.run()
        merged = sharded.telemetry.snapshot()

        assert sharded_dataset.digest() == serial_dataset.digest()
        # Cache hit/miss splits depend on cache locality, which sharding
        # legitimately changes; every other counter — and the cache
        # *totals* (hits + misses = lookups) — must agree exactly.
        cache_prefixes = ("path_cache.", "dns.cache.")
        for name, value in serial_counters.items():
            if not name.startswith(cache_prefixes):
                assert merged.counters[name] == value, name
        for family in ("path_cache.anycast", "path_cache.unicast", "dns.cache"):
            serial_total = (
                serial_counters[f"{family}.hits_total"]
                + serial_counters[f"{family}.misses_total"]
            )
            merged_total = (
                merged.counters[f"{family}.hits_total"]
                + merged.counters[f"{family}.misses_total"]
            )
            assert merged_total == serial_total, family
        assert merged.context["workers"] == 3
        assert merged.context["engine"] == engine

    def test_merged_spans_aggregate_all_shards(self, tiny_scenario):
        sharded = ParallelCampaignRunner(tiny_scenario, workers=3)
        sharded.run()
        snapshot = sharded.telemetry.snapshot()
        # Each of the 3 shards entered the campaign span once.
        assert snapshot.spans["campaign"].count == 3
        # The coordinator stamps its own elapsed time over the shard max.
        assert snapshot.gauges["campaign.wall_seconds"]["value"] > 0.0

    def test_study_exposes_merged_snapshot(self, tiny_config):
        study = AnycastStudy(tiny_config)
        study.dataset
        snapshot = study.telemetry_snapshot()
        assert "scenario_build" in snapshot.spans
        assert snapshot.counters["campaign.beacons_total"] > 0
        assert snapshot.context["seed"] == tiny_config.seed


class TestReportAndManifest:
    def test_run_report_renders(self, serial_run):
        _, _, snapshot = serial_run
        report = format_run_report(snapshot)
        assert "phase tree" in report
        assert "campaign.beacons_total" in report
        assert "campaign.day_seconds" in report
        assert "seed=37" in report

    def test_manifest_round_trip(self, serial_run, tmp_path):
        dataset, _, snapshot = serial_run
        artifact = tmp_path / "dataset.json"
        manifest_path = manifest_path_for(str(artifact))
        assert manifest_path.endswith("dataset.manifest.json")
        manifest = write_run_manifest(
            manifest_path, snapshot, dataset=dataset,
            extra={"artifact": str(artifact)},
        )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded == json.loads(json.dumps(manifest))
        assert loaded["seed"] == 37
        assert loaded["beacon_count"] == dataset.beacon_count
        assert loaded["dataset_digest"] == dataset.digest()
        assert loaded["phase_coverage"]["campaign"] >= 0.90
        assert "campaign/day" in loaded["phase_seconds"]

    def test_build_manifest_without_dataset(self, serial_run):
        _, _, snapshot = serial_run
        manifest = build_run_manifest(snapshot)
        assert "dataset_digest" not in manifest
        assert manifest["engine"] == "reference"

    def test_snapshot_export_round_trip(self, serial_run):
        _, _, snapshot = serial_run
        restored = TelemetrySnapshot.from_json(snapshot.to_json())
        assert restored.counters == snapshot.counters
        prometheus = restored.to_prometheus()
        assert "repro_campaign_beacons_total" in prometheus
        assert 'phase="campaign/day/beacons"' in prometheus
