"""The online §6 predictor: batch scoring over the sliding window.

The online predictor owns no scoring logic.  At every tick it hands the
window's per-day aggregate buckets to the batch
:class:`repro.core.predictor.HistoryBasedPredictor` — the same class,
the same ``choose_target`` core, the same 25th-percentile/≥20-sample
rule — so an online prediction at clock tick *d* is *definitionally*
the batch prediction over the same window.  What this module adds is
bookkeeping: accumulating per-day prediction maps as days close,
serializing them into service checkpoints (float ``repr`` round-trips
exactly, so a resumed run's restored predictions hash identically),
and the canonical :func:`predictions_digest` the chaos-parity tests
compare.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional

from repro.core.predictor import (
    HistoryBasedPredictor,
    Prediction,
    PredictorConfig,
)
from repro.errors import PredictionError
from repro.service.window import GROUPINGS, PredictionWindow

#: day → grouping ('ecs' | 'ldns') → group → Prediction
DayPredictions = Dict[str, Dict[str, Prediction]]


class OnlinePredictor:
    """Incremental §6 predictions over a :class:`PredictionWindow`."""

    def __init__(
        self,
        window: PredictionWindow,
        config: Optional[PredictorConfig] = None,
    ) -> None:
        self.window = window
        self.predictor = HistoryBasedPredictor(config)
        #: Closed-day predictions accumulated so far.
        self.by_day: Dict[int, DayPredictions] = {}

    @property
    def config(self) -> PredictorConfig:
        """The §6 parameters in force."""
        return self.predictor.config

    def tick(self, day: int) -> DayPredictions:
        """Predictions for ``day`` from the window, as of now.

        Pure read: can be taken at any clock tick while the day is
        still filling (live telemetry does) — the day-close tick is
        simply the last one, after which the day's bucket becomes
        evictable.

        Raises:
            PredictionError: when the day is outside the window (its
                bucket was evicted — predictions must be taken before
                eviction, which the ingestion loop's day-close ordering
                guarantees).
        """
        bucket = self.window.aggregates_for(day)
        if bucket is None:
            if self.window.days and day < self.window.days[0]:
                raise PredictionError(
                    f"day {day} was evicted from the window "
                    f"(retained: {self.window.days})"
                )
            return {grouping: {} for grouping in GROUPINGS}
        ecs, ldns = bucket
        return {
            "ecs": self.predictor.predict_day(ecs, day),
            "ldns": self.predictor.predict_day(ldns, day),
        }

    def close_day(self, day: int) -> DayPredictions:
        """Take the day's final predictions and record them.

        Idempotent: a day already closed (e.g. restored from a
        checkpoint) returns its recorded predictions untouched — closed
        days are final, and re-closing one after its bucket was evicted
        must never wipe what was recorded.
        """
        if day in self.by_day:
            return self.by_day[day]
        predictions = self.tick(day)
        self.by_day[day] = predictions
        return predictions


# ----------------------------------------------------------------------
# Canonical serialization and digest
# ----------------------------------------------------------------------


def predictions_to_obj(
    by_day: Mapping[int, DayPredictions]
) -> Dict[str, Any]:
    """JSON-compatible form of accumulated predictions.

    Floats serialize by ``repr`` so the round-trip is exact — a resumed
    service restoring pre-crash days from a checkpoint reproduces the
    uninterrupted run's :func:`predictions_digest` bit for bit.
    """
    document: Dict[str, Any] = {}
    for day in sorted(by_day):
        planes: Dict[str, Any] = {}
        for grouping in GROUPINGS:
            rows = {}
            for group, prediction in sorted(
                by_day[day].get(grouping, {}).items()
            ):
                rows[group] = {
                    "target": prediction.target_id,
                    "metric_ms": repr(prediction.metric_ms),
                    "anycast_metric_ms": (
                        None
                        if prediction.anycast_metric_ms is None
                        else repr(prediction.anycast_metric_ms)
                    ),
                }
            planes[grouping] = rows
        document[str(day)] = planes
    return document


def predictions_from_obj(obj: Mapping[str, Any]) -> Dict[int, DayPredictions]:
    """Rebuild accumulated predictions from :func:`predictions_to_obj`.

    Raises:
        PredictionError: on a malformed document.
    """
    try:
        by_day: Dict[int, DayPredictions] = {}
        for day_text, planes in obj.items():
            day = int(day_text)
            restored: DayPredictions = {}
            for grouping in GROUPINGS:
                rows: Dict[str, Prediction] = {}
                for group, row in planes.get(grouping, {}).items():
                    anycast = row.get("anycast_metric_ms")
                    rows[str(group)] = Prediction(
                        group=str(group),
                        target_id=str(row["target"]),
                        metric_ms=float(row["metric_ms"]),
                        anycast_metric_ms=(
                            None if anycast is None else float(anycast)
                        ),
                    )
                restored[grouping] = rows
            by_day[day] = restored
        return by_day
    except (KeyError, TypeError, ValueError) as error:
        raise PredictionError(
            f"malformed predictions document ({error})"
        ) from error


def predictions_digest(by_day: Mapping[int, DayPredictions]) -> str:
    """Canonical SHA-256 over every (day, grouping, group) prediction.

    Fully sorted traversal, floats by exact ``repr`` — the fingerprint
    the replay-parity and chaos-parity tests compare across runs.
    """
    h = hashlib.sha256()
    for day in sorted(by_day):
        for grouping in GROUPINGS:
            for group, prediction in sorted(
                by_day[day].get(grouping, {}).items()
            ):
                h.update(
                    repr(
                        (
                            day,
                            grouping,
                            group,
                            prediction.target_id,
                            repr(prediction.metric_ms),
                            None
                            if prediction.anycast_metric_ms is None
                            else repr(prediction.anycast_metric_ms),
                        )
                    ).encode("utf-8")
                )
                h.update(b"\x1f")
    return h.hexdigest()
