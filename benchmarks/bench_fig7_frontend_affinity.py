"""Fig 7 — cumulative fraction of clients that changed front-ends over a
week (Wednesday through Tuesday).

Paper: 7% within the first day; 2-4% more per weekday; under 0.5% on
weekend days; 21% across the whole week.
"""

from conftest import write_report


def test_fig7_frontend_affinity(benchmark, paper_study):
    result = benchmark(paper_study.fig7_frontend_affinity, 7)
    write_report("fig7_frontend_affinity", result.format())

    # A visible minority churns on day one...
    assert 0.02 <= result.first_day_fraction <= 0.16
    # ...and the weekly total lands in the paper's neighborhood, with the
    # vast majority of clients never switching.
    assert 0.08 <= result.week_fraction <= 0.35
    # Weekend increments (Sat=index 3, Sun=index 4 for an Apr-1 start) are
    # small compared with weekday increments.
    weekend = result.daily_increment(3) + result.daily_increment(4)
    weekdays = (
        result.daily_increment(1)
        + result.daily_increment(2)
        + result.daily_increment(5)
        + result.daily_increment(6)
    )
    assert weekend < weekdays
