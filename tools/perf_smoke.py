"""CI performance smoke test for the measurement engines.

Runs one small campaign through both engines on the same host and fails
(exit code 1) if the vectorized engine's serial beacon throughput is not
at least ``--min-speedup`` times the reference engine's.  The threshold
is deliberately lower than the benchmark's recorded headline number
(``benchmarks/out/pipeline_performance.txt``) so shared CI runners don't
flake, while still catching any change that de-vectorizes the hot path.

Also asserts the vectorized engine's correctness contract: a serial run
and a 2-worker sharded run produce bit-identical datasets (same
``StudyDataset.digest()``).

The matrix leg (always on) runs the same campaign through the whole-day
matrix engine and enforces its two contracts: the dataset digest is
bit-identical to the vectorized run's (the chunked engine is the matrix
engine's oracle — they share every counter-keyed draw), and its beacon
throughput is at least ``--min-matrix-speedup`` times the vectorized
serial rate.

With ``--fault-plan`` the smoke additionally runs the same sharded
campaign under an injected fault schedule (worker crashes, hangs,
transient exceptions, corrupted payloads, merge failures — see
``repro.faults``) and fails unless the retried run's digest is
bit-identical to the clean run's.  ``--fault-manifest-out`` writes that
chaos run's manifest (fired faults, retry counters, coverage) for CI to
archive.

With ``--dirty-plan`` it runs the dirty-data chaos leg: the same campaign
with record-level faults (``record-corrupt``, ``record-clock-skew``,
``record-truncate``) under the lenient validation policy, asserting the
quarantine identity — the clean measurement count equals the dirty count
plus exactly the quarantined records — and that serial, 2-worker sharded,
and reference-engine runs agree on the dirty digest and quarantine
accounting.  It then saves the dirty dataset through the framed exporter,
tears its tail off, and requires the recovery loader to salvage the
intact prefix.  ``--dirty-manifest-out`` archives the accounting.

The sketch leg (always on) reruns the campaign in bounded sketch mode
(``--sketch-threshold``), requires the serial and 2-worker sketch digests
to match bit-for-bit, and requires the sketch-mode Fig 3/Fig 5 headline
fractions to stay within ``--sketch-tolerance`` of the exact run's.

The memory leg (``--memory-populations A,B``) runs the bounded campaign
at two population sizes with a tracemalloc probe around each and fails
if peak traced memory grows super-linearly in the population — the
cheap in-smoke guard against retention regressions; the strict flatness
gate lives in ``tools/memory_smoke.py``.  Every leg records both
tracemalloc peaks and ``resource.getrusage`` peak RSS in its manifest.

Usage::

    PYTHONPATH=src python tools/perf_smoke.py [--min-speedup 3.0] \\
        [--fault-plan crash:1] [--fault-manifest-out manifest.json] \\
        [--dirty-plan record-corrupt:8] [--dirty-manifest-out dirty.json]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Optional, Sequence

from repro.analysis.anycast_perf import WORLD, anycast_penalty_ccdf
from repro.analysis.poor_paths import poor_path_prevalence
from repro.clients.population import ClientPopulationConfig
from repro.faults import FaultPlan
from repro.measurement.export import recover_dataset, save_dataset
from repro.simulation.campaign import CampaignConfig, CampaignRunner
from repro.simulation.clock import SimulationCalendar
from repro.simulation.episodes import OverloadPlan
from repro.simulation.parallel import ParallelCampaignRunner
from repro.simulation.scenario import Scenario, ScenarioConfig
from repro.telemetry import (
    BenchHistory,
    MemoryProbe,
    peak_rss_bytes,
    record_from_snapshot,
    write_run_manifest,
)


def _timed_serial(scenario: Scenario, engine: str):
    """Run one serial campaign; timings come from its telemetry snapshot."""
    runner = CampaignRunner(scenario, CampaignConfig(engine=engine))
    with MemoryProbe() as probe:
        dataset = runner.run()
    snapshot = runner.telemetry.snapshot()
    seconds = snapshot.gauges["campaign.wall_seconds"]["value"]
    rate = snapshot.counters["campaign.beacons_total"] / seconds
    return dataset, rate, seconds, snapshot, probe.peak_bytes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--prefixes", type=int, default=200)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required vectorized/reference beacons-per-second ratio",
    )
    parser.add_argument(
        "--min-matrix-speedup", type=float, default=2.0,
        help="required matrix/vectorized beacons-per-second ratio",
    )
    parser.add_argument(
        "--fault-plan", metavar="SPEC",
        help=(
            "also run a fault-injected 2-worker campaign (spec like "
            "'crash:1,exception:1') and require its retried digest to "
            "match the clean run bit-for-bit"
        ),
    )
    parser.add_argument(
        "--fault-manifest-out", metavar="PATH",
        help="write the chaos run's manifest here (requires --fault-plan)",
    )
    parser.add_argument(
        "--dirty-plan", metavar="SPEC",
        help=(
            "also run the dirty-data chaos leg (spec of record-level "
            "kinds like 'record-corrupt:8,record-clock-skew:4') and "
            "require exact quarantine accounting across serial, sharded, "
            "and reference runs plus torn-tail recovery"
        ),
    )
    parser.add_argument(
        "--dirty-manifest-out", metavar="PATH",
        help=(
            "write the dirty-data leg's manifest here (requires "
            "--dirty-plan)"
        ),
    )
    parser.add_argument(
        "--sketch-threshold", type=int, default=64, metavar="N",
        help=(
            "per-digest exact-sample budget for the bounded sketch leg "
            "(digests above it compress into mergeable sketches)"
        ),
    )
    parser.add_argument(
        "--sketch-tolerance", type=float, default=0.05, metavar="FRAC",
        help=(
            "max absolute drift allowed between exact and sketch-mode "
            "Fig 3 / Fig 5 headline fractions"
        ),
    )
    parser.add_argument(
        "--max-load-overhead", type=float, default=0.10, metavar="FRAC",
        help=(
            "max beacons/s throughput loss the finite-capacity leg "
            "(--frontend-capacity path with a live overload drill) may "
            "cost over the capacity-off vectorized run"
        ),
    )
    parser.add_argument(
        "--memory-populations", default="120,360", metavar="A,B",
        help=(
            "two prefix counts for the memory leg; peak traced memory "
            "must not grow super-linearly between them (empty to skip)"
        ),
    )
    parser.add_argument(
        "--memory-slack", type=float, default=1.25, metavar="X",
        help=(
            "memory leg tolerance: peak ratio must be <= population "
            "ratio times this factor"
        ),
    )
    parser.add_argument(
        "--rss-manifest-out", metavar="PATH",
        help="write the memory/RSS accounting manifest here",
    )
    parser.add_argument(
        "--history-out", metavar="PATH", default="BENCH_history.json",
        help=(
            "append one perf-history record per engine leg to this "
            "ledger for tools/bench_history.py (empty string disables; "
            "default %(default)s)"
        ),
    )
    args = parser.parse_args(argv)

    scenario = Scenario.build(
        ScenarioConfig(
            seed=args.seed,
            population=ClientPopulationConfig(prefix_count=args.prefixes),
            calendar=SimulationCalendar(num_days=args.days),
        )
    )

    ref_dataset, ref_rate, ref_seconds, ref_snapshot, ref_peak = (
        _timed_serial(scenario, "reference")
    )
    vec_dataset, vec_rate, vec_seconds, vec_snapshot, vec_peak = (
        _timed_serial(scenario, "vectorized")
    )
    mat_dataset, mat_rate, mat_seconds, mat_snapshot, mat_peak = (
        _timed_serial(scenario, "matrix")
    )
    speedup = vec_rate / ref_rate
    matrix_speedup = mat_rate / vec_rate

    if mat_dataset.digest() != vec_dataset.digest():
        print(
            "FAIL: matrix engine digest diverged from its vectorized "
            "oracle (the engines must share every counter-keyed draw)"
        )
        return 1

    sharded_runner = ParallelCampaignRunner(
        scenario, CampaignConfig(engine="vectorized"), workers=2
    )
    sharded = sharded_runner.run()
    if sharded.digest() != vec_dataset.digest():
        print("FAIL: vectorized serial and 2-worker digests diverged")
        return 1
    sharded_counters = sharded_runner.telemetry.snapshot().counters
    for name in ("campaign.beacons_total", "campaign.measurements_total"):
        if sharded_counters[name] != vec_snapshot.counters[name]:
            print(
                f"FAIL: merged 2-worker {name} "
                f"({sharded_counters[name]:,.0f}) != serial "
                f"({vec_snapshot.counters[name]:,.0f})"
            )
            return 1

    print(
        f"perf smoke ({args.prefixes} /24s x {args.days} days, "
        f"seed {args.seed}):"
    )
    print(f"  reference:  {ref_seconds:6.2f}s  ({ref_rate:9,.0f} beacons/s)")
    print(f"  vectorized: {vec_seconds:6.2f}s  ({vec_rate:9,.0f} beacons/s)")
    print(f"  matrix:     {mat_seconds:6.2f}s  ({mat_rate:9,.0f} beacons/s)")
    for label, snapshot in (
        ("reference", ref_snapshot),
        ("vectorized", vec_snapshot),
        ("matrix", mat_snapshot),
    ):
        phases = ", ".join(
            f"{path.rsplit('/', 1)[-1]}={record.seconds:.2f}s"
            for path, record in snapshot.span_children("campaign/day")
        )
        print(f"  {label} day phases: {phases}")
    print(f"  speedup: {speedup:.2f}x (required >= {args.min_speedup:.1f}x)")
    print(
        f"  matrix speedup over vectorized: {matrix_speedup:.2f}x "
        f"(required >= {args.min_matrix_speedup:.1f}x)"
    )
    print(
        f"  peak traced memory: reference {ref_peak / 1e6:.1f} MB, "
        f"vectorized {vec_peak / 1e6:.1f} MB, "
        f"matrix {mat_peak / 1e6:.1f} MB "
        f"(process peak RSS {peak_rss_bytes() / 1e6:.1f} MB)"
    )
    print("  vectorized serial == 2-worker digest: ok")
    print("  vectorized serial == 2-worker merged telemetry counters: ok")
    print("  matrix serial == vectorized serial digest: ok")

    # ------------------------------------------------------------------
    # Sketch leg: bounded mode must shard exactly and answer the headline
    # figures within tolerance of the exact oracle.
    sketch_config = CampaignConfig(
        engine="vectorized", sketch_threshold=args.sketch_threshold
    )
    with MemoryProbe() as sketch_probe:
        sketch_dataset = CampaignRunner(scenario, sketch_config).run()
    sketch_sharded = ParallelCampaignRunner(
        scenario, sketch_config, workers=2
    ).run()
    if sketch_sharded.digest() != sketch_dataset.digest():
        print("FAIL: sketch-mode serial and 2-worker digests diverged")
        return 1
    if sketch_dataset.measurement_count != vec_dataset.measurement_count:
        print(
            "FAIL: sketch-mode campaign lost measurements "
            f"({sketch_dataset.measurement_count:,} vs "
            f"{vec_dataset.measurement_count:,})"
        )
        return 1

    exact_fig3 = anycast_penalty_ccdf(vec_dataset)
    sketch_fig3 = anycast_penalty_ccdf(sketch_dataset)
    for threshold, exact_fraction in exact_fig3.fraction_slower[
        WORLD
    ].items():
        sketch_fraction = sketch_fig3.fraction_slower[WORLD][threshold]
        if abs(sketch_fraction - exact_fraction) > args.sketch_tolerance:
            print(
                f"FAIL: Fig 3 world fraction >= {threshold:.0f}ms drifted "
                f"{exact_fraction:.3f} -> {sketch_fraction:.3f} in sketch "
                f"mode (tolerance {args.sketch_tolerance})"
            )
            return 1
    exact_fig5 = poor_path_prevalence(vec_dataset)
    sketch_fig5 = poor_path_prevalence(sketch_dataset)
    for threshold in exact_fig5.thresholds:
        exact_fraction = exact_fig5.mean_fraction(threshold)
        sketch_fraction = sketch_fig5.mean_fraction(threshold)
        if abs(sketch_fraction - exact_fraction) > args.sketch_tolerance:
            print(
                f"FAIL: Fig 5 fraction >= {threshold:.0f}ms drifted "
                f"{exact_fraction:.3f} -> {sketch_fraction:.3f} in sketch "
                f"mode (tolerance {args.sketch_tolerance})"
            )
            return 1
    print(
        f"  sketch (threshold {args.sketch_threshold}): serial == 2-worker "
        "digest: ok"
    )
    print(
        f"  sketch Fig 3 + Fig 5 fractions within "
        f"{args.sketch_tolerance} of exact: ok "
        f"(peak traced memory {sketch_probe.peak_bytes / 1e6:.1f} MB)"
    )

    # ------------------------------------------------------------------
    # Load leg: finite front-end capacity with a live overload drill must
    # not slow the hot path — the schedule is computed once at setup and
    # folded as per-day extras, so throughput should be within noise of
    # the capacity-off run.
    load_config = CampaignConfig(
        engine="vectorized",
        frontend_capacity=1.5,
        overload_plan=OverloadPlan.from_spec("flash-crowd:1,drain:1"),
        load_policy="fastroute",
    )
    load_runner = CampaignRunner(scenario, load_config)
    load_dataset = load_runner.run()
    load_snapshot = load_runner.telemetry.snapshot()
    load_seconds = load_snapshot.gauges["campaign.wall_seconds"]["value"]
    load_rate = (
        load_snapshot.counters["campaign.beacons_total"] / load_seconds
    )
    if load_dataset.load_summary is None:
        print("FAIL: capacity-enabled run produced no load summary")
        return 1
    load_sharded = ParallelCampaignRunner(
        scenario, load_config, workers=2
    ).run()
    if load_sharded.digest() != load_dataset.digest():
        print("FAIL: load-leg serial and 2-worker digests diverged")
        return 1
    load_floor = vec_rate * (1.0 - args.max_load_overhead)
    if load_rate < load_floor:
        print(
            f"FAIL: capacity-enabled path ran at {load_rate:,.0f} "
            f"beacons/s, more than {args.max_load_overhead:.0%} below the "
            f"capacity-off rate ({vec_rate:,.0f} beacons/s)"
        )
        return 1
    print(
        f"  load leg (capacity 1.5x, fastroute, flash-crowd+drain): "
        f"{load_seconds:6.2f}s  ({load_rate:9,.0f} beacons/s, "
        f"{load_rate / vec_rate:.2f}x of capacity-off; floor "
        f"{1.0 - args.max_load_overhead:.0%})"
    )
    print("  load leg serial == 2-worker digest + load summary: ok")

    # ------------------------------------------------------------------
    # Memory leg: bounded-mode peak memory must not grow super-linearly
    # in the population.
    memory_leg = None
    if args.memory_populations:
        try:
            small_pop, large_pop = (
                int(part) for part in args.memory_populations.split(",")
            )
        except ValueError:
            print(
                "FAIL: --memory-populations must be two comma-separated "
                f"integers, got {args.memory_populations!r}"
            )
            return 1
        if not 0 < small_pop < large_pop:
            print(
                "FAIL: --memory-populations must be increasing and "
                f"positive, got {args.memory_populations!r}"
            )
            return 1
        peaks = {}
        for prefixes in (small_pop, large_pop):
            mem_scenario = Scenario.build(
                ScenarioConfig(
                    seed=args.seed,
                    population=ClientPopulationConfig(
                        prefix_count=prefixes
                    ),
                    calendar=SimulationCalendar(num_days=2),
                )
            )
            with MemoryProbe() as probe:
                CampaignRunner(mem_scenario, sketch_config).run()
            peaks[prefixes] = probe.peak_bytes
        pop_ratio = large_pop / small_pop
        peak_ratio = peaks[large_pop] / peaks[small_pop]
        limit = pop_ratio * args.memory_slack
        memory_leg = {
            "populations": [small_pop, large_pop],
            "peak_traced_bytes": {
                str(pop): peak for pop, peak in peaks.items()
            },
            "peak_ratio": peak_ratio,
            "limit": limit,
        }
        if peak_ratio > limit:
            print(
                f"FAIL: sketch-mode peak memory grew {peak_ratio:.2f}x "
                f"from {small_pop} to {large_pop} prefixes (limit "
                f"{limit:.2f}x = {pop_ratio:.1f}x population x "
                f"{args.memory_slack} slack)"
            )
            return 1
        print(
            f"  memory ({small_pop} -> {large_pop} prefixes): peak "
            f"{peaks[small_pop] / 1e6:.1f} MB -> "
            f"{peaks[large_pop] / 1e6:.1f} MB "
            f"({peak_ratio:.2f}x <= {limit:.2f}x): ok"
        )

    if args.rss_manifest_out:
        write_run_manifest(
            args.rss_manifest_out,
            vec_snapshot,
            dataset=vec_dataset,
            extra={
                "peak_traced_bytes": {
                    "reference": ref_peak,
                    "vectorized": vec_peak,
                    "matrix": mat_peak,
                    "sketch": sketch_probe.peak_bytes,
                },
                "peak_rss_bytes": peak_rss_bytes(),
                "sketch_threshold": args.sketch_threshold,
                "memory_leg": memory_leg,
            },
        )
        print(f"  wrote memory manifest to {args.rss_manifest_out}")

    if args.fault_plan:
        chaos_runner = ParallelCampaignRunner(
            scenario,
            CampaignConfig(
                engine="vectorized",
                fault_plan=FaultPlan.from_spec(args.fault_plan),
                max_retries=3,
                retry_backoff_seconds=0.0,
            ),
            workers=2,
        )
        chaos_dataset = chaos_runner.run()
        chaos_snapshot = chaos_runner.telemetry.snapshot()
        if args.fault_manifest_out:
            write_run_manifest(
                args.fault_manifest_out,
                chaos_snapshot,
                dataset=chaos_dataset,
                extra={
                    "fault_plan": args.fault_plan,
                    "fired_faults": [
                        list(point) for point in chaos_runner.fired_faults
                    ],
                },
            )
            print(f"  wrote chaos manifest to {args.fault_manifest_out}")
        if chaos_dataset.digest() != vec_dataset.digest():
            print(
                f"FAIL: fault plan {args.fault_plan!r} survived retries but "
                "produced a different digest than the fault-free run"
            )
            return 1
        print(
            f"  chaos ({args.fault_plan}): fired "
            f"{chaos_snapshot.counters.get('faults.injected_total', 0):.0f} "
            "faults, retried digest == clean digest: ok"
        )
    elif args.fault_manifest_out:
        print("FAIL: --fault-manifest-out requires --fault-plan")
        return 1

    if args.dirty_plan:
        dirty_plan = FaultPlan.from_spec(args.dirty_plan)
        dirty_config = CampaignConfig(
            engine="vectorized",
            fault_plan=dirty_plan,
            validation="lenient",
        )
        dirty_runner = CampaignRunner(scenario, dirty_config)
        dirty_dataset = dirty_runner.run()
        quarantine = dirty_runner.quarantine
        dirty_snapshot = dirty_runner.telemetry.snapshot()
        planted = int(
            dirty_snapshot.counters.get("faults.records_planted_total", 0)
        )
        if planted == 0:
            print(
                f"FAIL: dirty plan {args.dirty_plan!r} planted no records "
                "(the chaos leg asserted nothing)"
            )
            return 1
        clean_count = vec_dataset.measurement_count
        dirty_count = dirty_dataset.measurement_count
        if clean_count != dirty_count + quarantine.dropped:
            print(
                "FAIL: quarantine identity broken: clean measurements "
                f"({clean_count:,}) != dirty ({dirty_count:,}) + "
                f"quarantined dropped ({quarantine.dropped:,})"
            )
            return 1

        dirty_sharded_runner = ParallelCampaignRunner(
            scenario, dirty_config, workers=2
        )
        dirty_sharded = dirty_sharded_runner.run()
        if dirty_sharded.digest() != dirty_dataset.digest():
            print("FAIL: dirty serial and 2-worker digests diverged")
            return 1
        if dirty_sharded_runner.quarantine.digest() != quarantine.digest():
            print(
                "FAIL: dirty serial and 2-worker quarantine logs diverged"
            )
            return 1

        ref_dirty_runner = CampaignRunner(
            scenario,
            CampaignConfig(
                engine="reference",
                fault_plan=dirty_plan,
                validation="lenient",
            ),
        )
        ref_dirty_runner.run()
        if ref_dirty_runner.quarantine.counts != quarantine.counts:
            print(
                "FAIL: reference and vectorized engines quarantined "
                f"different records ({ref_dirty_runner.quarantine.counts} "
                f"vs {quarantine.counts})"
            )
            return 1

        # Torn-tail recovery: export the dirty dataset through the framed
        # writer, rip the tail off, and salvage what survived.
        with tempfile.TemporaryDirectory(prefix="perf-smoke-") as tmpdir:
            dirty_path = os.path.join(tmpdir, "dirty-dataset.json")
            save_dataset(dirty_dataset, dirty_path)
            size = os.path.getsize(dirty_path)
            with open(dirty_path, "r+b") as handle:
                handle.truncate(size - 200)
            recovered, recovery = recover_dataset(dirty_path)
        if recovery.report.complete:
            print(
                "FAIL: torn-tail export still reported a complete recovery"
            )
            return 1
        if recovered.beacon_count != dirty_dataset.beacon_count:
            print(
                "FAIL: torn-tail recovery lost client records "
                f"({recovered.beacon_count:,} of "
                f"{dirty_dataset.beacon_count:,} beacons)"
            )
            return 1

        if args.dirty_manifest_out:
            write_run_manifest(
                args.dirty_manifest_out,
                dirty_snapshot,
                dataset=dirty_dataset,
                extra={
                    "dirty_plan": args.dirty_plan,
                    "records_planted": planted,
                    "quarantine": quarantine.summary(),
                    "quarantine_digest": quarantine.digest(),
                    "torn_tail_recovery": recovery.to_obj(),
                },
            )
            print(f"  wrote dirty-data manifest to {args.dirty_manifest_out}")

        print(
            f"  dirty ({args.dirty_plan}): planted {planted} records, "
            f"quarantined {quarantine.total} "
            f"({dict(sorted(quarantine.counts.items()))})"
        )
        print("  clean == dirty + quarantined measurement identity: ok")
        print("  dirty serial == 2-worker digest + quarantine digest: ok")
        print("  reference == vectorized quarantine counts: ok")
        print(
            "  torn-tail recovery: salvaged "
            f"{recovery.recovered_measurement_count:,}/"
            f"{recovery.claimed_measurement_count:,} measurements: ok"
        )
    elif args.dirty_manifest_out:
        print("FAIL: --dirty-manifest-out requires --dirty-plan")
        return 1

    if args.history_out:
        # Seed the perf-history ledger so tools/bench_history.py has a
        # record per engine even on a job's very first run.
        history = BenchHistory.load(args.history_out)
        for engine, dataset, snapshot in (
            ("reference", ref_dataset, ref_snapshot),
            ("vectorized", vec_dataset, vec_snapshot),
            ("matrix", mat_dataset, mat_snapshot),
            ("vectorized-load", load_dataset, load_snapshot),
        ):
            history.append(
                record_from_snapshot(
                    snapshot, "perf-smoke", engine=engine, dataset=dataset
                )
            )
        history.save(args.history_out)
        print(
            f"  appended 4 perf-history records to {args.history_out} "
            f"({len(history.records)} total)"
        )

    if speedup < args.min_speedup:
        print(
            f"FAIL: vectorized engine only {speedup:.2f}x over reference "
            f"(required >= {args.min_speedup:.1f}x)"
        )
        return 1
    if matrix_speedup < args.min_matrix_speedup:
        print(
            f"FAIL: matrix engine only {matrix_speedup:.2f}x over "
            f"vectorized (required >= {args.min_matrix_speedup:.1f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
