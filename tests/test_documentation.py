"""Documentation hygiene: every module and public symbol is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(member) or isinstance(member, property)
                ):
                    continue
                doc = (
                    member.fget.__doc__
                    if isinstance(member, property) and member.fget
                    else getattr(member, "__doc__", None)
                )
                if not (doc and doc.strip()):
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, f"{module_name}: {undocumented}"


def test_package_exports_resolve():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name}"
