"""Columnar sidecar cache: round-trip parity, staleness, salvage.

The sidecar (``repro.measurement.columnar``) is a derived read cache —
every test here asserts the same invariant from a different angle: no
matter what happens to the sidecar (fresh, stale, torn, absent), a load
returns exactly the dataset the framed export describes.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.aggregate import GroupedDailyAggregates
from repro.measurement.columnar import (
    MAGIC,
    file_fingerprint,
    load_sidecar,
    sidecar_path,
    write_sidecar,
)
from repro.measurement.export import (
    load_dataset,
    recover_dataset,
    save_dataset,
)
from repro.simulation.transport import (
    decode_shard_payload,
    encode_shard_payload,
)

from .helpers import make_client, make_dataset


def _assert_equal_datasets(left, right):
    assert left.digest() == right.digest()
    assert left.beacon_count == right.beacon_count
    assert left.measurement_count == right.measurement_count
    assert left.clients == right.clients
    for day in left.ecs_aggregates.days:
        left_rows = sorted(
            (g, t, d.values())
            for g, t, d in left.ecs_aggregates.iter_day(day)
        )
        right_rows = sorted(
            (g, t, d.values())
            for g, t, d in right.ecs_aggregates.iter_day(day)
        )
        assert left_rows == right_rows


def test_sidecar_round_trip_matches_framed_parse(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)
    assert os.path.exists(sidecar_path(path))

    framed = load_dataset(path, columnar=False)
    columnar = load_dataset(path)
    _assert_equal_datasets(framed, small_dataset)
    _assert_equal_datasets(columnar, small_dataset)
    _assert_equal_datasets(columnar, framed)


def test_load_sidecar_directly(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)
    cached = load_sidecar(path)
    assert cached is not None
    _assert_equal_datasets(cached, small_dataset)


def test_missing_sidecar_falls_back_and_rewrites(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path, columnar=False)
    assert not os.path.exists(sidecar_path(path))

    loaded = load_dataset(path)
    _assert_equal_datasets(loaded, small_dataset)
    # The framed parse refreshed the sidecar for the next load.
    assert os.path.exists(sidecar_path(path))
    _assert_equal_datasets(load_dataset(path), small_dataset)


def test_stale_sidecar_is_rejected_and_refreshed(
    small_dataset, small_scenario, tmp_path
):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)

    # Re-export a *different* dataset over the framed file while keeping
    # the old sidecar: the fingerprint no longer matches.
    smaller = make_dataset(
        [make_client(1)],
        ecs_samples=[(0, "10.0.1.0/24", "anycast", [10.0, 20.0])],
    )
    save_dataset(smaller, path, columnar=False)
    assert load_sidecar(path) is None

    # load_dataset must serve the framed truth, not the stale cache.
    framed = load_dataset(path, columnar=False)
    assert framed.digest() != small_dataset.digest()
    loaded = load_dataset(path)
    _assert_equal_datasets(loaded, framed)
    # ... and the refreshed sidecar now describes the new export.
    refreshed = load_sidecar(path)
    assert refreshed is not None
    _assert_equal_datasets(refreshed, framed)


def test_corrupt_sidecar_falls_back(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)

    # Bad magic.
    with open(sidecar_path(path), "r+b") as handle:
        handle.write(b"XXXX")
    assert load_sidecar(path) is None
    _assert_equal_datasets(load_dataset(path), small_dataset)

    # Truncated payload (fresh sidecar was rewritten by the load above).
    size = os.path.getsize(sidecar_path(path))
    with open(sidecar_path(path), "r+b") as handle:
        handle.truncate(size // 2)
    assert load_sidecar(path) is None

    # Empty file.
    with open(sidecar_path(path), "wb"):
        pass
    assert load_sidecar(path) is None
    _assert_equal_datasets(load_dataset(path), small_dataset)


def test_torn_tail_salvage_ignores_sidecar(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)
    intact = load_dataset(path, columnar=False)

    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 120)

    # The sidecar still describes the intact export; a strict load must
    # not serve it (fingerprint mismatch) ...
    assert load_sidecar(path) is None
    # ... and salvage works purely from the frames: it reports an
    # incomplete recovery even though a byte-complete sidecar sits next
    # to the torn file.
    recovered, recovery = recover_dataset(path)
    assert not recovery.report.complete
    assert recovered.measurement_count <= intact.measurement_count
    assert recovered.beacon_count <= intact.beacon_count


def test_write_sidecar_is_best_effort(small_dataset, tmp_path):
    missing = str(tmp_path / "no-such-dir" / "dataset.json")
    assert write_sidecar(missing, small_dataset) is False


def test_fingerprint_pins_exact_bytes(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)
    before = file_fingerprint(path)
    # Same-length rewrite still changes the fingerprint.
    with open(path, "r+b") as handle:
        first = handle.read(1)
        handle.seek(0)
        handle.write(b"#" if first != b"#" else b"%")
    after = file_fingerprint(path)
    assert before[0] == after[0]
    assert before[1] != after[1]
    assert load_sidecar(path) is None


def test_sidecar_magic_is_distinct_from_transport():
    # A sidecar is not a raw shard payload: feeding one to the shard
    # decoder must fail loudly, not mis-decode.
    from repro.simulation.transport import MAGIC as SHARD_MAGIC

    assert MAGIC != SHARD_MAGIC


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),          # day
            st.sampled_from(["g1", "g2", "g3", "g4"]),      # group
            st.sampled_from(["anycast", "fe-a", "fe-b"]),   # target
            st.lists(
                st.floats(
                    min_value=0.0, max_value=1e4, allow_nan=False
                ),
                min_size=0,
                max_size=17,
            ),
        ),
        max_size=25,
    ),
    st.sampled_from([None, 4]),                             # sketch mode
)
@settings(max_examples=40, deadline=None)
def test_columnar_transport_round_trip_property(samples, threshold):
    """Arbitrary digest shapes survive the coalesced-column encoding.

    Column sizes from zero to dozens of samples, digests scattered over
    days/groups/targets in any order, and (in sketch mode) exact and
    promoted digests interleaved in one day must all decode to equal
    aggregates.
    """
    before = GroupedDailyAggregates("ecs", exact_threshold=threshold)
    for day, group, target, rtts in samples:
        before.observe_many(day, group, target, rtts)
    clients = (make_client(1), make_client(2))
    dataset = make_dataset(clients)
    dataset = type(dataset)(
        calendar=dataset.calendar,
        clients=dataset.clients,
        ecs_aggregates=before,
        ldns_aggregates=dataset.ldns_aggregates,
        request_diffs=dataset.request_diffs,
        passive=dataset.passive,
    )
    payload = encode_shard_payload(dataset, None, None, None)
    decoded, _, _, _ = decode_shard_payload(payload, clients)
    after = decoded.ecs_aggregates
    assert after.days == before.days
    for day in before.days:
        before_rows = {
            (g, t): d for g, t, d in before.iter_day(day)
        }
        after_rows = {
            (g, t): d for g, t, d in after.iter_day(day)
        }
        assert before_rows.keys() == after_rows.keys()
        for key, digest in before_rows.items():
            other = after_rows[key]
            assert digest.is_exact == other.is_exact
            if digest.is_exact:
                assert digest.values() == other.values()
            else:
                assert digest.count == other.count
                assert digest.minimum() == other.minimum()
                assert digest.maximum() == other.maximum()
    assert decoded.digest() == dataset.digest()


def test_decode_rejects_sidecar_bytes(small_dataset, tmp_path):
    path = str(tmp_path / "dataset.json")
    save_dataset(small_dataset, path)
    with open(sidecar_path(path), "rb") as handle:
        raw = handle.read()
    with pytest.raises(Exception):
        decode_shard_payload(raw, small_dataset.clients)
