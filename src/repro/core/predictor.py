"""The paper's primary contribution: history-based front-end prediction.

§6: for each client group — an ECS /24 or an LDNS's client population —
take one prediction interval (a day) of beacon measurements, keep the
targets with at least 20 measurements from the group, score each by a low
latency percentile (25th by default; the paper found 25th and median
equivalent, and higher percentiles too noisy to predict with), and map
the group to the best-scoring target, which may well be anycast itself.

The resulting mapping drives DNS redirection next interval via
:class:`repro.dns.authoritative.StaticMappingPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import PredictionError
from repro.dns.authoritative import ANYCAST_TARGET, StaticMappingPolicy
from repro.measurement.aggregate import GroupedDailyAggregates, LatencyDigest


@dataclass(frozen=True)
class PredictorConfig:
    """Prediction-scheme parameters (§6 defaults).

    Attributes:
        metric_percentile: Latency percentile used to score a target.
            The paper evaluates the 25th percentile and median, finds them
            equivalent, and presents 25th-percentile results.
        min_samples: Minimum measurements a target needs from the group
            during the prediction interval to be considered ("we select
            among the front-ends with 20+ measurements").
    """

    metric_percentile: float = 25.0
    min_samples: int = 20

    def __post_init__(self) -> None:
        if not 0.0 <= self.metric_percentile <= 100.0:
            raise PredictionError(
                f"metric_percentile must be in [0, 100], "
                f"got {self.metric_percentile}"
            )
        if self.min_samples < 1:
            raise PredictionError("min_samples must be >= 1")


@dataclass(frozen=True)
class Prediction:
    """One group's mapping for the next interval.

    Attributes:
        group: The grouping key (client /24 or LDNS id).
        target_id: Chosen target ('anycast' or a front-end id).
        metric_ms: The chosen target's score.
        anycast_metric_ms: Anycast's score, when anycast qualified
            (``None`` if anycast lacked enough samples).
    """

    group: str
    target_id: str
    metric_ms: float
    anycast_metric_ms: Optional[float]

    @property
    def predicted_gain_ms(self) -> float:
        """Expected improvement over anycast (0 when anycast chosen or
        unmeasured)."""
        if self.anycast_metric_ms is None or self.target_id == ANYCAST_TARGET:
            return 0.0
        return self.anycast_metric_ms - self.metric_ms


class HistoryBasedPredictor:
    """Builds per-group target mappings from one day of aggregates."""

    def __init__(self, config: Optional[PredictorConfig] = None) -> None:
        self._config = config or PredictorConfig()

    @property
    def config(self) -> PredictorConfig:
        """The prediction parameters."""
        return self._config

    def choose_target(
        self, group: str, digests: Mapping[str, LatencyDigest]
    ) -> Optional[Prediction]:
        """The §6 scoring core over one group's target → digest map.

        This is the single definition of "score and choose" — the batch
        paths (:meth:`predict_group`) and the live service's online
        predictor (:mod:`repro.service.predictor`) both call it, so the
        two can only ever disagree if their *windows* differ, never
        their scoring.  Returns ``None`` when no target (anycast
        included) reaches the sample cut — such groups simply stay on
        anycast.
        """
        cfg = self._config
        candidates = {
            target_id: digest
            for target_id, digest in digests.items()
            if digest.count >= cfg.min_samples
        }
        if not candidates:
            return None
        scores = {
            target_id: digest.percentile(cfg.metric_percentile)
            for target_id, digest in candidates.items()
        }
        # Deterministic tie-break; anycast wins ties so prediction only
        # redirects when a front-end is strictly better.
        best = min(
            scores,
            key=lambda target_id: (
                scores[target_id],
                target_id != ANYCAST_TARGET,
                target_id,
            ),
        )
        return Prediction(
            group=group,
            target_id=best,
            metric_ms=scores[best],
            anycast_metric_ms=scores.get(ANYCAST_TARGET),
        )

    def predict_group(
        self, aggregates: GroupedDailyAggregates, day: int, group: str
    ) -> Optional[Prediction]:
        """Prediction for one group from one day's measurements.

        Returns ``None`` when no target (anycast included) reaches the
        sample cut — such groups simply stay on anycast.
        """
        return self.choose_target(
            group, aggregates.targets_for(day, group)
        )

    def predict_day(
        self, aggregates: GroupedDailyAggregates, day: int
    ) -> Dict[str, Prediction]:
        """Predictions for every group measurable on ``day``."""
        predictions: Dict[str, Prediction] = {}
        for group in aggregates.groups_on(day):
            prediction = self.predict_group(aggregates, day, group)
            if prediction is not None:
                predictions[group] = prediction
        return predictions

    def mapping_for_day(
        self,
        aggregates: GroupedDailyAggregates,
        day: int,
        only_redirections: bool = True,
    ) -> Dict[str, str]:
        """group → target mapping (dropping anycast entries by default,
        since anycast is the policy fallback anyway)."""
        mapping: Dict[str, str] = {}
        for group, prediction in self.predict_day(aggregates, day).items():
            if only_redirections and prediction.target_id == ANYCAST_TARGET:
                continue
            mapping[group] = prediction.target_id
        return mapping

    def build_policy(
        self,
        ecs_aggregates: Optional[GroupedDailyAggregates] = None,
        ldns_aggregates: Optional[GroupedDailyAggregates] = None,
        day: int = 0,
    ) -> StaticMappingPolicy:
        """A deployable DNS policy from one day's aggregates.

        Raises:
            PredictionError: if neither aggregate source is given.
        """
        if ecs_aggregates is None and ldns_aggregates is None:
            raise PredictionError("need ECS or LDNS aggregates (or both)")
        ecs_mapping = (
            self.mapping_for_day(ecs_aggregates, day)
            if ecs_aggregates is not None
            else {}
        )
        ldns_mapping = (
            self.mapping_for_day(ldns_aggregates, day)
            if ldns_aggregates is not None
            else {}
        )
        return StaticMappingPolicy(
            ecs_mapping=ecs_mapping, ldns_mapping=ldns_mapping
        )
