"""The live ingestion loop: stream in, predictions and digests out.

This is the service half of the paper's FastRoute picture: an always-on
process consuming beacon and passive-log events, funneling every record
through the same :class:`~repro.measurement.validate.ValidationGate`
the batch campaign uses, folding admitted beacons into the sliding
:class:`~repro.service.window.PredictionWindow`, and re-evaluating the
§6 prediction at every day close.  The loop is an asyncio
producer/consumer pair over a bounded queue — the shape a socket- or
log-tailing source would plug into — with the *processing* kept
strictly deterministic: event order on the queue is the source order,
every state change is a pure function of the admitted-event stream, and
wall-clock only ever affects pacing and telemetry, never data.

Crash safety is checkpoint-and-replay: the loop periodically spills its
whole state (cursor, window, quarantine, stream digest, closed-day
predictions) through :mod:`repro.service.checkpoint`, and a restarted
service restores the spill, then replays the source from the beginning,
skipping events its cursor already covered.  Because every component of
the state serializes bit-exactly (float64 samples via base64, floats
via ``repr``, order-insensitive digests), a killed-and-resumed run ends
bit-identical to an uninterrupted one — the chaos-parity guarantee
``tests/test_service_chaos.py`` asserts.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.predictor import PredictorConfig
from repro.errors import ConfigurationError
from repro.faults.inject import InjectedTransientError
from repro.faults.plan import FaultPlan
from repro.measurement.sketch import (
    DEFAULT_MAX_BUCKETS,
    DEFAULT_RELATIVE_ACCURACY,
)
from repro.measurement.validate import (
    QuarantineLog,
    ValidationGate,
    ValidationPolicy,
)
from repro.service.checkpoint import (
    load_service_checkpoint,
    write_service_checkpoint,
)
from repro.service.events import (
    BeaconEvent,
    PassiveEvent,
    StreamDigest,
    StreamEvent,
)
from repro.service.faults import ServiceFaultInjector, compile_service_plan
from repro.service.predictor import (
    DayPredictions,
    OnlinePredictor,
    predictions_digest,
    predictions_from_obj,
    predictions_to_obj,
)
from repro.service.window import PredictionWindow
from repro.simulation.campaign import CampaignProgress
from repro.simulation.clock import SECONDS_PER_DAY
from repro.telemetry import Telemetry, get_logger
from repro.telemetry.trace import SERVICE_LANE

#: Default bound of the ingestion queue (events in flight between the
#: producer and the consumer).
DEFAULT_QUEUE_SIZE = 256

#: Service retry budget: how many injected transient failures the
#: supervisor absorbs before giving up (crashes always propagate).
MAX_SERVICE_RETRIES = 8

_log = get_logger("service.ingest")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one live-service (or replay) run.

    Attributes:
        window_days: Sliding-window length in days (§6 default: 1).
        predictor: The §6 scoring parameters (percentile, sample cut).
        validation: Ingestion-gate policy (``strict``/``lenient``/
            ``repair``).
        sketch_threshold: Per-digest sketch-promotion threshold for the
            window (``None`` keeps every digest exact — oracle mode).
        sketch_accuracy: Sketch relative accuracy after promotion.
        sketch_max_buckets: Per-sketch bucket cap after promotion.
        checkpoint_dir: Directory for periodic state spills (``None``
            disables checkpointing).
        resume: Restore from ``checkpoint_dir`` before consuming (a
            missing or non-matching checkpoint starts fresh).
        checkpoint_every_events: Extra mid-day spill cadence in events
            (0 = day-close spills only).
        seed: Scenario seed (drives fault firing points).
        fault_plan: Optional deterministic fault schedule; ``crash`` and
            ``exception`` kinds fire inside the loop.
        speed: Replay pacing, in simulated seconds per wall-clock second
            (86_400 = one day per second; 0 = unpaced, as fast as the
            consumer drains).
        queue_size: Bound of the ingestion queue.
    """

    window_days: int = 1
    predictor: PredictorConfig = PredictorConfig()
    validation: str = "lenient"
    sketch_threshold: Optional[int] = None
    sketch_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    sketch_max_buckets: int = DEFAULT_MAX_BUCKETS
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    checkpoint_every_events: int = 0
    seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    speed: float = 0.0
    queue_size: int = DEFAULT_QUEUE_SIZE

    def __post_init__(self) -> None:
        ValidationPolicy.parse(self.validation)
        if self.window_days < 1:
            raise ConfigurationError("window_days must be >= 1")
        if self.speed < 0:
            raise ConfigurationError("speed must be >= 0")
        if self.checkpoint_every_events < 0:
            raise ConfigurationError("checkpoint_every_events must be >= 0")
        if self.queue_size < 1:
            raise ConfigurationError("queue_size must be >= 1")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume requires a checkpoint directory"
            )

    def identity(self) -> Dict[str, Any]:
        """The semantic parameters a checkpoint must match to apply.

        Deliberately excludes operational knobs (pacing, queue bound,
        fault plan, the resume flag itself): two runs differing only in
        those produce identical data, so their checkpoints interchange.
        """
        return {
            "window_days": self.window_days,
            "metric_percentile": self.predictor.metric_percentile,
            "min_samples": self.predictor.min_samples,
            "validation": ValidationPolicy.parse(self.validation).value,
            "sketch_threshold": self.sketch_threshold,
            "sketch_accuracy": self.sketch_accuracy,
            "sketch_max_buckets": self.sketch_max_buckets,
            "seed": self.seed,
        }


@dataclass
class ServiceResult:
    """Everything one service run produced.

    The three digests are the bit-identity surface of the chaos-parity
    guarantee: an uninterrupted run and a killed-and-resumed run of the
    same stream agree on all three, bit for bit.
    """

    predictions: Dict[int, DayPredictions]
    predictions_digest: str
    stream_digest: str
    stream_count: int
    quarantine_digest: str
    quarantine_summary: Dict[str, Any]
    num_days: int
    events_total: int
    beacons_admitted: int
    beacons_repaired: int
    passive_admitted: int
    late_drops: int
    days_closed: int
    attempt: int
    retries: int
    resumed_from_cursor: int
    checkpoints_written: int
    elapsed_seconds: float

    def manifest(self) -> Dict[str, Any]:
        """The JSON document ``--manifest-out`` writes (CI artifact)."""
        return {
            "mode": "service",
            "num_days": self.num_days,
            "events_total": self.events_total,
            "beacons_admitted": self.beacons_admitted,
            "beacons_repaired": self.beacons_repaired,
            "passive_admitted": self.passive_admitted,
            "late_drops": self.late_drops,
            "days_closed": self.days_closed,
            "attempt": self.attempt,
            "retries": self.retries,
            "resumed_from_cursor": self.resumed_from_cursor,
            "checkpoints_written": self.checkpoints_written,
            "elapsed_seconds": self.elapsed_seconds,
            "digests": {
                "predictions": self.predictions_digest,
                "stream": self.stream_digest,
                "quarantine": self.quarantine_digest,
            },
            "stream_count": self.stream_count,
            "quarantine": self.quarantine_summary,
        }


class LiveService:
    """The asyncio ingestion loop over one event stream.

    Args:
        config: The run's knobs.
        num_days: Calendar length; every day in ``[0, num_days)`` closes
            exactly once (empty days close with empty predictions), so
            runs over the same stream always close the same day set.
        telemetry: Optional run telemetry; the service claims the trace
            timeline's service lane and publishes ``service.*`` counters.
        progress_listener: Optional hook receiving
            :class:`~repro.simulation.campaign.CampaignProgress` at every
            day close (the CLI ``--progress`` ticker).
        source_fingerprint: Identity of the event source (a dataset
            digest, a config hash); checkpoints only apply to the source
            they were taken from.
    """

    def __init__(
        self,
        config: ServiceConfig,
        num_days: int,
        telemetry: Optional[Telemetry] = None,
        progress_listener: Optional[
            Callable[[CampaignProgress], None]
        ] = None,
        source_fingerprint: str = "",
    ) -> None:
        if num_days < 1:
            raise ConfigurationError("num_days must be >= 1")
        self.config = config
        self.num_days = num_days
        self.telemetry = telemetry
        self.progress_listener = progress_listener
        self.source_fingerprint = source_fingerprint
        self._compiled = compile_service_plan(config.fault_plan, config.seed)
        self._attempt = 0
        self._retries = 0
        self._reset_state()

    # ------------------------------------------------------------------
    # State lifecycle
    # ------------------------------------------------------------------

    def _reset_state(self) -> None:
        cfg = self.config
        self.window = PredictionWindow(
            window_days=cfg.window_days,
            exact_threshold=cfg.sketch_threshold,
            relative_accuracy=cfg.sketch_accuracy,
            max_buckets=cfg.sketch_max_buckets,
        )
        self.online = OnlinePredictor(self.window, cfg.predictor)
        self.gate = ValidationGate(cfg.validation)
        self.stream = StreamDigest()
        self._cursor = 0
        self._start_cursor = 0
        self._current_day: Optional[int] = None
        self._day_beacons = 0
        self._day_passive = 0
        self._beacons_admitted = 0
        self._passive_admitted = 0
        self._days_closed = 0
        self._checkpoints_written = 0
        self._since_checkpoint = 0
        self._resumed_from = 0
        self._injector: Optional[ServiceFaultInjector] = None

    def _identity(self) -> Dict[str, Any]:
        identity = self.config.identity()
        identity["num_days"] = self.num_days
        identity["source"] = self.source_fingerprint
        return identity

    def _state_obj(self) -> Dict[str, Any]:
        return {
            "cursor": self._cursor,
            "attempt": self._attempt,
            "current_day": self._current_day,
            "day_beacons": self._day_beacons,
            "day_passive": self._day_passive,
            "beacons_admitted": self._beacons_admitted,
            "passive_admitted": self._passive_admitted,
            "days_closed": self._days_closed,
            "records_total": self.gate.records_total,
            "dropped_total": self.gate.dropped_total,
            "repaired_total": self.gate.repaired_total,
            "window": self.window.to_obj(),
            "quarantine": self.gate.quarantine.to_obj(),
            "stream": self.stream.to_obj(),
            "predictions": predictions_to_obj(self.online.by_day),
        }

    def _restore_state(self, state: Dict[str, Any]) -> None:
        cfg = self.config
        self.window = PredictionWindow.from_obj(state["window"])
        self.online = OnlinePredictor(self.window, cfg.predictor)
        self.online.by_day = predictions_from_obj(state["predictions"])
        self.gate = ValidationGate(
            cfg.validation, quarantine=QuarantineLog.from_obj(state["quarantine"])
        )
        self.gate.records_total = int(state["records_total"])
        self.gate.dropped_total = int(state["dropped_total"])
        self.gate.repaired_total = int(state["repaired_total"])
        self.stream = StreamDigest.from_obj(state["stream"])
        self._cursor = int(state["cursor"])
        self._start_cursor = self._cursor
        self._resumed_from = self._cursor
        current_day = state["current_day"]
        self._current_day = None if current_day is None else int(current_day)
        self._day_beacons = int(state["day_beacons"])
        self._day_passive = int(state["day_passive"])
        self._beacons_admitted = int(state["beacons_admitted"])
        self._passive_admitted = int(state["passive_admitted"])
        self._days_closed = int(state["days_closed"])
        self._attempt = max(self._attempt, int(state["attempt"]) + 1)

    def _write_checkpoint(self) -> None:
        if self.config.checkpoint_dir is None:
            return
        write_service_checkpoint(
            self.config.checkpoint_dir, self._identity(), self._state_obj()
        )
        self._checkpoints_written += 1
        self._since_checkpoint = 0

    # ------------------------------------------------------------------
    # Per-event processing (synchronous, deterministic)
    # ------------------------------------------------------------------

    def _close_day(self, day: int) -> None:
        self.online.close_day(day)
        self._days_closed += 1
        if self.telemetry is not None:
            self.telemetry.trace.instant(
                "service.day",
                "service",
                shard=SERVICE_LANE,
                scope="data",
                index=str(day),
                beacons=self._day_beacons,
                passive=self._day_passive,
            )
        self._day_beacons = 0
        self._day_passive = 0
        self.window.advance_to(day + 1)
        # Advance the day cursor *before* spilling: the checkpoint must
        # say "day closed, its bucket evicted, predictions recorded" as
        # one consistent fact, or a resume would re-close the day over
        # an already-evicted (empty) bucket and wipe its predictions.
        self._current_day = day + 1
        self._write_checkpoint()
        self._emit_progress(day)

    def _emit_progress(self, day: int) -> None:
        if self.progress_listener is None:
            return
        elapsed = time.monotonic() - self._started
        beacons = self._beacons_admitted
        self.progress_listener(
            CampaignProgress(
                days_completed=min(day + 1, self.num_days),
                num_days=self.num_days,
                beacons=beacons,
                beacons_per_second=beacons / elapsed if elapsed > 0 else 0.0,
                elapsed_seconds=elapsed,
                retries=self._retries,
            )
        )

    def _advance_day_to(self, day: int) -> None:
        if self._current_day is None:
            self._current_day = day
            return
        if day <= self._current_day:
            return
        for stale in range(self._current_day, day):
            self._close_day(stale)

    def _process(self, event: StreamEvent) -> None:
        self._advance_day_to(event.day)
        if isinstance(event, BeaconEvent):
            admitted = self.gate.admit(
                event.day, event.client_key, -1, event.rtt_ms
            )
            if admitted is None:
                return
            if admitted != event.rtt_ms:
                # Repair policy clamped the value: everything downstream
                # (window, digest) sees the admitted record.
                event = dataclasses.replace(event, rtt_ms=admitted)
            if self.window.observe(event):
                self.stream.update(event)
                self._beacons_admitted += 1
                if event.day == self._current_day:
                    self._day_beacons += 1
        else:
            admitted_count = self.gate.admit_count(
                event.day, event.client_key, event.frontend_id, event.count
            )
            if admitted_count is None:
                return
            if admitted_count != event.count:
                event = dataclasses.replace(event, count=admitted_count)
            self.stream.update(event)
            self._passive_admitted += 1
            if event.day == self._current_day:
                self._day_passive += 1

    def _step(self, cursor: int, event: StreamEvent) -> None:
        if self._injector is not None:
            self._injector.on_event(cursor)
        if cursor < self._start_cursor:
            # Replayed tail of an already-checkpointed prefix: the
            # restored state covers it, so skipping is what makes the
            # at-least-once replay exactly-once in effect.
            return
        self._process(event)
        self._cursor = cursor + 1
        self._since_checkpoint += 1
        every = self.config.checkpoint_every_events
        if every and self._since_checkpoint >= every:
            self._write_checkpoint()

    def _finish(self) -> None:
        first = 0 if self._current_day is None else self._current_day
        for day in range(first, self.num_days):
            self._close_day(day)
        self._current_day = self.num_days

    # ------------------------------------------------------------------
    # The asyncio loop
    # ------------------------------------------------------------------

    async def _run_attempt(
        self, events: Sequence[StreamEvent]
    ) -> None:
        cfg = self.config
        self._attempt_setup()
        queue: asyncio.Queue = asyncio.Queue(maxsize=cfg.queue_size)

        async def produce() -> None:
            span = (
                self.telemetry.span("service.produce")
                if self.telemetry is not None
                else nullcontext()
            )
            with span:
                last_day: Optional[int] = None
                for cursor, event in enumerate(events):
                    if (
                        cfg.speed > 0
                        and last_day is not None
                        and event.day > last_day
                    ):
                        await asyncio.sleep(
                            SECONDS_PER_DAY * (event.day - last_day) / cfg.speed
                        )
                    last_day = event.day
                    await queue.put((cursor, event))
                await queue.put(None)

        async def consume() -> None:
            span = (
                self.telemetry.span("service.consume")
                if self.telemetry is not None
                else nullcontext()
            )
            with span:
                while True:
                    item = await queue.get()
                    if item is None:
                        break
                    cursor, event = item
                    self._step(cursor, event)
                    # Yield so the producer interleaves even on an
                    # unpaced replay — the loop is genuinely concurrent.
                    await asyncio.sleep(0)

        producer = asyncio.create_task(produce())
        consumer = asyncio.create_task(consume())
        try:
            await asyncio.gather(producer, consumer)
        except BaseException:
            producer.cancel()
            consumer.cancel()
            await asyncio.gather(producer, consumer, return_exceptions=True)
            raise
        self._finish()

    def _attempt_setup(self) -> None:
        cfg = self.config
        self._reset_state()
        if cfg.checkpoint_dir is not None and (
            cfg.resume or self._attempt > 0
        ):
            state = load_service_checkpoint(
                cfg.checkpoint_dir, self._identity()
            )
            if state is not None:
                self._restore_state(state)
                _log.info(
                    "service resumed",
                    extra={
                        "cursor": self._cursor,
                        "attempt": self._attempt,
                    },
                )
        kind = (
            self._compiled.fault_for(0, self._attempt)
            if self._compiled is not None
            else None
        )
        self._injector = (
            None
            if kind is None
            else ServiceFaultInjector(
                kind, cfg.seed, self._attempt, horizon=self._horizon
            )
        )
        # Spill the attempt's starting state immediately (re-spilling the
        # restored state with the bumped attempt counter).  A crash that
        # fires before the first day ever closes would otherwise leave no
        # checkpoint behind, and the next process would restart at
        # attempt 0 — hitting the same deterministic crash forever.
        self._write_checkpoint()

    async def run(self, events: Sequence[StreamEvent]) -> ServiceResult:
        """Consume the stream to completion and return the run's result.

        Transient injected failures restart the loop (restoring the
        latest checkpoint when one exists) up to
        :data:`MAX_SERVICE_RETRIES` times; injected crashes propagate —
        they model the process dying, and the caller (or the next
        ``--resume-from`` invocation) owns the restart.
        """
        self._started = time.monotonic()
        self._horizon = max(1, len(events))
        telemetry = self.telemetry
        old_lane = None
        if telemetry is not None:
            old_lane = telemetry.trace.lane
            telemetry.trace.lane = SERVICE_LANE
        try:
            while True:
                try:
                    await self._run_attempt(events)
                    break
                except InjectedTransientError:
                    self._retries += 1
                    self._attempt += 1
                    if self._retries > MAX_SERVICE_RETRIES:
                        raise
                    _log.warning(
                        "service loop restarting after transient fault",
                        extra={"attempt": self._attempt},
                    )
            self._write_checkpoint()
            return self._result()
        finally:
            if telemetry is not None:
                telemetry.trace.lane = old_lane
                self._publish_counters()

    def run_stream(self, events: Sequence[StreamEvent]) -> ServiceResult:
        """Synchronous wrapper around :meth:`run`."""
        return asyncio.run(self.run(events))

    # ------------------------------------------------------------------
    # Results and telemetry
    # ------------------------------------------------------------------

    def _result(self) -> ServiceResult:
        return ServiceResult(
            predictions=self.online.by_day,
            predictions_digest=predictions_digest(self.online.by_day),
            stream_digest=self.stream.hexdigest(),
            stream_count=self.stream.count,
            quarantine_digest=self.gate.quarantine.digest(),
            quarantine_summary=self.gate.quarantine.summary(),
            num_days=self.num_days,
            events_total=self.gate.records_total,
            beacons_admitted=self._beacons_admitted,
            beacons_repaired=self.gate.repaired_total,
            passive_admitted=self._passive_admitted,
            late_drops=self.window.late_drops,
            days_closed=self._days_closed,
            attempt=self._attempt,
            retries=self._retries,
            resumed_from_cursor=self._resumed_from,
            checkpoints_written=self._checkpoints_written,
            elapsed_seconds=time.monotonic() - self._started,
        )

    def _publish_counters(self) -> None:
        telemetry = self.telemetry
        if telemetry is None:
            return
        pairs = {
            "service.events.total": self.gate.records_total,
            "service.beacons.admitted": self._beacons_admitted,
            "service.records.dropped": self.gate.dropped_total,
            "service.records.repaired": self.gate.repaired_total,
            "service.passive.admitted": self._passive_admitted,
            "service.window.late_drops": self.window.late_drops,
            "service.days.closed": self._days_closed,
            "service.checkpoints.written": self._checkpoints_written,
            "service.retries": self._retries,
        }
        for name, value in pairs.items():
            if value:
                telemetry.counter(name).inc(value)
