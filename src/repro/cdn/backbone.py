"""The CDN's internal backbone: ingress peering point → front-end.

§3.1 of the paper fixes the intradomain policy this module implements:
"Microsoft intradomain policy then directs the client's request to the
front-end nearest to the peering point, not to the client."  Traffic that
ingresses at a metro hosting a front-end is served locally; traffic that
ingresses at a peering-only metro is carried to the geographically nearest
front-end, paying backbone distance — the §5 case-1 pathology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError
from repro.cdn.deployment import CdnDeployment
from repro.cdn.frontend import FrontEnd
from repro.geo.metros import MetroDatabase


@dataclass(frozen=True)
class BackboneRoute:
    """Where the backbone carries traffic entering at one ingress metro."""

    ingress_metro: str
    frontend: FrontEnd
    #: Great-circle backbone distance from ingress to the front-end (km);
    #: zero when the ingress metro hosts the front-end.
    backbone_km: float


class CdnBackbone:
    """Ingress→front-end routing table for a deployment.

    The table is precomputed for every CDN PoP metro at construction, so
    lookups during measurement campaigns are dictionary reads.

    Args:
        live_frontends: Restrict routing to these front-end ids (all live
            when ``None``) — the failover machinery passes the survivors
            after a withdrawal.
    """

    def __init__(
        self,
        deployment: CdnDeployment,
        metro_db: MetroDatabase,
        live_frontends: Optional[FrozenSet[str]] = None,
    ) -> None:
        self._deployment = deployment
        if live_frontends is None:
            candidates = deployment.frontends
        else:
            candidates = tuple(
                fe
                for fe in deployment.frontends
                if fe.frontend_id in live_frontends
            )
            unknown = live_frontends - {
                fe.frontend_id for fe in deployment.frontends
            }
            if unknown:
                raise ConfigurationError(
                    f"unknown live front-ends {sorted(unknown)}"
                )
        if not candidates:
            raise ConfigurationError(
                "backbone needs at least one live front-end"
            )
        self._routes: Dict[str, BackboneRoute] = {}
        for code in sorted(deployment.pop_metros):
            ingress_location = metro_db.get(code).location
            best = min(
                candidates,
                key=lambda fe: (fe.distance_km(ingress_location), fe.frontend_id),
            )
            self._routes[code] = BackboneRoute(
                ingress_metro=code,
                frontend=best,
                backbone_km=best.distance_km(ingress_location),
            )

    @property
    def deployment(self) -> CdnDeployment:
        """The deployment this backbone serves."""
        return self._deployment

    def route(self, ingress_metro: str) -> BackboneRoute:
        """Backbone route for traffic ingressing at a CDN PoP metro.

        Raises:
            ConfigurationError: if the metro is not a CDN PoP.
        """
        try:
            return self._routes[ingress_metro]
        except KeyError:
            raise ConfigurationError(
                f"metro {ingress_metro!r} is not a CDN peering point"
            ) from None

    def frontend_for_ingress(self, ingress_metro: str) -> FrontEnd:
        """The front-end serving traffic that ingresses at a metro."""
        return self.route(ingress_metro).frontend

    def ingress_metros(self) -> Tuple[str, ...]:
        """All CDN PoP metros, sorted."""
        return tuple(self._routes)
