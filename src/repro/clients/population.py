"""Synthetic client population: /24 prefixes scattered around metros.

This stands in for the paper's "many millions of queries" of real Bing
clients.  The analyses only see what the paper's saw — a /24, its
geolocation, its query volume, its LDNS — so a population with realistic
marginals exercises identical code paths:

* Prefixes attach to an access ISP at one of its PoP metros, with density
  proportional to metro population (split across the ISPs present).
* Each prefix's true location scatters around the metro center; the
  geolocation database then reports it with the configured error model.
* Query volume per /24 is lognormal — "the number of queries per /24 is
  heavily skewed across prefixes" (§3.2.2, citing [35]) — and drives the
  volume weighting used throughout the figures.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.dns.ldns import LdnsDirectory
from repro.geo.coords import GeoPoint, destination_point
from repro.geo.geolocation import GeolocationDatabase
from repro.geo.metros import MetroDatabase
from repro.net.ip import IPv4Prefix, PrefixAllocator
from repro.net.topology import AsRole, Topology

#: Default address pool client /24s are carved from.
DEFAULT_CLIENT_POOL = "10.0.0.0/8"


@dataclass(frozen=True)
class ClientPrefix:
    """One client /24 — the paper's unit of analysis.

    Attributes:
        prefix: The /24.
        asn: Access ISP the prefix belongs to.
        home_metro: The ISP PoP metro the prefix attaches at.
        location: True coordinates (near, not at, the metro center).
        access_delay_ms: Fixed last-mile RTT contribution of this prefix.
        daily_queries: Mean search queries per day (volume weight).
        ldns_id: The resolver this prefix's clients use.
    """

    prefix: IPv4Prefix
    asn: int
    home_metro: str
    location: GeoPoint
    access_delay_ms: float
    daily_queries: float
    ldns_id: str

    @cached_property
    def key(self) -> str:
        """String form of the /24 — the ECS grouping key.

        Cached: campaign day loops read it once per client per day, and
        dotted-quad formatting is pure.
        """
        return str(self.prefix)


@dataclass(frozen=True)
class ClientPopulationConfig:
    """Knobs for population synthesis.

    Attributes:
        prefix_count: Number of client /24s to generate.
        scatter_km_mean: Mean displacement of a prefix from its metro
            center (exponential).
        scatter_km_max: Cap on displacement.
        volume_median_queries: Median of the lognormal daily-query volume.
        volume_sigma: Shape of the volume lognormal (skew).
        volume_metro_exponent: Volume scales with (metro population)^exp —
            per-/24 query volume concentrates in big, well-connected
            metros, which is why the paper's volume-weighted anycast
            distances look 5-10% *better* than unweighted (Fig 4).
        access_delay_median_ms: Median last-mile delay.
        access_delay_sigma: Shape of the last-mile delay lognormal.
        client_pool: Supernet client /24s are allocated from.
    """

    prefix_count: int = 2000
    scatter_km_mean: float = 110.0
    scatter_km_max: float = 450.0
    volume_median_queries: float = 25.0
    volume_sigma: float = 1.8
    volume_metro_exponent: float = 0.35
    access_delay_median_ms: float = 8.0
    access_delay_sigma: float = 0.5
    client_pool: str = DEFAULT_CLIENT_POOL

    def __post_init__(self) -> None:
        if self.prefix_count < 1:
            raise ConfigurationError("prefix_count must be >= 1")
        if self.scatter_km_mean < 0 or self.scatter_km_max < 0:
            raise ConfigurationError("scatter distances must be non-negative")
        if self.scatter_km_max < self.scatter_km_mean:
            raise ConfigurationError(
                "scatter_km_max must be >= scatter_km_mean"
            )
        for name in ("volume_median_queries", "access_delay_median_ms"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in ("volume_sigma", "access_delay_sigma"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


def generate_population(
    topology: Topology,
    ldns_directory: LdnsDirectory,
    geolocation: GeolocationDatabase,
    config: Optional[ClientPopulationConfig] = None,
    seed: int = 0,
) -> Tuple[ClientPrefix, ...]:
    """Generate the client population and register it for geolocation.

    Prefixes are distributed over (access ISP, PoP metro) pairs with weight
    ``metro population / ISPs at metro``, so big metros host more client
    /24s without any single ISP dominating them.

    Returns:
        The generated prefixes (deterministic for a given seed).
    """
    cfg = config or ClientPopulationConfig()
    rng = random.Random(seed)
    metro_db: MetroDatabase = topology.metro_db

    access_ases = sorted(
        topology.ases_with_role(AsRole.ACCESS), key=lambda a: a.asn
    )
    if not access_ases:
        raise ConfigurationError("topology has no access ISPs")

    isps_at_metro: Dict[str, int] = {}
    for as_ in access_ases:
        for metro_code in as_.pop_metros:
            isps_at_metro[metro_code] = isps_at_metro.get(metro_code, 0) + 1

    pairs: List[Tuple[int, str]] = []
    weights: List[float] = []
    for as_ in access_ases:
        for metro_code in sorted(as_.pop_metros):
            pairs.append((as_.asn, metro_code))
            weights.append(
                metro_db.get(metro_code).population_m / isps_at_metro[metro_code]
            )

    allocator = PrefixAllocator(IPv4Prefix.parse(cfg.client_pool))
    volume_mu = math.log(cfg.volume_median_queries)
    delay_mu = math.log(cfg.access_delay_median_ms)

    # Reference population for the metro-volume scaling (a mid-sized metro
    # has multiplier ~1).
    reference_pop_m = 5.0

    chosen = rng.choices(pairs, weights=weights, k=cfg.prefix_count)
    clients: List[ClientPrefix] = []
    for asn, metro_code in chosen:
        metro = metro_db.get(metro_code)
        center = metro.location
        distance = min(
            rng.expovariate(1.0 / cfg.scatter_km_mean)
            if cfg.scatter_km_mean > 0
            else 0.0,
            cfg.scatter_km_max,
        )
        location = destination_point(center, rng.uniform(0.0, 360.0), distance)
        prefix = allocator.allocate_slash24()
        metro_mu = volume_mu + cfg.volume_metro_exponent * math.log(
            max(metro.population_m, 0.1) / reference_pop_m
        )
        client = ClientPrefix(
            prefix=prefix,
            asn=asn,
            home_metro=metro_code,
            location=location,
            access_delay_ms=rng.lognormvariate(delay_mu, cfg.access_delay_sigma),
            daily_queries=rng.lognormvariate(metro_mu, cfg.volume_sigma),
            ldns_id=ldns_directory.assign(asn, metro_code, rng),
        )
        geolocation.register(client.key, client.location)
        clients.append(client)
    return tuple(clients)
