"""Figs 7–8: front-end affinity — do clients stick to one front-end?

From passive logs: a client has "changed front-ends by day d" once it has
been served by two different front-ends (within a day, or across days) at
any point up to d.  Fig 7 accumulates that fraction over a week starting
Wednesday; Fig 8 looks at switches and plots the change in client-to-
front-end distance they caused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError
from repro.analysis.stats import CdfSeries, WeightedDistribution, log2_grid
from repro.cdn.frontend import FrontEnd
from repro.geo.coords import GeoPoint, haversine_km
from repro.geo.geolocation import GeolocationDatabase
from repro.simulation.dataset import StudyDataset


@dataclass(frozen=True)
class AffinityResult:
    """Fig 7 result: cumulative switched fraction by end of each day."""

    #: (day label, cumulative fraction switched) per day of the window.
    cumulative: Tuple[Tuple[str, float], ...]
    first_day_fraction: float
    week_fraction: float
    client_count: int

    def format(self) -> str:
        """Paper-style summary plus per-day rows."""
        lines = [
            "Fig 7 — cumulative fraction of clients that changed front-ends",
            f"  by end of first day: {self.first_day_fraction:6.1%}",
            f"  by end of window:    {self.week_fraction:6.1%}",
        ]
        for label, fraction in self.cumulative:
            lines.append(f"  {label:4s} {fraction:7.3f}")
        return "\n".join(lines)

    def daily_increment(self, index: int) -> float:
        """Fraction newly switched during the index-th day of the window."""
        if index == 0:
            return self.cumulative[0][1]
        return self.cumulative[index][1] - self.cumulative[index - 1][1]


def frontend_affinity(
    dataset: StudyDataset,
    start_day: int = 0,
    num_days: int = 7,
) -> AffinityResult:
    """Compute Fig 7 over a window of the passive logs.

    Only clients with traffic on every day of the window are counted, so
    "has not switched" is a statement about observed traffic, not absence
    of data.
    """
    if num_days < 1:
        raise AnalysisError("num_days must be >= 1")
    calendar = dataset.calendar
    if start_day < 0 or start_day + num_days > calendar.num_days:
        raise AnalysisError("window outside the campaign calendar")

    days = list(range(start_day, start_day + num_days))
    per_client_daily: Dict[str, List[Set[str]]] = {}
    for offset, day in enumerate(days):
        for client_key, counts in dataset.passive.iter_day(day):
            slots = per_client_daily.setdefault(
                client_key, [set() for _ in days]
            )
            slots[offset] = set(counts)

    cumulative: List[float] = []
    eligible = {
        client_key: slots
        for client_key, slots in per_client_daily.items()
        if all(slots)
    }
    if not eligible:
        raise AnalysisError("no client had traffic on every day of the window")

    switched: Set[str] = set()
    fractions: List[Tuple[str, float]] = []
    for offset, day in enumerate(days):
        for client_key, slots in eligible.items():
            if client_key in switched:
                continue
            seen: Set[str] = set()
            for earlier in range(offset + 1):
                seen |= slots[earlier]
            if len(seen) > 1:
                switched.add(client_key)
        fractions.append(
            (calendar.day_name(day), len(switched) / len(eligible))
        )

    return AffinityResult(
        cumulative=tuple(fractions),
        first_day_fraction=fractions[0][1],
        week_fraction=fractions[-1][1],
        client_count=len(eligible),
    )


def daily_switch_rate(dataset: StudyDataset, day: int) -> float:
    """Fraction of active clients served by multiple front-ends on a day.

    §5 compares this against the 1.1-4.7% instance-switch rates reported
    for anycast DNS root servers [20, 33], noting the CDN's rate is
    "slightly higher", plausibly because the deployment is ~10x larger
    than K-root's was.
    """
    clients = dataset.passive.clients_on(day)
    if not clients:
        raise AnalysisError(f"no passive traffic on day {day}")
    switched = sum(
        1
        for client_key in clients
        if len(dataset.passive.frontends_for(day, client_key)) > 1
    )
    return switched / len(clients)


@dataclass(frozen=True)
class SwitchDistanceResult:
    """Fig 8 result: distance change caused by front-end switches."""

    series: CdfSeries
    median_km: float
    fraction_within_2000km: float
    switch_count: int

    def format(self) -> str:
        """Paper-style summary plus CDF rows."""
        return "\n".join(
            [
                "Fig 8 — change in client-to-front-end distance on switch",
                f"  median change:   {self.median_km:7.0f} km",
                f"  within 2000 km:  {self.fraction_within_2000km:6.1%}",
                f"  switches seen:   {self.switch_count}",
                self.series.format_rows(),
            ]
        )


def switch_distance_cdf(
    dataset: StudyDataset,
    frontends: Sequence[FrontEnd],
    geolocation: GeolocationDatabase,
    start_day: int = 0,
    num_days: Optional[int] = None,
) -> SwitchDistanceResult:
    """Compute Fig 8: |d(client, new FE) − d(client, old FE)| per switch.

    Switch events are read off the passive logs: within a day, every
    distinct pair of front-ends serving the client counts once; across
    consecutive days, a change of primary front-end counts once.
    """
    frontends_by_id = {fe.frontend_id: fe for fe in frontends}
    calendar = dataset.calendar
    if num_days is None:
        num_days = calendar.num_days - start_day
    if num_days < 1 or start_day + num_days > calendar.num_days:
        raise AnalysisError("window outside the campaign calendar")

    def client_location(client_key: str) -> GeoPoint:
        return geolocation.lookup(client_key)

    def distance(client_key: str, frontend_id: str) -> float:
        frontend = frontends_by_id.get(frontend_id)
        if frontend is None:
            raise AnalysisError(f"unknown front-end {frontend_id!r}")
        return haversine_km(client_location(client_key), frontend.location)

    changes: List[float] = []
    previous_primary: Dict[str, str] = {}
    for day in range(start_day, start_day + num_days):
        for client_key, counts in dataset.passive.iter_day(day):
            ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            primary = ordered[0][0]
            # Intra-day switches: the client was served by several
            # front-ends within the day.
            if len(ordered) > 1:
                base = distance(client_key, ordered[0][0])
                for other_id, _ in ordered[1:]:
                    changes.append(
                        abs(distance(client_key, other_id) - base)
                    )
            # Across-day switch of primary front-end.
            earlier = previous_primary.get(client_key)
            if earlier is not None and earlier != primary:
                changes.append(
                    abs(
                        distance(client_key, primary)
                        - distance(client_key, earlier)
                    )
                )
            previous_primary[client_key] = primary

    if not changes:
        raise AnalysisError("no front-end switches in the window")
    dist = WeightedDistribution(changes)
    return SwitchDistanceResult(
        series=dist.cdf_series("switch distance change", log2_grid(64.0, 8192.0)),
        median_km=dist.median(),
        fraction_within_2000km=dist.fraction_at_or_below(2000.0),
        switch_count=len(changes),
    )
