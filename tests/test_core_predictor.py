"""Tests for the §6 history-based predictor and the hybrid scheme."""

import pytest

from repro.errors import PredictionError
from repro.core.hybrid import HybridConfig, HybridRedirector
from repro.core.predictor import HistoryBasedPredictor, PredictorConfig
from repro.dns.authoritative import ANYCAST_TARGET, DnsQuery
from repro.dns.ecs import EcsOption
from repro.measurement.aggregate import GroupedDailyAggregates
from repro.net.ip import IPv4Address


def aggregates_with(day, group, target_rtts, count=25):
    """Aggregates where each target has `count` identical samples."""
    agg = GroupedDailyAggregates("ecs")
    for target, rtt in target_rtts.items():
        for _ in range(count):
            agg.observe(day, group, target, rtt)
    return agg


class TestPredictorConfig:
    def test_defaults_follow_section6(self):
        config = PredictorConfig()
        assert config.metric_percentile == 25.0
        assert config.min_samples == 20

    @pytest.mark.parametrize(
        "kwargs", [{"metric_percentile": -1}, {"metric_percentile": 101},
                   {"min_samples": 0}]
    )
    def test_validation(self, kwargs):
        with pytest.raises(PredictionError):
            PredictorConfig(**kwargs)


class TestPrediction:
    def test_picks_fastest_qualified_target(self):
        agg = aggregates_with(
            0, "g", {"anycast": 50.0, "fe-a": 30.0, "fe-b": 40.0}
        )
        prediction = HistoryBasedPredictor().predict_group(agg, 0, "g")
        assert prediction is not None
        assert prediction.target_id == "fe-a"
        assert prediction.metric_ms == 30.0
        assert prediction.anycast_metric_ms == 50.0
        assert prediction.predicted_gain_ms == pytest.approx(20.0)

    def test_anycast_wins_ties(self):
        agg = aggregates_with(0, "g", {"anycast": 30.0, "fe-a": 30.0})
        prediction = HistoryBasedPredictor().predict_group(agg, 0, "g")
        assert prediction.target_id == ANYCAST_TARGET
        assert prediction.predicted_gain_ms == 0.0

    def test_min_samples_cut(self):
        agg = GroupedDailyAggregates("ecs")
        for _ in range(25):
            agg.observe(0, "g", "anycast", 50.0)
        for _ in range(10):  # under the 20-sample cut
            agg.observe(0, "g", "fe-a", 10.0)
        prediction = HistoryBasedPredictor().predict_group(agg, 0, "g")
        assert prediction.target_id == ANYCAST_TARGET

    def test_no_qualified_targets(self):
        agg = GroupedDailyAggregates("ecs")
        agg.observe(0, "g", "anycast", 50.0)
        assert HistoryBasedPredictor().predict_group(agg, 0, "g") is None

    def test_metric_percentile_matters(self):
        agg = GroupedDailyAggregates("ecs")
        # fe-a: excellent 25th percentile, terrible tail.
        for rtt in [10.0] * 10 + [200.0] * 10:
            agg.observe(0, "g", "fe-a", rtt)
        for rtt in [30.0] * 20:
            agg.observe(0, "g", "anycast", rtt)
        p25 = HistoryBasedPredictor(PredictorConfig(metric_percentile=25.0))
        p75 = HistoryBasedPredictor(PredictorConfig(metric_percentile=75.0))
        assert p25.predict_group(agg, 0, "g").target_id == "fe-a"
        assert p75.predict_group(agg, 0, "g").target_id == ANYCAST_TARGET

    def test_predict_day_and_mapping(self):
        agg = aggregates_with(0, "g1", {"anycast": 50.0, "fe-a": 30.0})
        for _ in range(25):
            agg.observe(0, "g2", "anycast", 20.0)
        predictor = HistoryBasedPredictor()
        predictions = predictor.predict_day(agg, 0)
        assert set(predictions) == {"g1", "g2"}
        mapping = predictor.mapping_for_day(agg, 0)
        assert mapping == {"g1": "fe-a"}  # anycast entries dropped
        full = predictor.mapping_for_day(agg, 0, only_redirections=False)
        assert full == {"g1": "fe-a", "g2": ANYCAST_TARGET}

    def test_build_policy(self):
        ecs = aggregates_with(0, "10.0.1.0/24", {"anycast": 50.0, "fe-a": 30.0})
        ldns = GroupedDailyAggregates("ldns")
        for _ in range(25):
            ldns.observe(0, "ldns-1", "anycast", 60.0)
            ldns.observe(0, "ldns-1", "fe-b", 20.0)
        policy = HistoryBasedPredictor().build_policy(ecs, ldns, day=0)
        option = EcsOption.for_address(IPv4Address.parse("10.0.1.5"))
        assert policy.decide(DnsQuery("h", "ldns-9", ecs=option)) == "fe-a"
        assert policy.decide(DnsQuery("h", "ldns-1")) == "fe-b"
        assert policy.decide(DnsQuery("h", "ldns-9")) == ANYCAST_TARGET

    def test_build_policy_requires_aggregates(self):
        with pytest.raises(PredictionError):
            HistoryBasedPredictor().build_policy()


class TestHybrid:
    def test_gain_threshold(self):
        agg = GroupedDailyAggregates("ecs")
        for group, anycast, unicast in [
            ("big-gain", 80.0, 30.0),    # 50 ms gain
            ("small-gain", 35.0, 30.0),  # 5 ms gain
        ]:
            for _ in range(25):
                agg.observe(0, group, "anycast", anycast)
                agg.observe(0, group, "fe-a", unicast)
        hybrid = HybridRedirector(HybridConfig(min_predicted_gain_ms=10.0))
        selected = hybrid.select_redirections(agg, 0)
        assert set(selected) == {"big-gain"}

    def test_cap_keeps_largest_gains(self):
        agg = GroupedDailyAggregates("ecs")
        for index in range(10):
            group = f"g{index}"
            for _ in range(25):
                agg.observe(0, group, "anycast", 50.0 + index * 10)
                agg.observe(0, group, "fe-a", 20.0)
        hybrid = HybridRedirector(
            HybridConfig(min_predicted_gain_ms=1.0, max_redirected_fraction=0.2)
        )
        selected = hybrid.select_redirections(agg, 0)
        assert len(selected) == 2
        assert set(selected) == {"g9", "g8"}  # biggest gains win

    def test_policy_round_trip(self):
        agg = GroupedDailyAggregates("ecs")
        for _ in range(25):
            agg.observe(0, "10.0.0.0/24", "anycast", 90.0)
            agg.observe(0, "10.0.0.0/24", "fe-a", 20.0)
        policy = HybridRedirector().build_policy(ecs_aggregates=agg, day=0)
        option = EcsOption.for_address(IPv4Address.parse("10.0.0.1"))
        assert policy.decide(DnsQuery("h", "l", ecs=option)) == "fe-a"

    def test_needs_aggregates(self):
        with pytest.raises(PredictionError):
            HybridRedirector().build_policy()

    def test_config_validation(self):
        with pytest.raises(PredictionError):
            HybridConfig(min_predicted_gain_ms=-1.0)
        with pytest.raises(PredictionError):
            HybridConfig(max_redirected_fraction=0.0)

    def test_empty_day(self):
        hybrid = HybridRedirector()
        assert hybrid.select_redirections(GroupedDailyAggregates("ecs"), 0) == {}
