"""Tests for the AS-level topology (repro.net.topology)."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.geo.metros import MetroDatabase
from repro.net.topology import (
    AsRole,
    AutonomousSystem,
    EgressPolicy,
    Link,
    LinkKind,
    Relationship,
    TopologyBuilder,
    TopologyConfig,
    generate_topology,
    populate_base_internet,
)


@pytest.fixture()
def db():
    return MetroDatabase()


def make_as(asn, metros, role=AsRole.ACCESS, cold=None):
    return AutonomousSystem(
        asn=asn,
        name=f"AS{asn}",
        role=role,
        pop_metros=frozenset(metros),
        egress_policy=EgressPolicy.COLD_POTATO if cold else EgressPolicy.HOT_POTATO,
        cold_potato_egress=cold,
    )


class TestAutonomousSystem:
    def test_requires_pops(self):
        with pytest.raises(TopologyError, match="no PoPs"):
            make_as(1, [])

    def test_cold_potato_requires_egress(self):
        with pytest.raises(TopologyError, match="no designated egress"):
            AutonomousSystem(
                asn=1, name="x", role=AsRole.ACCESS,
                pop_metros=frozenset({"nyc"}),
                egress_policy=EgressPolicy.COLD_POTATO,
            )

    def test_cold_potato_egress_must_be_pop(self):
        with pytest.raises(TopologyError, match="not one of its PoPs"):
            make_as(1, ["nyc"], cold="lon")

    def test_hot_potato_must_not_have_egress(self):
        with pytest.raises(TopologyError, match="hot-potato"):
            AutonomousSystem(
                asn=1, name="x", role=AsRole.ACCESS,
                pop_metros=frozenset({"nyc"}),
                egress_policy=EgressPolicy.HOT_POTATO,
                cold_potato_egress="nyc",
            )


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(TopologyError, match="self-link"):
            Link(a=1, b=1, kind=LinkKind.PEERING, metros=frozenset({"nyc"}))

    def test_needs_metros(self):
        with pytest.raises(TopologyError, match="no interconnection"):
            Link(a=1, b=2, kind=LinkKind.PEERING, metros=frozenset())


class TestBuilder:
    def test_duplicate_asn(self, db):
        builder = TopologyBuilder(db)
        builder.add_as(make_as(1, ["nyc"]))
        with pytest.raises(TopologyError, match="duplicate ASN"):
            builder.add_as(make_as(1, ["lon"]))

    def test_unknown_metro(self, db):
        builder = TopologyBuilder(db)
        with pytest.raises(TopologyError, match="unknown metro"):
            builder.add_as(make_as(1, ["atlantis"]))

    def test_connect_defaults_to_shared_metros(self, db):
        builder = TopologyBuilder(db)
        builder.add_as(make_as(1, ["nyc", "lon"]))
        builder.add_as(make_as(2, ["lon", "par"]))
        link = builder.connect(1, 2, LinkKind.PEERING)
        assert link.metros == frozenset({"lon"})

    def test_connect_rejects_non_pop_interconnect(self, db):
        builder = TopologyBuilder(db)
        builder.add_as(make_as(1, ["nyc"]))
        builder.add_as(make_as(2, ["nyc", "lon"]))
        with pytest.raises(TopologyError, match="no PoP"):
            builder.connect(1, 2, LinkKind.PEERING, ["lon"])

    def test_duplicate_link_rejected(self, db):
        builder = TopologyBuilder(db)
        builder.add_as(make_as(1, ["nyc"]))
        builder.add_as(make_as(2, ["nyc"]))
        builder.connect(1, 2, LinkKind.PEERING)
        with pytest.raises(TopologyError, match="duplicate link"):
            builder.connect(2, 1, LinkKind.PEERING)

    def test_has_and_get(self, db):
        builder = TopologyBuilder(db)
        builder.add_as(make_as(1, ["nyc"]))
        assert builder.has_as(1)
        assert not builder.has_as(2)
        with pytest.raises(TopologyError):
            builder.get_as(2)


class TestTopologyAccessors:
    @pytest.fixture()
    def topo(self, db):
        builder = TopologyBuilder(db)
        builder.add_as(make_as(1, ["nyc", "chi"]))
        builder.add_as(make_as(2, ["nyc", "chi", "lon"], role=AsRole.TRANSIT))
        builder.add_as(make_as(3, ["lon"], role=AsRole.TIER1))
        builder.connect(1, 2, LinkKind.CUSTOMER_PROVIDER)  # 1 customer of 2
        builder.connect(2, 3, LinkKind.PEERING)
        return builder.build()

    def test_roles(self, topo):
        assert [a.asn for a in topo.ases_with_role(AsRole.ACCESS)] == [1]
        assert [a.asn for a in topo.ases_with_role(AsRole.TIER1)] == [3]

    def test_neighbor_relationships(self, topo):
        assert topo.neighbor(1, 2).relationship is Relationship.PROVIDER
        assert topo.neighbor(2, 1).relationship is Relationship.CUSTOMER
        assert topo.neighbor(2, 3).relationship is Relationship.PEER

    def test_neighbors_sorted(self, topo):
        assert [n.asn for n in topo.neighbors(2)] == [1, 3]

    def test_non_adjacent(self, topo):
        with pytest.raises(TopologyError, match="not adjacent"):
            topo.neighbor(1, 3)
        assert not topo.are_adjacent(1, 3)
        assert topo.are_adjacent(1, 2)

    def test_unknown_asn(self, topo):
        with pytest.raises(TopologyError, match="unknown AS"):
            topo.get(99)

    def test_len_and_iter(self, topo):
        assert len(topo) == 3
        assert {a.asn for a in topo} == {1, 2, 3}


class TestEgressSelection:
    @pytest.fixture()
    def topo(self, db):
        builder = TopologyBuilder(db)
        builder.add_as(make_as(1, ["nyc", "chi", "lax", "sea"]))
        builder.add_as(make_as(2, ["nyc", "chi", "lax", "sea"], cold="lax"))
        return builder.build()

    def test_hot_potato_picks_nearest_to_entry(self, topo):
        chosen = topo.egress_metro(1, "nyc", ["chi", "lax", "sea"])
        assert chosen == "chi"

    def test_cold_potato_picks_nearest_to_designated(self, topo):
        chosen = topo.egress_metro(2, "nyc", ["chi", "sea"])
        # lax is the anchor; sea is closer to LA than Chicago is.
        assert chosen == "sea"

    def test_ranked_order(self, topo):
        ranked = topo.ranked_egress_metros(1, "nyc", ["chi", "lax", "sea"])
        # From NYC: Chicago ~1150 km, Seattle ~3870 km, LA ~3940 km.
        assert ranked == ("chi", "sea", "lax")

    def test_rank_clamped(self, topo):
        assert topo.egress_metro(1, "nyc", ["chi"], rank=5) == "chi"

    def test_negative_rank_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.egress_metro(1, "nyc", ["chi"], rank=-1)

    def test_no_candidates(self, topo):
        with pytest.raises(TopologyError, match="no candidate"):
            topo.egress_metro(1, "nyc", [])


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tier1_count": 0},
            {"tier1_presence": 0.0},
            {"tier1_presence": 1.5},
            {"cold_potato_fraction": -0.1},
            {"transit_cold_potato_fraction": 2.0},
            {"transit_remote_pop_count": -1},
            {"multihoming_probability": 1.5},
            {"transit_per_region": 0},
            {"access_per_country": 0},
            {"access_max_metros": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            TopologyConfig(**kwargs)


class TestGeneratedInternet:
    @pytest.fixture(scope="class")
    def topo(self):
        return generate_topology(MetroDatabase(), seed=5)

    def test_role_counts(self, topo):
        config = TopologyConfig()
        assert len(topo.ases_with_role(AsRole.TIER1)) == config.tier1_count
        assert len(topo.ases_with_role(AsRole.TRANSIT)) > 0
        assert len(topo.ases_with_role(AsRole.ACCESS)) > 50

    def test_tier1_union_covers_all_metros(self, topo):
        covered = set()
        for tier1 in topo.ases_with_role(AsRole.TIER1):
            covered |= tier1.pop_metros
        assert covered == set(topo.metro_db.codes)

    def test_backstop_tier1_covers_everything(self, topo):
        assert any(
            t.pop_metros == frozenset(topo.metro_db.codes)
            for t in topo.ases_with_role(AsRole.TIER1)
        )

    def test_every_access_has_a_provider(self, topo):
        for access in topo.ases_with_role(AsRole.ACCESS):
            relationships = [
                n.relationship for n in topo.neighbors(access.asn)
            ]
            assert Relationship.PROVIDER in relationships

    def test_no_access_to_access_links(self, topo):
        for access in topo.ases_with_role(AsRole.ACCESS):
            for neighbor in topo.neighbors(access.asn):
                assert topo.get(neighbor.asn).role != AsRole.ACCESS

    def test_transits_buy_from_tier1(self, topo):
        for transit in topo.ases_with_role(AsRole.TRANSIT):
            providers = [
                n.asn
                for n in topo.neighbors(transit.asn)
                if n.relationship is Relationship.PROVIDER
            ]
            assert providers
            assert all(
                topo.get(asn).role is AsRole.TIER1 for asn in providers
            )

    def test_deterministic_for_seed(self):
        db = MetroDatabase()
        a = generate_topology(db, seed=9)
        b = generate_topology(db, seed=9)
        assert {x.asn for x in a} == {x.asn for x in b}
        assert {x.asn: x.pop_metros for x in a} == {
            x.asn: x.pop_metros for x in b
        }

    def test_different_seeds_differ(self):
        db = MetroDatabase()
        a = generate_topology(db, seed=1)
        b = generate_topology(db, seed=2)
        assert {x.asn: x.pop_metros for x in a} != {
            x.asn: x.pop_metros for x in b
        }

    def test_populate_returns_handles(self):
        db = MetroDatabase()
        builder = TopologyBuilder(db)
        base = populate_base_internet(builder, seed=3)
        assert len(base.tier1_asns) == TopologyConfig().tier1_count
        assert base.transit_asns
        assert base.access_asns
        topo = builder.build()
        for asn in base.access_asns:
            assert topo.get(asn).role is AsRole.ACCESS
