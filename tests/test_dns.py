"""Tests for the DNS substrate: LDNS, cache, ECS, authoritative."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.dns.authoritative import (
    ANYCAST_TARGET,
    AnycastPolicy,
    AuthoritativeServer,
    DnsQuery,
    StaticMappingPolicy,
)
from repro.dns.cache import TtlCache
from repro.dns.ecs import EcsOption, ecs_key_for_prefix
from repro.dns.ldns import LdnsConfig, LdnsDirectory, LdnsKind
from repro.geo.coords import haversine_km
from repro.net.ip import IPv4Address, IPv4Prefix
from repro.net.topology import AsRole, generate_topology
from repro.geo.metros import MetroDatabase


@pytest.fixture(scope="module")
def topology():
    return generate_topology(MetroDatabase(), seed=21)


class TestLdnsDirectory:
    @pytest.fixture(scope="class")
    def directory(self, request):
        topo = generate_topology(MetroDatabase(), seed=21)
        return LdnsDirectory(topo, LdnsConfig(), seed=4), topo

    def test_public_resolvers_exist(self, directory):
        d, _ = directory
        public = d.public_resolvers()
        assert len(public) == len(LdnsConfig().public_metros)
        assert all(s.kind is LdnsKind.PUBLIC for s in public)
        assert all(s.asn is None for s in public)

    def test_every_access_isp_metro_has_a_resolver(self, directory):
        d, topo = directory
        for access in topo.ases_with_role(AsRole.ACCESS):
            for metro in access.pop_metros:
                ldns_id = d.isp_resolver_id(access.asn, metro)
                assert ldns_id in d

    def test_centralized_isps_share_one_resolver(self, directory):
        d, topo = directory
        central_found = False
        for access in topo.ases_with_role(AsRole.ACCESS):
            ids = {
                d.isp_resolver_id(access.asn, metro)
                for metro in access.pop_metros
            }
            if len(access.pop_metros) > 1 and len(ids) == 1:
                server = d.get(next(iter(ids)))
                assert server.kind is LdnsKind.ISP_CENTRAL
                central_found = True
        assert central_found

    def test_isp_metro_resolver_is_local(self, directory):
        d, topo = directory
        db = topo.metro_db
        for server in d:
            if server.kind is LdnsKind.ISP_METRO:
                assert haversine_km(
                    server.location, db.get(server.metro_code).location
                ) == pytest.approx(0.0)

    def test_assign_public_fraction(self, directory):
        d, topo = directory
        access = topo.ases_with_role(AsRole.ACCESS)[0]
        metro = sorted(access.pop_metros)[0]
        rng = random.Random(0)
        assigned = [d.assign(access.asn, metro, rng) for _ in range(2000)]
        public = sum(1 for a in assigned if a.startswith("ldns-public"))
        expected = LdnsConfig().public_usage_fraction * 2000
        assert expected * 0.3 <= public <= expected * 2.5

    def test_unknown_lookups(self, directory):
        d, _ = directory
        with pytest.raises(ConfigurationError):
            d.get("nope")
        with pytest.raises(ConfigurationError):
            d.isp_resolver_id(999999, "nyc")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            LdnsConfig(centralized_isp_fraction=1.5)
        with pytest.raises(ConfigurationError):
            LdnsConfig(public_metros=())


class TestTtlCache:
    def test_put_get_expiry(self):
        cache = TtlCache()
        cache.put("k", "v", now=0.0, ttl=10.0)
        assert cache.get("k", now=5.0) == "v"
        assert cache.get("k", now=10.0) is None  # expired exactly at TTL
        assert cache.get("k", now=11.0) is None  # evicted

    def test_ttl_validation(self):
        with pytest.raises(ConfigurationError):
            TtlCache().put("k", "v", now=0.0, ttl=0.0)

    def test_stats(self):
        cache = TtlCache()
        cache.put("k", "v", now=0.0, ttl=10.0)
        cache.get("k", 1.0)
        cache.get("missing", 1.0)
        assert cache.stats == (1, 1)

    def test_contains_does_not_count(self):
        cache = TtlCache()
        cache.put("k", "v", now=0.0, ttl=10.0)
        assert cache.contains("k", 1.0)
        assert not cache.contains("k", 11.0)
        assert cache.stats == (0, 0)

    def test_purge_expired(self):
        cache = TtlCache()
        cache.put("a", 1, now=0.0, ttl=5.0)
        cache.put("b", 2, now=0.0, ttl=50.0)
        assert cache.purge_expired(now=10.0) == 1
        assert len(cache) == 1

    def test_replace(self):
        cache = TtlCache()
        cache.put("k", "old", now=0.0, ttl=10.0)
        cache.put("k", "new", now=1.0, ttl=10.0)
        assert cache.get("k", 2.0) == "new"


class TestEcs:
    def test_for_address_truncates(self):
        option = EcsOption.for_address(IPv4Address.parse("10.1.2.77"))
        assert option.group_key == "10.1.2.0/24"

    def test_for_address_other_lengths(self):
        option = EcsOption.for_address(
            IPv4Address.parse("10.1.2.77"), source_prefix_length=16
        )
        assert option.group_key == "10.1.0.0/16"

    def test_mismatched_length_rejected(self):
        with pytest.raises(ConfigurationError):
            EcsOption(
                client_prefix=IPv4Prefix.parse("10.0.0.0/16"),
                source_prefix_length=24,
            )

    def test_bad_length_rejected(self):
        with pytest.raises(ConfigurationError):
            EcsOption.for_address(IPv4Address.parse("1.2.3.4"), 0)

    def test_key_for_prefix(self):
        assert ecs_key_for_prefix(IPv4Prefix.parse("10.0.1.0/24")) == "10.0.1.0/24"
        with pytest.raises(ConfigurationError):
            ecs_key_for_prefix(IPv4Prefix.parse("10.0.1.0/25"))


class TestAuthoritative:
    def test_anycast_policy(self):
        server = AuthoritativeServer(AnycastPolicy())
        response = server.resolve(DnsQuery("h1", "ldns-1"))
        assert response.target_id == ANYCAST_TARGET
        assert response.ttl_seconds > 0

    def test_static_mapping_ldns(self):
        policy = StaticMappingPolicy(ldns_mapping={"ldns-1": "fe-lon"})
        server = AuthoritativeServer(policy)
        assert server.resolve(DnsQuery("h", "ldns-1")).target_id == "fe-lon"
        assert server.resolve(DnsQuery("h2", "ldns-2")).target_id == ANYCAST_TARGET

    def test_static_mapping_ecs_precedence(self):
        policy = StaticMappingPolicy(
            ecs_mapping={"10.0.0.0/24": "fe-nyc"},
            ldns_mapping={"ldns-1": "fe-lon"},
        )
        ecs = EcsOption.for_address(IPv4Address.parse("10.0.0.9"))
        query = DnsQuery("h", "ldns-1", ecs=ecs)
        assert AuthoritativeServer(policy).resolve(query).target_id == "fe-nyc"

    def test_ecs_miss_falls_back_to_ldns(self):
        policy = StaticMappingPolicy(
            ecs_mapping={"10.9.9.0/24": "fe-nyc"},
            ldns_mapping={"ldns-1": "fe-lon"},
        )
        ecs = EcsOption.for_address(IPv4Address.parse("10.0.0.9"))
        query = DnsQuery("h", "ldns-1", ecs=ecs)
        assert AuthoritativeServer(policy).resolve(query).target_id == "fe-lon"

    def test_query_log(self):
        server = AuthoritativeServer(AnycastPolicy())
        server.resolve(DnsQuery("h1", "ldns-1"), now=3.0)
        log = server.query_log()
        assert len(log) == 1
        assert log[0].hostname == "h1"
        assert log[0].time == 3.0
        server.clear_log()
        assert server.query_log() == ()

    def test_log_can_be_disabled(self):
        server = AuthoritativeServer(AnycastPolicy(), keep_log=False)
        server.resolve(DnsQuery("h1", "ldns-1"))
        assert server.query_log() == ()

    def test_bad_ttl(self):
        with pytest.raises(ConfigurationError):
            AuthoritativeServer(AnycastPolicy(), ttl_seconds=0)
